"""Setuptools shim.

Kept so ``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip falls back to the legacy ``setup.py develop``
editable path when no PEP 517 ``build-system`` table is declared).  All
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
