"""repro — Socially-optimal ISP-aware P2P content distribution (Zhao & Wu, 2014).

A full reproduction of the paper's system: the social-welfare chunk
scheduling ILP, the primal-dual auction that solves it distributedly,
the exact oracles certifying Theorem 1, the locality baseline, and a
discrete-event P2P VoD emulator reproducing every figure of the
evaluation section.

Quickstart::

    from repro import SchedulingProblem, AuctionSolver, solve_hungarian

    p = SchedulingProblem()
    p.set_capacity(100, 2)
    p.add_request(peer=1, chunk="c", valuation=5.0, candidates={100: 1.0})
    result = AuctionSolver().solve(p)
    assert result.welfare(p) == solve_hungarian(p).welfare(p)

See ``examples/`` for the P2P system and experiment harness.
"""

from .core import (
    DEFAULT_EPSILON,
    manipulation_study,
    AuctionNonConvergence,
    AuctionScheduler,
    AuctionSolver,
    ChunkRequest,
    DistributedAuction,
    ScaledAuctionSolver,
    ScheduleResult,
    SchedulingProblem,
    SimpleLocalityScheduler,
    available_schedulers,
    check_complementary_slackness,
    duality_gap,
    make_scheduler,
    random_problem,
    solve_hungarian,
    solve_lp_relaxation,
    solve_min_cost_flow,
    vcg_payments,
    verify_theorem1,
)
from .sim import RngRegistry, SimNetwork, Simulator

__version__ = "1.0.0"

__all__ = [
    "AuctionNonConvergence",
    "AuctionScheduler",
    "AuctionSolver",
    "ChunkRequest",
    "DEFAULT_EPSILON",
    "DistributedAuction",
    "RngRegistry",
    "ScaledAuctionSolver",
    "ScheduleResult",
    "SchedulingProblem",
    "SimNetwork",
    "SimpleLocalityScheduler",
    "Simulator",
    "__version__",
    "available_schedulers",
    "check_complementary_slackness",
    "duality_gap",
    "make_scheduler",
    "random_problem",
    "solve_hungarian",
    "solve_lp_relaxation",
    "solve_min_cost_flow",
    "vcg_payments",
    "manipulation_study",
    "verify_theorem1",
]
