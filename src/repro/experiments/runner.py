"""Experiment runners: scheduler comparisons and the distributed price trace.

:func:`run_comparison` plays the *same* workload (same seed → same
arrivals, costs, videos, positions) once per scheduler, the paper's
methodology for Figs. 3–6.  :func:`run_price_trace` reruns the slot
auctions of a static system at message level over a simulated network to
record ``λ_u(t)`` for Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.distributed import DistributedAuction
from ..metrics.collectors import MetricsCollector
from ..p2p.system import P2PSystem
from ..sim.engine import Simulator
from ..sim.network import CostLatency, SimNetwork
from .configs import FigureConfig

__all__ = ["PriceTraceResult", "run_comparison", "run_price_trace"]


def run_comparison(config: FigureConfig) -> Dict[str, MetricsCollector]:
    """Run the figure's workload once per scheduler; returns collectors.

    The RNG registry is rebuilt from the same seed for every scheduler,
    so arrivals, video choices, link costs and playback positions are
    identical across runs — only the scheduling decisions differ.
    """
    results: Dict[str, MetricsCollector] = {}
    for scheduler_name in config.schedulers:
        system = P2PSystem(config.system.with_scheduler(scheduler_name))
        if config.n_static_peers:
            system.populate_static(config.n_static_peers, stagger=config.stagger)
        if config.warmup_seconds:
            system.run(config.warmup_seconds, churn=config.churn)
            system.collector.slots.clear()
        system.run(config.duration_seconds, churn=config.churn)
        results[scheduler_name] = system.collector
    return results


@dataclass
class PriceTraceResult:
    """Fig. 2 data: λ_u(t) of a representative peer across several slots."""

    uploader: int
    times: List[float] = field(default_factory=list)
    prices: List[float] = field(default_factory=list)
    slot_starts: List[float] = field(default_factory=list)
    convergence_seconds: List[float] = field(default_factory=list)
    messages_per_slot: List[int] = field(default_factory=list)

    def mean_convergence(self) -> float:
        """Average within-slot convergence time (seconds)."""
        if not self.convergence_seconds:
            return 0.0
        return sum(self.convergence_seconds) / len(self.convergence_seconds)

    def max_price(self) -> float:
        return max(self.prices, default=0.0)


def run_price_trace(
    config: FigureConfig,
    n_slots: int = 5,
    seconds_per_cost_unit: float = 0.02,
    epsilon: Optional[float] = None,
    uploader: Optional[int] = None,
) -> PriceTraceResult:
    """Record λ_u(t) by running each slot's auction at message level.

    The system is warmed up centrally (cheap), then ``n_slots`` slots are
    executed through :class:`~repro.core.distributed.DistributedAuction`
    over a latency network derived from the same cost model (one cost
    unit = ``seconds_per_cost_unit`` seconds), mirroring the paper's
    emulator where peers of the 5 ISPs exchanged real traffic.  Within
    each slot prices start at 0 and converge; the trace shows the
    paper's sawtooth (Fig. 2).
    """
    system = P2PSystem(config.system.with_scheduler("auction"))
    if config.n_static_peers:
        system.populate_static(config.n_static_peers)
    if config.warmup_seconds:
        system.run(config.warmup_seconds, churn=config.churn)

    epsilon = config.system.epsilon if epsilon is None else epsilon
    trace = PriceTraceResult(uploader=-1)
    chosen = uploader

    for _ in range(n_slots):
        slot_start = system.now
        problem, _ = system.build_problem(system.now)
        sim = Simulator(start_time=slot_start)
        network = SimNetwork(
            sim,
            latency=CostLatency(
                system.costs.as_cost_fn(),
                seconds_per_cost_unit=seconds_per_cost_unit,
            ),
        )
        auction = DistributedAuction(sim, network, problem, epsilon=epsilon)
        result = auction.run_to_convergence()

        if chosen is None:
            # Representative peer: the uploader whose price moved the most
            # in the first traced slot with any movement (the paper picks
            # a busy peer).
            counts: Dict[int, int] = {}
            for event in auction.price_events:
                counts[event.uploader] = counts.get(event.uploader, 0) + 1
            if counts:
                chosen = max(counts, key=counts.get)
                trace.uploader = chosen

        trace.slot_starts.append(slot_start)
        trace.messages_per_slot.append(int(sum(network.sent.values())))
        trace.convergence_seconds.append(
            max(0.0, auction.convergence_time() - slot_start)
        )
        # The slot opens at price 0 and steps on each update.
        trace.times.append(slot_start)
        trace.prices.append(0.0)
        for event in auction.price_events:
            if event.uploader == chosen:
                trace.times.append(event.time)
                trace.prices.append(event.price)

        # Advance the system along the distributed schedule so later
        # slots see the buffers this auction produced.
        system._apply_transfers(problem, result)
        system._advance_playback(slot_start + config.system.slot_seconds)
        system.now = slot_start + config.system.slot_seconds
        system.slot_index += 1

    return trace
