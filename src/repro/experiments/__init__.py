"""Experiment harness reproducing every figure of the paper's evaluation."""

from .configs import FIGURES, FigureConfig, figure_config
from .figures import (
    FigureResult,
    fig2_price_convergence,
    fig3_social_welfare,
    fig4_inter_isp_traffic,
    fig5_miss_rate,
    fig6_peer_dynamics,
    run_figure,
)
from .runner import PriceTraceResult, run_comparison, run_price_trace
from .sweep import (
    EpsilonSweepRow,
    RebidRow,
    SolverRow,
    epsilon_sweep,
    rebid_study,
    render_epsilon_sweep,
    render_rebid_study,
    render_solver_comparison,
    scheduler_shootout,
    solver_comparison,
)

__all__ = [
    "FIGURES",
    "EpsilonSweepRow",
    "FigureConfig",
    "FigureResult",
    "PriceTraceResult",
    "RebidRow",
    "SolverRow",
    "epsilon_sweep",
    "fig2_price_convergence",
    "fig3_social_welfare",
    "fig4_inter_isp_traffic",
    "fig5_miss_rate",
    "fig6_peer_dynamics",
    "figure_config",
    "rebid_study",
    "render_epsilon_sweep",
    "render_rebid_study",
    "render_solver_comparison",
    "run_comparison",
    "run_figure",
    "run_price_trace",
    "scheduler_shootout",
    "solver_comparison",
]
