"""Parameter sweeps and ablations beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* ε sensitivity of the auction (A1): optimality gap and work vs ε;
* solver shoot-out (A2): auction vs Hungarian vs LP vs min-cost flow;
* bidding mode (A3): Gauss-Seidel vs vectorized Jacobi;
* scheduler shoot-out on the full system (A4), including the retry
  variant of the locality baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.auction import AuctionSolver
from ..core.epsilon_scaling import ScaledAuctionSolver
from ..core.exact import solve_hungarian, solve_lp_relaxation, solve_min_cost_flow
from ..core.problem import SchedulingProblem, random_problem
from ..metrics.report import render_table
from ..p2p.config import SystemConfig
from ..p2p.system import P2PSystem

__all__ = [
    "EpsilonSweepRow",
    "RebidRow",
    "SolverRow",
    "epsilon_sweep",
    "rebid_study",
    "render_rebid_study",
    "scheduler_shootout",
    "solver_comparison",
]


@dataclass(frozen=True)
class EpsilonSweepRow:
    """One ε setting's outcome on a fixed instance."""

    epsilon: float
    welfare: float
    optimality: float  # welfare / hungarian optimum
    bids: int
    rounds: int
    seconds: float


def epsilon_sweep(
    epsilons: List[float],
    rng: Optional[np.random.Generator] = None,
    n_requests: int = 400,
    n_uploaders: int = 40,
    max_candidates: int = 8,
    mode: str = "jacobi",
) -> List[EpsilonSweepRow]:
    """Ablation A1: the work/optimality trade-off of the bidding increment."""
    rng = rng or np.random.default_rng(0)
    problem = random_problem(
        rng,
        n_requests=n_requests,
        n_uploaders=n_uploaders,
        max_candidates=max_candidates,
    )
    optimum = solve_hungarian(problem).welfare(problem)
    rows = []
    for epsilon in epsilons:
        start = time.perf_counter()
        result = AuctionSolver(epsilon=epsilon, mode=mode).solve(problem)
        elapsed = time.perf_counter() - start
        welfare = result.welfare(problem)
        rows.append(
            EpsilonSweepRow(
                epsilon=epsilon,
                welfare=welfare,
                optimality=welfare / optimum if optimum else 1.0,
                bids=result.stats.bids_submitted,
                rounds=result.stats.rounds,
                seconds=elapsed,
            )
        )
    return rows


@dataclass(frozen=True)
class SolverRow:
    """One solver's outcome on a fixed instance."""

    solver: str
    welfare: float
    served: int
    seconds: float


def solver_comparison(
    rng: Optional[np.random.Generator] = None,
    n_requests: int = 400,
    n_uploaders: int = 40,
    max_candidates: int = 8,
    epsilon: float = 0.01,
) -> List[SolverRow]:
    """Ablation A2: auction and scaled auction vs the exact oracles."""
    rng = rng or np.random.default_rng(1)
    problem = random_problem(
        rng,
        n_requests=n_requests,
        n_uploaders=n_uploaders,
        max_candidates=max_candidates,
    )

    def timed(name: str, solve: Callable[[], object]) -> SolverRow:
        start = time.perf_counter()
        result = solve()
        elapsed = time.perf_counter() - start
        return SolverRow(
            solver=name,
            welfare=result.welfare(problem),
            served=result.n_served(),
            seconds=elapsed,
        )

    return [
        timed("auction-gs", lambda: AuctionSolver(epsilon, mode="gauss-seidel").solve(problem)),
        timed("auction-jacobi", lambda: AuctionSolver(epsilon, mode="jacobi").solve(problem)),
        timed("auction-scaled", lambda: ScaledAuctionSolver(epsilon_final=epsilon).solve(problem)),
        timed("hungarian", lambda: solve_hungarian(problem)),
        timed("lp", lambda: solve_lp_relaxation(problem).result),
        timed("min-cost-flow", lambda: solve_min_cost_flow(problem)),
    ]


def scheduler_shootout(
    schedulers: tuple = ("auction", "locality", "locality-retry", "agnostic", "greedy", "random"),
    seed: int = 0,
    n_peers: int = 150,
    duration_seconds: float = 100.0,
) -> Dict[str, Dict[str, float]]:
    """Ablation A4: whole-system metrics per scheduler on one workload.

    Besides the collector totals, each row carries ``download_fairness``
    (Jain's index over non-seed peers' downloaded-chunk counts) and
    ``traffic_localization`` (diagonal share of the ISP traffic matrix).
    """
    from ..metrics.fairness import jain_index

    out: Dict[str, Dict[str, float]] = {}
    for name in schedulers:
        config = SystemConfig.bench(seed=seed, scheduler=name)
        system = P2PSystem(config)
        system.populate_static(n_peers)
        collector = system.run(duration_seconds)
        totals = collector.totals()
        downloads = [
            p.chunks_downloaded for p in system.peers.values() if not p.is_seed
        ]
        totals["download_fairness"] = jain_index(downloads)
        totals["traffic_localization"] = system.traffic_matrix.localization_index()
        out[name] = totals
    return out


@dataclass(frozen=True)
class RebidRow:
    """One (bid rounds, warm-start) setting's whole-run outcome."""

    rounds: int
    warm: bool
    welfare_total: float
    welfare_per_slot: float
    served: int
    miss_rate: float
    auction_rounds: int  # solver work: total ε-auction rounds
    solve_seconds: float  # wall time inside scheduler.schedule


class _TimedScheduler:
    """Wrapper counting wall time spent inside ``schedule`` calls."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = inner.name
        self.supports_warm_start = getattr(inner, "supports_warm_start", False)
        self.seconds = 0.0

    def schedule(self, problem, initial_prices=None):
        start = time.perf_counter()
        if self.supports_warm_start:
            result = self.inner.schedule(problem, initial_prices=initial_prices)
        else:
            result = self.inner.schedule(problem)
        self.seconds += time.perf_counter() - start
        return result


def rebid_study(
    rounds_list: tuple = (1, 2, 4, 8),
    seed: int = 0,
    n_peers: int = 150,
    duration_seconds: float = 80.0,
) -> List[RebidRow]:
    """Ablation A5: multi-round re-bidding × warm-started prices.

    The paper's peers "keep bidding" within a slot; ``bid_rounds_per_slot
    = R`` splits each slot into R re-bid rounds with refreshed deadlines
    and 1/R budget shares, and ``warm_start_prices`` carries round r's
    final λ into round r+1 (price continuity — the regime the
    event-driven solver's frontier was built for: a warm re-bid round
    only re-evaluates requests whose uploaders repriced).  Each (R, warm)
    cell runs the same moderately-contended static workload (fig5's
    tightened supply) end to end; welfare/served/miss/auction-round
    columns are deterministic, ``solve_seconds`` is wall time inside the
    scheduler only.
    """
    rows: List[RebidRow] = []
    for rounds in rounds_list:
        for warm in (False, True) if rounds > 1 else (False,):
            config = SystemConfig.bench(
                seed=seed,
                bid_rounds_per_slot=rounds,
                warm_start_prices=warm,
                peer_upload_min_multiple=0.8,
                peer_upload_max_multiple=2.0,
                seed_upload_multiple=3.0,
            )
            system = P2PSystem(config)
            timed = _TimedScheduler(system.scheduler)
            system.scheduler = timed
            system.populate_static(n_peers, stagger=False)
            collector = system.run(duration_seconds)
            totals = collector.totals()
            n_slots = len(collector.slots)
            rows.append(
                RebidRow(
                    rounds=rounds,
                    warm=warm,
                    welfare_total=totals["welfare_total"],
                    welfare_per_slot=totals["welfare_mean_per_slot"],
                    served=int(totals["served_total"]),
                    miss_rate=totals["miss_rate"],
                    auction_rounds=sum(
                        s.auction_rounds for s in collector.slots
                    ),
                    solve_seconds=timed.seconds,
                )
            )
            assert n_slots == int(duration_seconds / config.slot_seconds)
    return rows


def render_rebid_study(rows: List[RebidRow]) -> str:
    """Text table for the re-bid ablation (archived under results/)."""
    return render_table(
        [
            "rounds", "prices", "welfare", "welfare/slot", "served",
            "miss_rate", "auction_rounds", "solve_seconds",
        ],
        [
            [
                r.rounds,
                "warm" if r.warm else "cold",
                r.welfare_total,
                r.welfare_per_slot,
                r.served,
                r.miss_rate,
                r.auction_rounds,
                r.solve_seconds,
            ]
            for r in rows
        ],
    )


def render_epsilon_sweep(rows: List[EpsilonSweepRow]) -> str:
    """Text table for the ε ablation."""
    return render_table(
        ["epsilon", "welfare", "optimality", "bids", "rounds", "seconds"],
        [
            [r.epsilon, r.welfare, r.optimality, r.bids, r.rounds, r.seconds]
            for r in rows
        ],
    )


def render_solver_comparison(rows: List[SolverRow]) -> str:
    """Text table for the solver ablation."""
    return render_table(
        ["solver", "welfare", "served", "seconds"],
        [[r.solver, r.welfare, r.served, r.seconds] for r in rows],
    )
