"""Experiment configurations for every figure in the paper.

Each figure gets a :class:`FigureConfig` naming the workload, scale,
duration and the schedulers compared.  ``scale="bench"`` (default) is
the laptop-sized configuration documented in DESIGN.md §3; pass
``scale="paper"`` for the full Section V setting (500 peers, 100 videos,
100-chunk windows — minutes per figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..p2p.config import SystemConfig

__all__ = ["FigureConfig", "figure_config", "FIGURES"]


@dataclass(frozen=True)
class FigureConfig:
    """One reproducible experiment matching one paper figure."""

    figure: str
    description: str
    system: SystemConfig
    schedulers: Tuple[str, ...]
    n_static_peers: int  # 0 ⇒ the network starts empty (churn builds it)
    duration_seconds: float
    churn: bool
    warmup_seconds: float = 0.0  # discarded from reported series
    stagger: bool = True  # False = synchronized audience (see populate_static)


def _base_system(scale: str, seed: int, **overrides) -> SystemConfig:
    if scale == "paper":
        return SystemConfig.paper(seed=seed, **{"bid_rounds_per_slot": 4, **overrides})
    if scale == "bench":
        return SystemConfig.bench(seed=seed, **overrides)
    if scale == "tiny":
        return SystemConfig.tiny(seed=seed, **{"bid_rounds_per_slot": 2, **overrides})
    raise ValueError(f"unknown scale {scale!r} (use 'paper', 'bench' or 'tiny')")


def figure_config(figure: str, scale: str = "bench", seed: int = 0) -> FigureConfig:
    """Build the configuration for ``figure`` ∈ {fig2..fig6} at ``scale``."""
    big = scale == "paper"
    static_peers = 500 if big else (300 if scale == "bench" else 30)
    duration = 250.0 if big else (150.0 if scale == "bench" else 60.0)

    if figure == "fig2":
        # Price evolution of a representative peer: static network,
        # message-level distributed auction; the paper plots the 150 s –
        # 250 s window of a 500-peer run.  Prices only move where demand
        # exceeds supply at some auctioneers (the paper's λ reaches ~20,
        # so its market was heavily contended); the fig2 workload
        # therefore concentrates demand on few videos and tightens
        # upload capacity.
        return FigureConfig(
            figure="fig2",
            description="Evolution of the bandwidth price λ_u at a representative peer",
            system=_base_system(
                scale,
                seed,
                bid_rounds_per_slot=1,
                n_videos=4 if not big else 20,
                peer_upload_min_multiple=0.5,
                peer_upload_max_multiple=1.5,
                seed_upload_multiple=2.0,
            ),
            schedulers=("auction",),
            n_static_peers=250 if scale == "bench" else (500 if big else 20),
            duration_seconds=50.0 if not big else 100.0,
            churn=False,
            warmup_seconds=20.0 if not big else 150.0,
        )
    if figure == "fig3":
        # Social welfare per slot under dynamic arrivals (no early exit).
        return FigureConfig(
            figure="fig3",
            description="Social welfare per slot, dynamic arrivals (Poisson), stay-to-end",
            system=_base_system(
                scale, seed, arrival_rate_per_s=1.0 if big else 2.0
            ),
            schedulers=("auction", "locality"),
            n_static_peers=0,
            duration_seconds=duration,
            churn=True,
        )
    # Static figures use a synchronized audience so the network does not
    # drain mid-run (paper videos outlast the 250 s horizon; bench videos
    # are 100 s, so staggered peers would finish and the per-slot series
    # would collapse into noise).
    static_duration = 240.0 if big else (80.0 if scale == "bench" else 30.0)
    if figure == "fig4":
        return FigureConfig(
            figure="fig4",
            description="% inter-ISP traffic per slot, static network",
            system=_base_system(scale, seed),
            schedulers=("auction", "locality"),
            n_static_peers=static_peers,
            duration_seconds=static_duration,
            churn=False,
            warmup_seconds=10.0,
            stagger=False,
        )
    if figure == "fig5":
        # Misses need genuine bandwidth contention (with slack supply
        # neither protocol ever drops a chunk and the figure is a flat
        # zero).  Moderately tightened upload multiples land both curves
        # at the paper's magnitudes: auction ≈ 1–5 %, locality ≈ 2× that.
        return FigureConfig(
            figure="fig5",
            description="Average chunk miss rate per slot, static network",
            system=_base_system(
                scale,
                seed,
                peer_upload_min_multiple=0.8,
                peer_upload_max_multiple=2.0,
                seed_upload_multiple=3.0,
            ),
            schedulers=("auction", "locality"),
            n_static_peers=static_peers,
            duration_seconds=static_duration,
            churn=False,
            warmup_seconds=10.0,
            stagger=False,
        )
    if figure == "fig6":
        # All three metrics under churn with early departures (p = 0.6).
        # The same mildly tightened supply as fig5 keeps the miss panel
        # non-degenerate.
        return FigureConfig(
            figure="fig6",
            description="Welfare, inter-ISP traffic and miss rate under peer dynamics",
            system=_base_system(
                scale,
                seed,
                arrival_rate_per_s=1.0 if big else 2.0,
                early_departure_prob=0.6,
                peer_upload_min_multiple=0.8,
                peer_upload_max_multiple=2.0,
                seed_upload_multiple=3.0,
            ),
            schedulers=("auction", "locality"),
            n_static_peers=0,
            duration_seconds=duration,
            churn=True,
        )
    raise ValueError(f"unknown figure {figure!r}")


#: All reproducible figures with their paper captions.
FIGURES: Dict[str, str] = {
    "fig2": "The evolution of a peer's price λ_u",
    "fig3": "Comparison of social welfare",
    "fig4": "Comparison of inter-ISP traffic",
    "fig5": "Comparison of the chunk miss rate",
    "fig6": "Comparison under peer dynamics (welfare, inter-ISP traffic, miss rate)",
}
