"""Per-figure reproduction: run, render, and check the paper's shape claims.

Every ``figN`` function returns a :class:`FigureResult` carrying the
measured series, a text rendering (what the benches print), and a
``shape`` dict of boolean checks encoding the paper's qualitative
claims — who wins, in which direction, and where the sign flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..metrics.collectors import MetricsCollector
from ..metrics.report import comparison_table, series_block, sparkline
from ..metrics.timeseries import TimeSeries
from .configs import FigureConfig, figure_config
from .runner import PriceTraceResult, run_comparison, run_price_trace

__all__ = [
    "FigureResult",
    "fig2_price_convergence",
    "fig3_social_welfare",
    "fig4_inter_isp_traffic",
    "fig5_miss_rate",
    "fig6_peer_dynamics",
    "run_figure",
]


@dataclass
class FigureResult:
    """Outcome of reproducing one figure."""

    figure: str
    description: str
    series: Dict[str, Dict[str, TimeSeries]]  # scheduler → metric → series
    shape: Dict[str, bool]
    text: str

    @property
    def shape_holds(self) -> bool:
        """All of the paper's qualitative claims reproduced."""
        return all(self.shape.values())


def _collect(results: Dict[str, MetricsCollector]) -> Dict[str, Dict[str, TimeSeries]]:
    return {
        name: {
            "welfare": collector.welfare_series(),
            "inter_isp": collector.inter_isp_series(),
            "miss_rate": collector.miss_rate_series(),
            "peers": collector.peers_series(),
        }
        for name, collector in results.items()
    }


# ----------------------------------------------------------------------
# Fig. 2 — price convergence
# ----------------------------------------------------------------------
def fig2_price_convergence(
    scale: str = "bench", seed: int = 0, n_slots: int = 5
) -> FigureResult:
    """Fig. 2: λ_u at a representative peer converges within each slot.

    Paper claims encoded: the price resets at slot starts, rises, and
    converges well before the 10 s slot ends (≈5 s in the paper).
    """
    config = figure_config("fig2", scale=scale, seed=seed)
    trace = run_price_trace(config, n_slots=n_slots)
    slot = config.system.slot_seconds

    price_series = TimeSeries("lambda_u")
    for t, p in zip(trace.times, trace.prices):
        price_series.append(t, p)

    shape = {
        "price_moves": trace.max_price() > 0.0,
        "converges_within_slot": all(
            c < slot for c in trace.convergence_seconds
        ),
        "converges_in_first_half_on_average": trace.mean_convergence() < 0.75 * slot,
        "resets_each_slot": len(trace.slot_starts) == n_slots,
    }
    lines = [
        f"Fig. 2 — λ_u evolution at representative peer {trace.uploader}",
        f"  slots traced: {n_slots}, slot length {slot:.0f}s",
        f"  convergence per slot (s): "
        + ", ".join(f"{c:.2f}" for c in trace.convergence_seconds),
        f"  mean convergence: {trace.mean_convergence():.2f}s "
        f"(paper: ≈5 s of a 10 s slot)",
        f"  messages per slot: {trace.messages_per_slot}",
        f"  price trace: {sparkline(trace.prices)}  max={trace.max_price():.3f}",
    ]
    return FigureResult(
        figure="fig2",
        description=config.description,
        series={"auction": {"lambda_u": price_series}},
        shape=shape,
        text="\n".join(lines),
    )


# ----------------------------------------------------------------------
# Figs. 3–6 — scheduler comparisons
# ----------------------------------------------------------------------
def fig3_social_welfare(scale: str = "bench", seed: int = 0) -> FigureResult:
    """Fig. 3: welfare grows with arrivals under the auction; the simple
    locality protocol achieves much less and can go negative."""
    config = figure_config("fig3", scale=scale, seed=seed)
    results = run_comparison(config)
    series = _collect(results)
    auction = series["auction"]["welfare"]
    locality = series["locality"]["welfare"]
    shape = {
        "auction_beats_locality": auction.mean() > locality.mean(),
        "auction_positive": auction.tail_mean() > 0,
        "auction_grows_with_population": auction.tail_mean(0.3) > auction.values[0],
        "locality_below_auction_late": locality.tail_mean() < auction.tail_mean(),
    }
    text = "\n".join(
        [
            "Fig. 3 — social welfare per slot (dynamic arrivals)",
            comparison_table(
                {name: s["welfare"] for name, s in series.items()}, "welfare"
            ),
            series_block(series["auction"]["peers"], "peers online (auction run)"),
        ]
    )
    return FigureResult("fig3", config.description, series, shape, text)


def fig4_inter_isp_traffic(scale: str = "bench", seed: int = 0) -> FigureResult:
    """Fig. 4: the auction incurs a smaller inter-ISP share than locality."""
    config = figure_config("fig4", scale=scale, seed=seed)
    results = run_comparison(config)
    series = _collect(results)
    auction = series["auction"]["inter_isp"]
    locality = series["locality"]["inter_isp"]
    shape = {
        "auction_lower_inter_isp": auction.mean() < locality.mean(),
        "auction_lower_in_tail": auction.tail_mean() <= locality.tail_mean(),
        "locality_nontrivial": locality.mean() > 0.0,
    }
    text = "\n".join(
        [
            "Fig. 4 — fraction of inter-ISP traffic per slot (static network)",
            comparison_table(
                {name: s["inter_isp"] for name, s in series.items()}, "inter-ISP"
            ),
        ]
    )
    return FigureResult("fig4", config.description, series, shape, text)


def fig5_miss_rate(scale: str = "bench", seed: int = 0) -> FigureResult:
    """Fig. 5: the auction's chunk miss rate stays at or below locality's."""
    config = figure_config("fig5", scale=scale, seed=seed)
    results = run_comparison(config)
    series = _collect(results)
    auction = series["auction"]["miss_rate"]
    locality = series["locality"]["miss_rate"]
    shape = {
        "auction_not_worse": auction.mean() <= locality.mean() + 1e-9,
        "auction_small": auction.mean() < 0.10,
    }
    text = "\n".join(
        [
            "Fig. 5 — chunk miss rate per slot (static network)",
            comparison_table(
                {name: s["miss_rate"] for name, s in series.items()}, "miss rate"
            ),
        ]
    )
    return FigureResult("fig5", config.description, series, shape, text)


def fig6_peer_dynamics(scale: str = "bench", seed: int = 0) -> FigureResult:
    """Fig. 6(a–c): the orderings of Figs. 3–5 persist under churn with
    early departures (probability 0.6)."""
    config = figure_config("fig6", scale=scale, seed=seed)
    results = run_comparison(config)
    series = _collect(results)
    a, l = series["auction"], series["locality"]
    shape = {
        "welfare_auction_wins": a["welfare"].mean() > l["welfare"].mean(),
        "inter_isp_auction_lower": a["inter_isp"].mean() < l["inter_isp"].mean(),
        "miss_auction_not_worse": a["miss_rate"].mean() <= l["miss_rate"].mean() + 1e-9,
    }
    text = "\n".join(
        [
            "Fig. 6 — comparison under peer dynamics (early departure p=0.6)",
            "(a) social welfare",
            comparison_table({n: s["welfare"] for n, s in series.items()}, "welfare"),
            "(b) inter-ISP traffic",
            comparison_table({n: s["inter_isp"] for n, s in series.items()}, "inter-ISP"),
            "(c) miss rate",
            comparison_table({n: s["miss_rate"] for n, s in series.items()}, "miss"),
        ]
    )
    return FigureResult("fig6", config.description, series, shape, text)


_RUNNERS: Dict[str, Callable[..., FigureResult]] = {
    "fig2": fig2_price_convergence,
    "fig3": fig3_social_welfare,
    "fig4": fig4_inter_isp_traffic,
    "fig5": fig5_miss_rate,
    "fig6": fig6_peer_dynamics,
}


def run_figure(figure: str, scale: str = "bench", seed: int = 0) -> FigureResult:
    """Run any figure by name ('fig2' … 'fig6')."""
    try:
        runner = _RUNNERS[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; available: {sorted(_RUNNERS)}"
        ) from None
    return runner(scale=scale, seed=seed)
