"""Command-line interface: reproduce figures and run ablations.

Usage::

    python -m repro figures              # all figures, bench scale
    python -m repro figures --figure fig4 --scale bench --seed 3
    python -m repro sweep-epsilon
    python -m repro solvers
    python -m repro shootout
    python -m repro scenario list
    python -m repro scenario run flash-crowd --seed 3
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

import numpy as np

from .experiments.configs import FIGURES
from .experiments.figures import run_figure
from .experiments.sweep import (
    epsilon_sweep,
    render_epsilon_sweep,
    render_solver_comparison,
    scheduler_shootout,
    solver_comparison,
)
from .metrics.report import render_table

__all__ = ["main"]


def _cmd_figures(args: argparse.Namespace) -> int:
    figures = [args.figure] if args.figure else sorted(FIGURES)
    failures = 0
    for figure in figures:
        result = run_figure(figure, scale=args.scale, seed=args.seed)
        print(f"=== {figure}: {FIGURES[figure]} ===")
        print(result.text)
        status = "OK" if result.shape_holds else "SHAPE MISMATCH"
        print(f"shape checks: {result.shape} -> {status}")
        print()
        if not result.shape_holds:
            failures += 1
    return 1 if failures else 0


def _cmd_sweep_epsilon(args: argparse.Namespace) -> int:
    rows = epsilon_sweep(
        epsilons=[10.0, 1.0, 0.1, 0.01, 0.001],
        rng=np.random.default_rng(args.seed),
    )
    print(render_epsilon_sweep(rows))
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    rows = solver_comparison(rng=np.random.default_rng(args.seed))
    print(render_solver_comparison(rows))
    return 0


def _cmd_strategic(args: argparse.Namespace) -> int:
    from .core.problem import random_problem
    from .core.strategic import manipulation_study

    rng = np.random.default_rng(args.seed)
    problem = random_problem(
        rng, n_requests=30, n_uploaders=3, max_candidates=3, capacity_range=(1, 2)
    )
    # Pick a peer at the competitive margin: unserved truthfully, but with
    # positive-value edges it could steal by overbidding.
    from .core.exact import solve_hungarian

    base = solve_hungarian(problem)
    cheater = problem.request(0).peer
    for r in range(problem.n_requests):
        values = problem.edge_values_of(r)
        if base.assignment[r] is None and len(values) and values.max() > 0:
            cheater = problem.request(r).peer
            break
    rows = manipulation_study(problem, cheater, [0.5, 1.0, 2.0, 4.0, 8.0])
    print(f"strategic peer {cheater} on {problem.describe()}")
    print(render_table(
        ["factor", "chunks won", "auction true utility", "true welfare", "VCG net utility"],
        [
            [r.factor, r.chunks_won, r.auction_true_utility,
             r.auction_welfare, r.vcg_net_utility]
            for r in rows
        ],
    ))
    return 0


def _cmd_shootout(args: argparse.Namespace) -> int:
    results = scheduler_shootout(seed=args.seed)
    headers = [
        "scheduler", "welfare/slot", "inter-ISP", "miss rate", "served",
        "fairness", "localization",
    ]
    rows = [
        [
            name,
            totals["welfare_mean_per_slot"],
            totals["inter_isp_fraction"],
            totals["miss_rate"],
            int(totals["served_total"]),
            totals["download_fairness"],
            totals["traffic_localization"],
        ]
        for name, totals in results.items()
    ]
    print(render_table(headers, rows))
    return 0


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from .scenarios import build_scenario, scenario_names

    rows = []
    for name in scenario_names():
        spec = build_scenario(name, scale="bench")
        rows.append(
            [
                name,
                len(spec.events),
                "yes" if spec.churn else "no",
                spec.n_static_peers,
                spec.description,
            ]
        )
    print(render_table(
        ["scenario", "event specs", "churn", "base peers", "description"], rows
    ))
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    import dataclasses

    from .scenarios import ScenarioRunner, build_scenario, load_scenario

    if args.name.endswith((".yaml", ".yml", ".json")):
        spec = load_scenario(args.name)
        if args.scale is not None and args.scale != spec.scale:
            # Rescale only — population, horizon and warm-up stay the
            # spec file's own.
            spec = dataclasses.replace(spec, scale=args.scale)
            spec.validate()
    else:
        spec = build_scenario(args.name, scale=args.scale or "bench")
    if args.duration is not None:
        spec = spec.abridged(args.duration)
    result = ScenarioRunner(spec, seed=args.seed).run()
    report = result.render_report()
    print(report)
    if not args.no_save:
        out = args.output or pathlib.Path("results") / f"scenario_{spec.name}.txt"
        out = pathlib.Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n", encoding="utf-8")
        print(f"\nwrote {out}")
    return 0


def _cmd_scenario_import_trace(args: argparse.Namespace) -> int:
    from .scenarios import ScenarioRunner, dump_scenario, import_trace

    spec = import_trace(
        args.trace,
        name=args.name or "",
        scale=args.scale or "bench",
        duration_seconds=args.duration or 0.0,
    )
    out = args.output or pathlib.Path("results") / f"scenario_{spec.name}.json"
    out = pathlib.Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    dump_scenario(spec, out)
    print(
        f"imported {len(spec.events[0].arrivals)} arrivals from {args.trace} "
        f"-> {out} (duration {spec.duration_seconds:g}s)"
    )
    if args.run:
        result = ScenarioRunner(spec, seed=args.seed).run()
        print()
        print(result.render_report())
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .obs import JsonlTraceSink
    from .p2p.config import SystemConfig
    from .p2p.system import P2PSystem

    config = SystemConfig.bench(
        seed=args.seed,
        bid_rounds_per_slot=1,
        sharded_solve=args.sharded,
        shard_workers=args.workers,
    )
    system = P2PSystem(config)
    system.populate_static(args.peers)
    sink = JsonlTraceSink(args.output)
    tracer = system.attach_tracer(sink)
    try:
        for _ in range(args.slots):
            system.run_slot()
    finally:
        tracer.close()
        system.close()
    print(f"wrote {sink.n_records} slot spans -> {args.output}")
    return 0


def _cmd_trace_summarize(args: argparse.Namespace) -> int:
    from .obs import load_trace, summarize_trace

    print(summarize_trace(load_trace(args.trace), label=str(args.trace)))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .obs import diff_traces, load_trace

    label_a = args.label_a or pathlib.Path(args.trace_a).stem
    label_b = args.label_b or pathlib.Path(args.trace_b).stem
    print(
        diff_traces(
            load_trace(args.trace_a), load_trace(args.trace_b),
            label_a, label_b,
        )
    )
    return 0


def _cmd_trace_rollup(args: argparse.Namespace) -> int:
    from .obs import load_trace, rollup_traces

    traces = {pathlib.Path(p).stem: load_trace(p) for p in args.traces}
    print(rollup_traces(traces))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-p2p",
        description="Reproduce 'Socially-optimal ISP-aware P2P Content "
        "Distribution via a Primal-Dual Approach' (Zhao & Wu, 2014)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce the paper's figures")
    figures.add_argument(
        "--figure", choices=sorted(FIGURES), default=None, help="one figure only"
    )
    figures.add_argument(
        "--scale",
        choices=("tiny", "bench", "paper"),
        default="bench",
        help="workload scale (paper = full Section V setting, slow)",
    )
    figures.set_defaults(func=_cmd_figures)

    sweep = sub.add_parser("sweep-epsilon", help="ablation: ε work/optimality trade-off")
    sweep.set_defaults(func=_cmd_sweep_epsilon)

    solvers = sub.add_parser("solvers", help="ablation: auction vs exact oracles")
    solvers.set_defaults(func=_cmd_solvers)

    shootout = sub.add_parser("shootout", help="ablation: all schedulers on one workload")
    shootout.set_defaults(func=_cmd_shootout)

    strategic = sub.add_parser(
        "strategic", help="manipulation study + VCG fix (paper's future work)"
    )
    strategic.set_defaults(func=_cmd_strategic)

    scenario = sub.add_parser(
        "scenario", help="declarative scenario engine (catalog + custom specs)"
    )
    scn_sub = scenario.add_subparsers(dest="scenario_action", required=True)
    scn_list = scn_sub.add_parser("list", help="list the registered scenarios")
    scn_list.set_defaults(func=_cmd_scenario_list)
    scn_run = scn_sub.add_parser(
        "run", help="run one scenario (catalog name or a .yaml/.json spec file)"
    )
    scn_run.add_argument(
        "name", help="registered scenario name, or path to a spec file"
    )
    scn_run.add_argument(
        "--scale",
        choices=("tiny", "bench", "paper"),
        default=None,
        help="workload scale (default: bench, or the spec file's own)",
    )
    scn_run.add_argument(
        "--duration", type=float, default=None,
        help="override the measured horizon in seconds (drops warm-up)",
    )
    scn_run.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="report path (default results/scenario_<name>.txt)",
    )
    scn_run.add_argument(
        "--no-save", action="store_true", help="print the report only"
    )
    scn_run.set_defaults(func=_cmd_scenario_run)
    scn_import = scn_sub.add_parser(
        "import-trace",
        help="convert a VoD arrival log (CSV/JSON: time, peer, video) "
        "into a replayable scenario spec file",
    )
    scn_import.add_argument("trace", help="path to the arrival log")
    scn_import.add_argument(
        "--name", default=None, help="scenario name (default trace-<stem>)"
    )
    scn_import.add_argument(
        "--scale",
        choices=("tiny", "bench", "paper"),
        default=None,
        help="system scale preset for the replay (default bench)",
    )
    scn_import.add_argument(
        "--duration", type=float, default=None,
        help="horizon in seconds (default: last arrival + 2 slots)",
    )
    scn_import.add_argument(
        "--output", type=pathlib.Path, default=None,
        help="spec file path (default results/scenario_<name>.json)",
    )
    scn_import.add_argument(
        "--run", action="store_true",
        help="also run the imported scenario and print its report",
    )
    scn_import.set_defaults(func=_cmd_scenario_import_trace)

    trace = sub.add_parser(
        "trace", help="slot-phase telemetry: record and analyse JSONL traces"
    )
    trc_sub = trace.add_subparsers(dest="trace_action", required=True)
    trc_record = trc_sub.add_parser(
        "record", help="run a static workload with tracing on, write JSONL"
    )
    trc_record.add_argument(
        "output", type=pathlib.Path, help="trace output path (.jsonl)"
    )
    trc_record.add_argument(
        "--peers", type=int, default=5000, help="static swarm size"
    )
    trc_record.add_argument(
        "--slots", type=int, default=2, help="slots to run"
    )
    trc_record.add_argument(
        "--workers", type=int, default=0,
        help="shard worker processes (0 = in-process shards)",
    )
    trc_record.add_argument(
        "--sharded", action=argparse.BooleanOptionalAction, default=True,
        help="use the region-sharded solver (default on)",
    )
    trc_record.set_defaults(func=_cmd_trace_record)
    trc_summarize = trc_sub.add_parser(
        "summarize", help="per-slot table + totals for one trace"
    )
    trc_summarize.add_argument("trace", type=pathlib.Path, help="trace file")
    trc_summarize.set_defaults(func=_cmd_trace_summarize)
    trc_diff = trc_sub.add_parser(
        "diff", help="compare aggregate counters of two traces (timing excluded)"
    )
    trc_diff.add_argument("trace_a", type=pathlib.Path, help="baseline trace")
    trc_diff.add_argument("trace_b", type=pathlib.Path, help="candidate trace")
    trc_diff.add_argument("--label-a", default=None, help="name for column A")
    trc_diff.add_argument("--label-b", default=None, help="name for column B")
    trc_diff.set_defaults(func=_cmd_trace_diff)
    trc_rollup = trc_sub.add_parser(
        "rollup", help="one summary row per trace file"
    )
    trc_rollup.add_argument(
        "traces", type=pathlib.Path, nargs="+", help="trace files"
    )
    trc_rollup.set_defaults(func=_cmd_trace_rollup)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
