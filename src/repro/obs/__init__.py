"""Structured telemetry: slot-phase tracing, per-ISP rollups, analysis.

The observability layer of the slot pipeline, in three parts:

* :mod:`repro.obs.sinks` — the pluggable :class:`TraceSink` contract and
  its three implementations (:class:`NullTraceSink` — the disabled
  default, branch-cheap on the hot path; :class:`MemoryTraceSink` for
  tests; :class:`JsonlTraceSink` for files).
* :mod:`repro.obs.trace` — the per-slot span schema
  (:data:`TRACE_SCHEMA_VERSION`, :func:`validate_trace_record`) and the
  :class:`SlotTracer` the system emits through.  Timing fields live in
  a segregated ``"timing"`` sub-dict so :func:`canonical_line` can
  strip them and traces compare byte-for-byte across runs.
* :mod:`repro.obs.rollup` — :class:`IspRollup`, the vectorized per-ISP
  accumulator (chunks in/out, transit traffic and cost, per-home-ISP
  QoE) and its reusable report block.
* :mod:`repro.obs.analyze` — the cross-run pipeline behind
  ``python -m repro trace summarize|diff|rollup``.

Instrumentation is disabled by default: a system without an attached
tracer (or with a :class:`NullTraceSink`) pays one attribute check per
slot, gated by the tier-1 overhead test.
"""

from __future__ import annotations

from .analyze import (
    diff_traces,
    load_trace,
    rollup_traces,
    summarize_trace,
    trace_totals,
)
from .rollup import IspRollup, isp_rollup_block
from .sinks import JsonlTraceSink, MemoryTraceSink, NullTraceSink, TraceSink
from .trace import (
    TRACE_SCHEMA_VERSION,
    SlotTracer,
    canonical_line,
    strip_timing,
    validate_trace_record,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "IspRollup",
    "JsonlTraceSink",
    "MemoryTraceSink",
    "NullTraceSink",
    "SlotTracer",
    "TraceSink",
    "canonical_line",
    "diff_traces",
    "isp_rollup_block",
    "load_trace",
    "rollup_traces",
    "strip_timing",
    "summarize_trace",
    "trace_totals",
    "validate_trace_record",
]
