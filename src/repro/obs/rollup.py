"""Per-ISP metrics rollup: traffic in/out, transit cost, QoE by home ISP.

The reusable per-ISP accounting block the ROADMAP's ISP-economics item
needs: a vectorized per-slot × per-ISP accumulator fed by the slot
pipeline's existing epilogue arrays (no extra per-edge Python work —
everything lands via ``np.bincount`` on ISP columns that the transfer
and retry paths already compute).

Attribution conventions:

* ``chunks_out[i]`` — chunks uploaded by peers homed in ISP ``i``;
  ``chunks_in[i]`` — chunks received there (retry deliveries included).
* ``transit_out`` / ``transit_in`` — the inter-ISP subset of the above.
* ``transit_cost`` — the summed network cost ``w`` of inter-ISP edges,
  attributed to the *downstream* (receiving) home ISP: that is the
  eyeball ISP whose transit bill the paper's locality objective cuts.
* QoE (``due``/``missed``, retry attempts/successes, startup delay) is
  attributed to the requesting peer's home ISP.

The accumulator is enabled per run via ``SystemConfig.isp_rollup`` and
rendered by :func:`isp_rollup_block`, which ``ScenarioRunner`` appends
to scenario reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..metrics.report import render_table

__all__ = ["IspRollup", "isp_rollup_block"]

#: Integer-counter fields of one per-slot row, in column order.
_INT_FIELDS = (
    "chunks_in", "chunks_out", "transit_in", "transit_out",
    "due", "missed", "retry_attempts", "retry_succeeded",
)


class IspRollup:
    """Per-slot × per-ISP counter matrix, accumulated during a run.

    One ``begin_slot()``/``end_slot()`` bracket per slot; in between the
    system's transfer/retry/playback hooks deposit their ISP columns.
    ``totals()`` aggregates over slots; ``matrix(field)`` exposes the
    full per-slot history for cross-slot analysis.
    """

    def __init__(self, n_isps: int) -> None:
        if n_isps < 1:
            raise ValueError(f"n_isps must be >= 1, got {n_isps!r}")
        self.n_isps = int(n_isps)
        self.n_slots = 0
        self._history: Dict[str, List[np.ndarray]] = {
            field: [] for field in _INT_FIELDS + ("transit_cost",)
        }
        self._cur: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Slot bracket
    # ------------------------------------------------------------------
    def begin_slot(self) -> None:
        """Open a fresh per-slot row (closing any left-open one)."""
        if self._cur is not None:
            self.end_slot()
        self._cur = {
            field: np.zeros(self.n_isps, dtype=np.int64)
            for field in _INT_FIELDS
        }
        self._cur["transit_cost"] = np.zeros(self.n_isps, dtype=float)

    def end_slot(self) -> None:
        """Commit the open row into the history (no-op if none open)."""
        if self._cur is None:
            return
        for field, row in self._cur.items():
            self._history[field].append(row)
        self._cur = None
        self.n_slots += 1

    def _row(self, field: str) -> np.ndarray:
        if self._cur is None:
            self.begin_slot()
        return self._cur[field]

    # ------------------------------------------------------------------
    # Hot-path deposits (all bincount-based; called only when enabled)
    # ------------------------------------------------------------------
    def record_transfers(
        self,
        up_isps: np.ndarray,
        down_isps: np.ndarray,
        costs: Optional[np.ndarray] = None,
    ) -> None:
        """Account one delivered batch (first-pass or retry) by ISP.

        ``costs`` are the per-edge network costs ``w`` aligned with the
        batch; omitted (retry paths without a problem in hand may skip
        them) the transit chunk counts still accumulate.
        """
        n = self.n_isps
        self._row("chunks_out")[:] += np.bincount(up_isps, minlength=n)[:n]
        self._row("chunks_in")[:] += np.bincount(down_isps, minlength=n)[:n]
        inter = up_isps != down_isps
        if inter.any():
            up_t = up_isps[inter]
            down_t = down_isps[inter]
            self._row("transit_out")[:] += np.bincount(up_t, minlength=n)[:n]
            self._row("transit_in")[:] += np.bincount(down_t, minlength=n)[:n]
            if costs is not None:
                self._row("transit_cost")[:] += np.bincount(
                    down_t, weights=costs[inter], minlength=n
                )[:n]

    def record_playback(
        self, isps: np.ndarray, due: np.ndarray, missed: np.ndarray
    ) -> None:
        """Account per-watcher due/missed chunk counts by home ISP."""
        n = self.n_isps
        self._row("due")[:] += np.bincount(isps, weights=due, minlength=n)[
            :n
        ].astype(np.int64)
        self._row("missed")[:] += np.bincount(
            isps, weights=missed, minlength=n
        )[:n].astype(np.int64)

    def record_retries(
        self, attempt_isps: np.ndarray, success_isps: np.ndarray
    ) -> None:
        """Account retry attempts/deliveries by the requester's home ISP."""
        n = self.n_isps
        self._row("retry_attempts")[:] += np.bincount(
            attempt_isps, minlength=n
        )[:n]
        self._row("retry_succeeded")[:] += np.bincount(
            success_isps, minlength=n
        )[:n]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def matrix(self, field: str) -> np.ndarray:
        """The ``(n_slots, n_isps)`` per-slot history of one counter."""
        rows = self._history[field]
        if not rows:
            dtype = float if field == "transit_cost" else np.int64
            return np.zeros((0, self.n_isps), dtype=dtype)
        return np.vstack(rows)

    def totals(self) -> Dict[str, np.ndarray]:
        """Whole-run per-ISP aggregates (committed slots only)."""
        out = {}
        for field in _INT_FIELDS + ("transit_cost",):
            mat = self.matrix(field)
            out[field] = mat.sum(axis=0)
        return out


def isp_rollup_block(
    rollups_by_scheduler: Dict[str, IspRollup],
    startup_by_isp_by_scheduler: Optional[
        Dict[str, Dict[int, Tuple[float, int]]]
    ] = None,
) -> str:
    """The reusable per-ISP report block (one row per scheduler × ISP).

    Columns: chunk traffic in/out, the inter-ISP (transit) subset,
    transit cost billed to the receiving ISP, the home-ISP miss rate,
    retries delivered over attempted, and — when the caller supplies
    per-ISP startup stats — mean join→first-chunk delay with the peer
    count it averages, in the QoE block's ``12.3s/5p`` format.
    """
    headers = [
        "scheduler", "isp", "chunks_in", "chunks_out", "transit_in",
        "transit_out", "transit_cost", "miss_rate", "retry_ok/att",
        "startup",
    ]
    rows: List[List[object]] = []
    for name, rollup in rollups_by_scheduler.items():
        totals = rollup.totals()
        startup = (startup_by_isp_by_scheduler or {}).get(name, {})
        for isp in range(rollup.n_isps):
            due = int(totals["due"][isp])
            missed = int(totals["missed"][isp])
            attempts = int(totals["retry_attempts"][isp])
            succeeded = int(totals["retry_succeeded"][isp])
            delay = startup.get(isp)
            rows.append(
                [
                    name,
                    isp,
                    int(totals["chunks_in"][isp]),
                    int(totals["chunks_out"][isp]),
                    int(totals["transit_in"][isp]),
                    int(totals["transit_out"][isp]),
                    float(totals["transit_cost"][isp]),
                    missed / due if due else 0.0,
                    f"{succeeded}/{attempts}",
                    "-" if delay is None else f"{delay[0]:.1f}s/{int(delay[1])}p",
                ]
            )
    return "Per-ISP rollup\n" + render_table(headers, rows)
