"""Cross-run trace analysis: the engine behind ``repro trace …``.

Loads JSONL slot traces (:mod:`repro.obs.trace` schema), aggregates
them, and renders the comparison tables the CLI prints:

* ``summarize`` — one trace: per-slot table plus whole-run totals.
* ``diff`` — two traces side by side (e.g. ``workers=0`` vs
  ``workers=2``, or flat vs sharded).  Only deterministic counters are
  compared — timing never enters the table, so the rendering is stable
  across machines and the committed example traces pin it.
* ``rollup`` — N traces, one row each: the cross-run dashboard that
  replaces ad-hoc BENCH-json spelunking (mean slot wall time is the one
  deliberately machine-dependent column).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from ..metrics.report import render_table
from .trace import validate_trace_record

__all__ = [
    "diff_traces",
    "load_trace",
    "rollup_traces",
    "summarize_trace",
    "trace_totals",
]


def load_trace(path: Union[str, pathlib.Path]) -> List[dict]:
    """Load and schema-validate one JSONL trace file."""
    records = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
        try:
            validate_trace_record(record)
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from None
        records.append(record)
    if not records:
        raise ValueError(f"{path}: empty trace")
    return records


def trace_totals(records: List[dict]) -> Dict[str, object]:
    """Whole-trace aggregates of the deterministic counters."""
    n = len(records)

    def tot(getter) -> float:
        return sum(getter(r) for r in records)

    inter = int(tot(lambda r: r["traffic"]["inter"]))
    intra = int(tot(lambda r: r["traffic"]["intra"]))
    due = int(tot(lambda r: r["playback"]["due"]))
    missed = int(tot(lambda r: r["playback"]["missed"]))
    sharded = [r["sharded"] for r in records if r.get("sharded")]
    out: Dict[str, object] = {
        "slots": n,
        "peers_final": int(records[-1]["n_peers"]),
        "arrivals": int(tot(lambda r: r["arrivals"])),
        "departures": int(tot(lambda r: r["departures"])),
        "requests": int(tot(lambda r: r["n_requests"])),
        "served": int(tot(lambda r: r["n_served"])),
        "welfare": float(tot(lambda r: r["welfare"])),
        "builds_cold": sum(1 for r in records if r["build"] == "cold"),
        "builds_patch": sum(1 for r in records if r["build"] == "patch"),
        "solver_rounds": int(tot(lambda r: r["solver"]["rounds"])),
        "bids_submitted": int(tot(lambda r: r["solver"]["bids_submitted"])),
        "price_updates": int(tot(lambda r: r["solver"]["price_updates"])),
        "evictions": int(tot(lambda r: r["solver"]["evictions"])),
        "rows_evaluated": int(tot(lambda r: r["solver"]["rows_evaluated"])),
        "inter_isp": inter,
        "intra_isp": intra,
        "inter_frac": inter / (inter + intra) if inter + intra else 0.0,
        "due": due,
        "missed": missed,
        "miss_rate": missed / due if due else 0.0,
        "retry_attempts": int(tot(lambda r: r["retry"]["attempts"])),
        "retry_succeeded": int(tot(lambda r: r["retry"]["succeeded"])),
        "transfers_failed": int(tot(lambda r: r["link"]["transfers_failed"])),
    }
    if sharded:
        out["coordination_rounds"] = int(
            sum(s["coordination_rounds"] for s in sharded)
        )
        out["boundary_uploaders"] = int(
            sum(s["boundary_uploaders"] for s in sharded)
        )
        out["contested_rows"] = int(sum(s["contested_rows"] for s in sharded))
        out["sharded_fallbacks"] = int(sum(s["fallbacks"] for s in sharded))
        out["procs"] = int(max(s["procs"] for s in sharded))
        out["par_shards"] = int(sum(s["par_shards"] for s in sharded))
        out["worker_fallbacks"] = int(
            sum(s["worker_fallbacks"] for s in sharded)
        )
        out["blocks_republished"] = int(
            sum(
                s["blocks_republished"]
                for s in sharded
                if s["blocks_republished"] >= 0
            )
        )
    return out


#: Diff/rollup row order: every counter trace_totals can produce.
_TOTAL_FIELDS = (
    "slots", "peers_final", "arrivals", "departures", "requests", "served",
    "welfare", "builds_cold", "builds_patch", "solver_rounds",
    "bids_submitted", "price_updates", "evictions", "rows_evaluated",
    "inter_isp", "intra_isp", "inter_frac", "due", "missed", "miss_rate",
    "retry_attempts", "retry_succeeded", "transfers_failed",
    "coordination_rounds", "boundary_uploaders", "contested_rows",
    "sharded_fallbacks", "procs", "par_shards", "worker_fallbacks",
    "blocks_republished",
)


def summarize_trace(
    records: List[dict], label: Optional[str] = None, max_rows: int = 20
) -> str:
    """Per-slot table plus totals for one loaded trace."""
    headers = [
        "slot", "peers", "reqs", "served", "welfare", "rounds", "build",
        "inter", "intra", "due", "missed", "retry_ok/att",
    ]
    rows: List[List[object]] = []
    for r in records[:max_rows]:
        rows.append(
            [
                r["slot"],
                r["n_peers"],
                r["n_requests"],
                r["n_served"],
                float(r["welfare"]),
                r["solver"]["rounds"],
                r["build"],
                r["traffic"]["inter"],
                r["traffic"]["intra"],
                r["playback"]["due"],
                r["playback"]["missed"],
                f"{r['retry']['succeeded']}/{r['retry']['attempts']}",
            ]
        )
    lines = []
    if label:
        lines.append(f"Trace {label} — {len(records)} slots (schema v{records[0]['v']})")
    lines.append(render_table(headers, rows))
    if len(records) > max_rows:
        lines.append(f"… {len(records) - max_rows} more slots")
    totals = trace_totals(records)
    parts = [
        f"welfare={totals['welfare']:.4g}",
        f"served={totals['served']}",
        f"inter_frac={totals['inter_frac']:.4g}",
        f"miss_rate={totals['miss_rate']:.4g}",
        f"rounds={totals['solver_rounds']}",
    ]
    if "coordination_rounds" in totals:
        parts.append(f"coord_rounds={totals['coordination_rounds']}")
        parts.append(f"procs={totals['procs']}")
    lines.append("totals: " + " ".join(parts))
    return "\n".join(lines)


def diff_traces(
    a: List[dict],
    b: List[dict],
    label_a: str = "a",
    label_b: str = "b",
) -> str:
    """Counter-by-counter comparison of two traces (timing excluded).

    Rows are the shared deterministic totals; the delta column is
    ``b − a`` for numeric fields.  Byte-equal deterministic bodies
    (e.g. ``workers=0`` vs ``workers=2``, which are pinned identical)
    diff to zero everywhere except the execution-shape fields
    (``procs``, ``par_shards``, ``blocks_republished``).
    """
    ta, tb = trace_totals(a), trace_totals(b)
    rows: List[List[object]] = []
    for field in _TOTAL_FIELDS:
        if field not in ta and field not in tb:
            continue
        va = ta.get(field, 0)
        vb = tb.get(field, 0)
        delta = vb - va
        rows.append(
            [
                field,
                va,
                vb,
                delta if isinstance(delta, int) else float(delta),
            ]
        )
    header = f"Trace diff: {label_a} vs {label_b}"
    return header + "\n" + render_table(
        ["metric", label_a, label_b, "delta"], rows
    )


def rollup_traces(traces: Dict[str, List[dict]]) -> str:
    """One row per trace: the cross-run comparison dashboard.

    ``slot_s`` (mean wall-clock per slot) is the single timing column —
    the point of a cross-run rollup is often exactly that comparison,
    so it is included here and only here.
    """
    headers = [
        "trace", "slots", "peers", "welfare", "served", "inter_frac",
        "miss_rate", "rounds", "coord", "procs", "worker_fb", "slot_s",
    ]
    rows: List[List[object]] = []
    for label, records in traces.items():
        totals = trace_totals(records)
        slot_s = sum(r["timing"]["slot_s"] for r in records) / len(records)
        rows.append(
            [
                label,
                totals["slots"],
                totals["peers_final"],
                float(totals["welfare"]),
                totals["served"],
                float(totals["inter_frac"]),
                float(totals["miss_rate"]),
                totals["solver_rounds"],
                totals.get("coordination_rounds", 0),
                totals.get("procs", 0),
                totals.get("worker_fallbacks", 0),
                float(slot_s),
            ]
        )
    return "Trace rollup\n" + render_table(headers, rows)
