"""Trace sinks: where slot-span records go.

The sink contract is deliberately tiny — ``emit(record)`` takes one
plain-dict span record per slot, ``close()`` releases whatever the sink
holds, and ``enabled`` tells the instrumented hot path whether to
collect at all.  The system checks ``enabled`` once per slot and skips
every counter gather and ``perf_counter`` call when it is False, so a
:class:`NullTraceSink` (or no tracer at all) costs one attribute read
per slot — the tier-1 overhead gate in ``tests/obs`` pins this.

Records are JSON-ready dicts; :class:`JsonlTraceSink` serializes them
with ``sort_keys=True`` so two runs that produce equal records produce
byte-equal files (see :func:`repro.obs.trace.canonical_line` for the
timing-free comparison form).
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, List, Optional, Protocol, Union, runtime_checkable

__all__ = [
    "JsonlTraceSink",
    "MemoryTraceSink",
    "NullTraceSink",
    "TraceSink",
]


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive per-slot span records.

    ``enabled`` is read once per slot by the instrumented pipeline;
    a False value means ``emit`` is never called, so a disabled sink
    costs one attribute check per slot.
    """

    enabled: bool

    def emit(self, record: dict) -> None:
        """Receive one span record (a JSON-ready plain dict)."""
        ...

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        ...


class NullTraceSink:
    """The disabled default: never called, never allocates."""

    enabled = False

    def emit(self, record: dict) -> None:  # pragma: no cover — never called
        pass

    def close(self) -> None:
        pass


class MemoryTraceSink:
    """Collects records in a list (tests, in-process analysis)."""

    enabled = True

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


class JsonlTraceSink:
    """Writes one deterministic JSON line per record to a file.

    Lines are ``json.dumps(record, sort_keys=True)`` — key order never
    depends on dict construction order, so equal records serialize to
    equal bytes.  The file opens lazily on the first emit (attaching a
    sink to a run that records nothing leaves no file behind) and
    parent directories are created as needed.
    """

    enabled = True

    def __init__(self, path: Union[str, pathlib.Path]) -> None:
        self.path = pathlib.Path(path)
        self._fh: Optional[IO[str]] = None
        self.n_records = 0

    def emit(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self.n_records += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
