"""The per-slot span schema and the tracer the system emits through.

One record per slot, assembled by :meth:`P2PSystem.run_slot` only when
the attached sink is enabled.  The record is a plain dict in two parts:

* the **deterministic body** — every counter the slot produced (churn,
  build kind and delta reasons, solver work, sharded-coordination
  diagnostics, retry pipeline, traffic split, playback misses).  Equal
  seeds produce byte-equal bodies across runs and machines; the
  property suite pins this.
* the ``"timing"`` sub-dict — wall-clock phase durations (build, solve,
  apply, playback, retries, whole slot) plus per-worker wall times from
  the shard pool.  Timing is the only machine-dependent content, so
  :func:`strip_timing` / :func:`canonical_line` remove exactly one key
  to get the comparable form.

Schema evolution: bump :data:`TRACE_SCHEMA_VERSION` when a field
changes meaning; *adding* fields is compatible (``validate_trace_record``
checks presence and types of the required set, not exhaustiveness —
that is also how a new counter is added: collect it in ``run_slot``
under the ``tracing`` branch, name it here if it must be guaranteed).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .sinks import NullTraceSink, TraceSink

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SlotTracer",
    "canonical_line",
    "strip_timing",
    "validate_trace_record",
]

#: Version stamped into every record's ``"v"`` field.
TRACE_SCHEMA_VERSION = 1

#: Required top-level fields and their types (the guaranteed schema).
_REQUIRED: Tuple[Tuple[str, type], ...] = (
    ("v", int),
    ("slot", int),
    ("time", float),
    ("n_peers", int),
    ("arrivals", int),
    ("departures", int),
    ("n_requests", int),
    ("n_served", int),
    ("welfare", float),
    ("build", str),
    ("delta_reasons", dict),
    ("solver", dict),
    ("retry", dict),
    ("traffic", dict),
    ("playback", dict),
    ("link", dict),
    ("timing", dict),
)

#: Required sub-fields of the nested counter groups.
_REQUIRED_NESTED: Dict[str, Tuple[str, ...]] = {
    "solver": (
        "rounds", "bids_submitted", "bids_rejected", "evictions",
        "price_updates", "rows_evaluated",
    ),
    "retry": ("attempts", "succeeded", "surrendered", "evicted", "pending"),
    "traffic": ("inter", "intra"),
    "playback": ("due", "missed"),
    "link": ("regime", "transfers_failed", "delay_ms"),
    "timing": ("build_s", "solve_s", "apply_s", "playback_s", "retry_s", "slot_s"),
}

#: Build kinds ``run_slot`` stamps into the ``"build"`` field.
_BUILD_KINDS = ("cold", "patch", "none")


def validate_trace_record(record: dict) -> None:
    """Raise ``ValueError`` if ``record`` violates the span schema."""
    if not isinstance(record, dict):
        raise ValueError(f"trace record must be a dict, got {type(record)}")
    for key, kind in _REQUIRED:
        if key not in record:
            raise ValueError(f"trace record missing field {key!r}")
        value = record[key]
        if kind is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"field {key!r} must be numeric, got {value!r}")
        elif not isinstance(value, kind):
            raise ValueError(
                f"field {key!r} must be {kind.__name__}, got {type(value).__name__}"
            )
    if record["v"] != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"trace schema v{record['v']} != supported v{TRACE_SCHEMA_VERSION}"
        )
    if record["build"] not in _BUILD_KINDS:
        raise ValueError(f"unknown build kind {record['build']!r}")
    for group, fields in _REQUIRED_NESTED.items():
        block = record[group]
        for field in fields:
            if field not in block:
                raise ValueError(f"trace record missing {group}.{field}")
    sharded = record.get("sharded")
    if sharded is not None and not isinstance(sharded, dict):
        raise ValueError("field 'sharded' must be a dict or None")


def strip_timing(record: dict) -> dict:
    """Copy of ``record`` without its machine-dependent ``"timing"`` key."""
    return {k: v for k, v in record.items() if k != "timing"}


def canonical_line(record: dict) -> str:
    """The byte-comparable serialization: timing stripped, keys sorted.

    Two runs of the same seed produce equal canonical lines slot for
    slot, whatever machine or scheduler interleaving produced them —
    the Hypothesis suite in ``tests/properties`` pins this.
    """
    return json.dumps(strip_timing(record), sort_keys=True)


class SlotTracer:
    """Thin emitting front-end the system holds: a sink plus a counter.

    The tracer exists so the slot pipeline has one object to probe
    (``tracer.enabled``) and one to hand records to, independent of the
    sink implementation; ``emitted`` counts spans for smoke assertions.
    """

    def __init__(self, sink: Optional[TraceSink] = None) -> None:
        self.sink: TraceSink = sink if sink is not None else NullTraceSink()
        self.emitted = 0

    @property
    def enabled(self) -> bool:
        """Whether the slot pipeline should collect span counters."""
        return self.sink.enabled

    def emit(self, record: dict) -> None:
        """Forward one span record to the sink."""
        self.sink.emit(record)
        self.emitted += 1

    def close(self) -> None:
        """Close the underlying sink (idempotent)."""
        self.sink.close()

    # ------------------------------------------------------------------
    # In-memory convenience (MemoryTraceSink only)
    # ------------------------------------------------------------------
    def records(self) -> List[dict]:
        """Collected records, when the sink keeps them (else empty)."""
        return list(getattr(self.sink, "records", ()))
