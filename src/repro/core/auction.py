"""The primal-dual auction algorithm (Section IV, Alg. 1).

Each uploader ``u`` auctions ``B(u)`` units of upload bandwidth at unit
price ``λ_u`` (initially 0).  A request ``(I_d, c)`` computes its net
utility ``φ_u = v − w_{u→d} − λ_u`` at every candidate, bids at the best
one ``u*`` the amount

    b = λ_{u*} + φ_{u*} − max(φ_second, 0) + ε

i.e. it raises the price to the point of indifference with its
second-best alternative (the paper's ``b = w_û − w_{u*} + λ_û``), where
the *outside option* of not downloading at all (utility 0, dual
``η ≥ 0``) is included among the alternatives.  The auctioneer keeps the
``B(u)`` highest bids, evicting the lowest when displaced, and posts
``λ_u`` = lowest accepted bid once full.

``ε`` is the classic Bertsekas bidding increment.  The paper uses
ε = 0, which is correct when no ties occur (costs are continuous) but
can leave tied bidders dormant; we default to a tiny positive ε which
bounds the welfare loss by ``n·ε`` (see :mod:`repro.core.epsilon_scaling`
for exact optimality via scaling).  ``epsilon=0`` reproduces the paper's
rule exactly, with dormant bidders woken by price changes.

Two execution modes:

* ``"gauss-seidel"`` — one bid at a time, exactly the distributed
  protocol's sequential semantics; Python loops, good to ~10^4 edges.
* ``"jacobi"`` — all unassigned requests bid each round against the
  round-start prices; numpy-vectorized over the problem's flat CSR view
  (segment maxima via ``np.maximum.reduceat``), used for paper-scale
  instances.  The round loop is *event-driven*: per-row best surpluses
  are cached and only rows incident to uploaders whose price
  changed (plus evicted rows) are re-evaluated, via the problem's
  reverse uploader→rows index — so a round costs O(edges touched by
  last round's price changes), not O(pending edges), and there is no
  ``(R, K_max)`` padding, so skewed candidate counts cost nothing.
* ``"jacobi-dense"`` — the same synchronized semantics over the padded
  dense view; kept as the equivalence reference for the CSR port (the
  two produce identical assignments) and for benchmarking the padding
  blowup.

All modes provably reach assignments within ``n·ε`` of the optimum;
tests cross-check them against the Hungarian oracle.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .problem import SchedulingProblem
from .result import ScheduleResult, SolverStats

__all__ = [
    "AuctionNonConvergence",
    "AuctionSolver",
    "DEFAULT_EPSILON",
    "PriceTrace",
]

#: Default bidding increment: negligible welfare impact (gap ≤ n·ε) but
#: guarantees termination even on tied instances.
DEFAULT_EPSILON = 1e-9


class AuctionNonConvergence(RuntimeError):
    """Raised when the auction exceeds its work budget without converging.

    Only reachable with ``epsilon=0`` on degenerate (tied) instances or
    with an unreasonably small budget; the exception message carries the
    progress counters for diagnosis.
    """


@dataclass
class PriceTrace:
    """Optional recording of price evolution for Fig. 2-style plots."""

    times: List[float] = field(default_factory=list)
    prices: Dict[int, List[float]] = field(default_factory=dict)

    def record(self, step: float, lam: Dict[int, float]) -> None:
        self.times.append(step)
        for uploader, price in lam.items():
            self.prices.setdefault(uploader, []).append(price)

    def series(self, uploader: int) -> Tuple[List[float], List[float]]:
        """(times, prices) for one uploader."""
        return self.times, self.prices.get(uploader, [])


def _order_bids(bids: np.ndarray, target: np.ndarray, n_uploaders: int) -> np.ndarray:
    """Commit order: by uploader ascending, bid descending, stable ties.

    Exactly ``np.lexsort((-bids, target))``, but built from two cheaper
    passes on large rounds: submitted bids are strictly positive IEEE
    doubles, so their complemented bit patterns sort them descending
    under an *integer* stable sort, and the grouping by uploader is a
    stable counting sort (scipy's one-row csr→csc transpose).  Small
    rounds and scipy-less installs keep the lexsort.
    """
    if len(bids) < 1024:
        return np.lexsort((-bids, target))
    try:
        from scipy import sparse
    except ImportError:  # pragma: no cover - scipy is a core dependency
        return np.lexsort((-bids, target))
    by_bid = np.argsort(~bids.view(np.uint64), kind="stable")
    grouped = sparse.csr_matrix(
        (by_bid, target[by_bid], np.array([0, len(bids)])),
        shape=(1, n_uploaders),
    ).tocsc()
    return grouped.data


def _segment_max(x: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment maximum of ``x`` under CSR ``indptr``; empty → -inf.

    ``np.maximum.reduceat`` mis-handles empty segments (it returns the
    element *at* the boundary), so reduce only over non-empty segment
    starts — consecutive non-empty starts still bound exactly one
    original segment because empty segments contribute zero width.
    """
    out = np.full(len(indptr) - 1, -np.inf, dtype=float)
    starts = indptr[:-1]
    nonempty = indptr[1:] > starts
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(x, starts[nonempty])
    return out


class _AssignmentSet:
    """An auctioneer's set of accepted (request, bid) pairs.

    Supports O(log n) insert / evict-lowest via a lazily-invalidated
    heap.  ``min_bid`` is the price λ_u once the set is full.
    """

    __slots__ = ("capacity", "bids", "_heap", "_seq")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.bids: Dict[int, float] = {}
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = itertools.count()

    @property
    def full(self) -> bool:
        return len(self.bids) >= self.capacity

    def __len__(self) -> int:
        return len(self.bids)

    def add(self, request: int, bid: float) -> None:
        if request in self.bids:
            raise ValueError(f"request {request} already in assignment set")
        self.bids[request] = bid
        heapq.heappush(self._heap, (bid, next(self._seq), request))

    def remove(self, request: int) -> None:
        """Withdraw a request (peer departure); lazily purged from the heap."""
        del self.bids[request]

    def evict_min(self) -> Tuple[int, float]:
        """Remove and return the lowest-bid request."""
        self._settle()
        bid, _, request = heapq.heappop(self._heap)
        del self.bids[request]
        return request, bid

    def min_bid(self) -> float:
        """Lowest accepted bid; +inf when empty."""
        self._settle()
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def _settle(self) -> None:
        while self._heap:
            bid, _, request = self._heap[0]
            if self.bids.get(request) == bid:
                return
            heapq.heappop(self._heap)


class AuctionSolver:
    """Centralized executor of the paper's distributed auction.

    Parameters
    ----------
    epsilon:
        Bidding increment; ``0`` is the paper's exact rule.
    mode:
        ``"auto"`` (jacobi for large instances), ``"gauss-seidel"``,
        ``"jacobi"`` (CSR-vectorized) or ``"jacobi-dense"`` (padded
        reference implementation of the same round semantics).
    max_bids / max_rounds:
        Work budgets for the two modes; exceeded ⇒
        :class:`AuctionNonConvergence`.
    trace:
        Optional :class:`PriceTrace` filled with per-round price snapshots.
    on_price_update:
        Optional callback ``(round_or_bid_counter, uploader, price)``.
    """

    #: Edge-count threshold above which ``"auto"`` picks the jacobi mode.
    AUTO_JACOBI_EDGES = 20_000

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        mode: str = "auto",
        max_bids: Optional[int] = None,
        max_rounds: int = 100_000,
        trace: Optional[PriceTrace] = None,
        on_price_update: Optional[Callable[[int, int, float], None]] = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon!r}")
        if mode not in ("auto", "gauss-seidel", "jacobi", "jacobi-dense"):
            raise ValueError(f"unknown mode {mode!r}")
        self.epsilon = float(epsilon)
        self.mode = mode
        self.max_bids = max_bids
        self.max_rounds = int(max_rounds)
        self.trace = trace
        self.on_price_update = on_price_update
        # Telemetry: bid-phase row evaluations of the last solve() call.
        # Lives on the solver (not SolverStats) so the stats dataclass
        # stays bit-identical between the frontier and dense paths.
        self.rows_evaluated = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: SchedulingProblem,
        initial_prices: Optional[Dict[int, float]] = None,
    ) -> ScheduleResult:
        """Run the auction to convergence and return the schedule + duals.

        ``initial_prices`` warm-starts ``λ`` (used by ε-scaling and the
        slot pipeline's warm-started re-bids) — either a
        ``{uploader id: λ}`` dict or an ``(ids, values)`` array pair as
        returned by :meth:`ScheduleResult.price_arrays`.  Note that a
        warm start can leave a positive price on an uploader that ends
        up unsaturated, voiding the CS-1 certificate — the scaling
        driver detects that via the duality gap and falls back to a cold
        run.
        """
        self.rows_evaluated = 0
        mode = self.mode
        if mode == "auto":
            mode = "jacobi" if problem.n_edges() > self.AUTO_JACOBI_EDGES else "gauss-seidel"
        if mode == "gauss-seidel":
            return self._solve_gauss_seidel(problem, initial_prices)
        if mode == "jacobi-dense":
            return self._solve_jacobi_dense(problem, initial_prices)
        return self._solve_jacobi(problem, initial_prices)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _bid_budget(self, problem: SchedulingProblem) -> int:
        if self.max_bids is not None:
            return self.max_bids
        # With ε > 0 total bids are bounded by capacity · (1 + C/ε); that
        # is astronomically loose, so use a generous practical budget.
        return max(1_000_000, 200 * max(1, problem.n_edges()))

    @staticmethod
    def _etas_array(problem: SchedulingProblem, lam_by_index: np.ndarray) -> np.ndarray:
        """Optimal duals ``η_d`` as an ``(R,)`` array given index-aligned ``λ``.

        ``lam_by_index`` follows the CSR view's uploader index order —
        exactly the shape the jacobi solvers carry, so the epilogue pays
        zero dict round-trips.
        """
        csr = problem.csr()
        if csr.n_requests == 0:
            return np.empty(0, dtype=float)
        phi = csr.values - lam_by_index[csr.uploader_index]
        phi[csr.capacity[csr.uploader_index] == 0] = -np.inf
        return np.maximum(_segment_max(phi, csr.indptr), 0.0)

    @staticmethod
    def _etas(
        problem: SchedulingProblem, lam: Dict[int, float]
    ) -> Dict[int, float]:
        """Optimal duals η_d = max(0, max_u v − w − λ_u) given final prices.

        Zero-capacity uploaders are excluded: their λ contributes nothing
        to the dual objective (λ·B = 0), so their edge constraints are
        absorbed by λ, not η.

        Vectorized over the CSR view — one segment-max pass over all
        edges; :meth:`_etas_reference` keeps the per-request loop this
        is pinned against in the tests.
        """
        csr = problem.csr()
        if csr.n_requests == 0:
            return {}
        lam_arr = np.fromiter(
            (lam.get(int(u), 0.0) for u in csr.uploaders),
            dtype=float,
            count=len(csr.uploaders),
        )
        best = AuctionSolver._etas_array(problem, lam_arr)
        return dict(enumerate(best.tolist()))

    @staticmethod
    def _etas_reference(
        problem: SchedulingProblem, lam: Dict[int, float]
    ) -> Dict[int, float]:
        """Per-request loop implementation of :meth:`_etas` (semantics pin)."""
        etas: Dict[int, float] = {}
        for index in range(problem.n_requests):
            candidates = problem.candidates_of(index)
            values = problem.edge_values_of(index)
            best = 0.0
            for u, value in zip(candidates, values):
                if problem.capacity_of(int(u)) == 0:
                    continue
                best = max(best, float(value) - lam.get(int(u), 0.0))
            etas[index] = best
        return etas

    # ------------------------------------------------------------------
    # Gauss-Seidel: one bid at a time (faithful Alg. 1 semantics)
    # ------------------------------------------------------------------
    def _solve_gauss_seidel(
        self,
        problem: SchedulingProblem,
        initial_prices: Optional[Dict[int, float]] = None,
    ) -> ScheduleResult:
        n = problem.n_requests
        stats = SolverStats()
        if isinstance(initial_prices, tuple):
            ids, vals = initial_prices
            initial_prices = dict(
                zip(np.asarray(ids).tolist(), np.asarray(vals).tolist())
            )
        initial_prices = initial_prices or {}
        lam: Dict[int, float] = {
            u: max(0.0, float(initial_prices.get(u, 0.0))) for u in problem.uploaders()
        }
        sets: Dict[int, _AssignmentSet] = {
            u: _AssignmentSet(problem.capacity_of(u)) for u in problem.uploaders()
        }
        assigned_to: List[Optional[int]] = [None] * n
        retired = [False] * n
        dormant: set = set()
        # Reverse index: uploader → requests that list it as a candidate,
        # used to wake dormant bidders on price changes (paper: peers are
        # informed of new prices by their neighbors).
        watchers: Dict[int, List[int]] = {}
        usable: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for r in range(n):
            cands = problem.candidates_of(r)
            vals = problem.edge_values_of(r)
            mask = np.array(
                [problem.capacity_of(int(u)) > 0 for u in cands], dtype=bool
            )
            usable.append(cands[mask])
            values.append(vals[mask])
            for u in cands[mask]:
                watchers.setdefault(int(u), []).append(r)

        active: deque = deque(r for r in range(n) if len(usable[r]) > 0)
        for r in range(n):
            if len(usable[r]) == 0:
                retired[r] = True
        budget = self._bid_budget(problem)

        def wake(uploader: int) -> None:
            for r in watchers.get(uploader, ()):  # pragma: no branch
                if r in dormant:
                    dormant.discard(r)
                    active.append(r)

        while active:
            r = active.popleft()
            if assigned_to[r] is not None or retired[r]:
                continue
            self.rows_evaluated += 1
            cands = usable[r]
            prices = np.fromiter(
                (lam[int(u)] for u in cands), dtype=float, count=len(cands)
            )
            phi = values[r] - prices
            j_star = int(np.argmax(phi))
            phi1 = float(phi[j_star])
            if phi1 <= 0.0:
                # Outside option dominates now and forever (prices only rise).
                retired[r] = True
                continue
            if len(phi) > 1:
                phi2 = float(np.partition(phi, -2)[-2])
            else:
                phi2 = -np.inf
            outside = max(phi2, 0.0)
            u_star = int(cands[j_star])
            bid = lam[u_star] + phi1 - outside + self.epsilon
            if bid <= lam[u_star]:
                # Tied best/second with ε = 0: wait for a price change.
                dormant.add(r)
                continue
            stats.bids_submitted += 1
            if stats.bids_submitted > budget:
                raise AuctionNonConvergence(
                    f"bid budget {budget} exceeded: "
                    f"{sum(x is not None for x in assigned_to)}/{n} assigned, "
                    f"{len(dormant)} dormant, epsilon={self.epsilon}"
                )
            aset = sets[u_star]
            if aset.full:
                evicted, _ = aset.evict_min()
                assigned_to[evicted] = None
                active.append(evicted)
                stats.evictions += 1
            aset.add(r, bid)
            assigned_to[r] = u_star
            if aset.full:
                new_price = aset.min_bid()
                if new_price > lam[u_star]:
                    lam[u_star] = new_price
                    stats.price_updates += 1
                    if self.on_price_update is not None:
                        self.on_price_update(stats.bids_submitted, u_star, new_price)
                    wake(u_star)
            if self.trace is not None and stats.bids_submitted % max(1, n // 10) == 0:
                self.trace.record(stats.bids_submitted, dict(lam))

        stats.rounds = stats.bids_submitted
        assignment = {r: assigned_to[r] for r in range(n)}
        if self.trace is not None:
            self.trace.record(stats.bids_submitted, dict(lam))
        return ScheduleResult(
            assignment=assignment,
            prices=dict(lam),
            etas=self._etas(problem, lam),
            stats=stats,
        )

    def _empty_result(
        self,
        uploaders: np.ndarray,
        initial_prices: Optional[Dict[int, float]],
        stats: SolverStats,
    ) -> ScheduleResult:
        """Fully-populated result for a zero-request problem.

        Mirrors the gauss-seidel path: warm-started prices are clamped
        to ≥ 0 and reported, and ``etas``/``stats`` are present like on
        every other return path.
        """
        lam = self._initial_lam(uploaders, initial_prices)
        return ScheduleResult.from_arrays(
            np.empty(0, dtype=np.int64), uploaders, lam, stats=stats
        )

    @staticmethod
    def _initial_lam(
        uploaders: np.ndarray, initial_prices
    ) -> np.ndarray:
        """Warm-start price vector aligned with ``uploaders``, clamped ≥ 0.

        ``initial_prices`` is either a ``{uploader id: λ}`` dict or an
        ``(ids, values)`` array pair (the form
        :meth:`~repro.core.result.ScheduleResult.price_arrays` returns).
        When the id column matches ``uploaders`` exactly — the common
        warm-started re-bid, where the uploader set is stable across
        rounds — the vector is adopted without any per-uploader Python
        work.
        """
        if isinstance(initial_prices, tuple):
            ids, vals = initial_prices
            ids = np.asarray(ids, dtype=np.int64)
            vals = np.asarray(vals, dtype=float)
            if np.array_equal(ids, uploaders):
                return np.maximum(vals, 0.0)
            # Churned uploader set: remap by id with dict semantics —
            # the last duplicate wins (stable sort keeps original order
            # among equals, side="right" lands past the last equal),
            # unknown uploaders start cold at 0.
            if not len(ids):
                return np.zeros(len(uploaders), dtype=float)
            order = np.argsort(ids, kind="stable")
            sorted_ids = ids[order]
            pos = np.searchsorted(sorted_ids, uploaders, side="right") - 1
            safe = np.maximum(pos, 0)
            hit = (pos >= 0) & (sorted_ids[safe] == uploaders)
            lam = np.zeros(len(uploaders), dtype=float)
            lam[hit] = np.maximum(vals[order][safe[hit]], 0.0)
            return lam
        if not initial_prices:
            return np.zeros(len(uploaders), dtype=float)
        return np.fromiter(
            (max(0.0, float(initial_prices.get(int(u), 0.0))) for u in uploaders),
            dtype=float,
            count=len(uploaders),
        )

    @staticmethod
    def _concat_ranges(
        starts: np.ndarray, lens: np.ndarray, iota: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Concatenation of ``[starts[i], starts[i]+lens[i])`` ranges.

        The flat-gather primitive of the frontier solver: one cumsum +
        repeat instead of a Python loop over slices.  ``iota`` is an
        optional pre-built ``arange`` (at least total long) so the hot
        path skips that per-round allocation.
        """
        offsets = np.zeros(len(lens) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        total = int(offsets[-1])
        idx = np.repeat(starts - offsets[:-1], lens)
        if iota is None:
            idx += np.arange(total, dtype=np.int64)
        else:
            idx += iota[:total]
        return idx

    # ------------------------------------------------------------------
    # Jacobi: synchronized rounds, vectorized (paper-scale instances)
    # ------------------------------------------------------------------
    def _solve_jacobi(
        self,
        problem: SchedulingProblem,
        initial_prices: Optional[Dict[int, float]] = None,
    ) -> ScheduleResult:
        """Event-driven (price-frontier) jacobi rounds over the CSR view.

        Produces exactly the assignment of :meth:`_solve_jacobi_dense`
        (same bid order, same tie-breaks, same stats) without
        materializing the padded ``(R, K_max)`` matrices — and, unlike
        the dense reference, without re-scanning every pending edge
        every round.  The key observation is classic auction-algorithm
        practice: a request's best/second-best surplus (and hence its
        bid) can only change when one of *its own* candidate uploaders
        reprices, or when the request itself is evicted.  So the solver

        * keeps a per-row ``phi1`` (best-surplus) column cached from
          each row's last evaluation — the η duals read it directly,
        * maintains a ``dirty`` frontier seeded with every row and, after
          each round, re-armed only for rows incident to uploaders whose
          ``λ`` rose (via the problem's reverse uploader→rows CSR index)
          plus rows evicted by the contested-segment replay,
        * evaluates only dirty pending rows each round: a clean pending
          row is provably dormant (its last bid was ``≤ λ`` at prices
          that have not moved), so the dense reference would re-compute
          the identical non-submitting bid for it.

        Rounds therefore cost O(edges incident to last round's price
        changes), not O(pending edges); bulk rounds (the first, or a
        warm re-bid wave touching most rows) run over the full CSR with
        no sub-gather at all.  The final ``η`` duals come straight from
        the ``phi1`` cache after a last sync of still-dirty rows — no
        extra full-edge pass.
        """
        csr = problem.csr()
        n = csr.n_requests
        stats = SolverStats()
        if n == 0:
            return self._empty_result(csr.uploaders, initial_prices, stats)

        indptr = csr.indptr
        counts = np.diff(indptr)
        uidx = csr.uploader_index
        values = csr.values
        capacity = csr.capacity
        n_edges = csr.n_edges
        if n_edges and (capacity == 0).any():
            # Mask out uploaders with no capacity.
            values = values.copy()
            values[capacity[uidx] == 0] = -np.inf

        n_uploaders = len(csr.uploaders)
        lam = self._initial_lam(csr.uploaders, initial_prices)
        # Auctioneer state, fully columnar (no per-uploader heap objects):
        # each assigned request carries its accepted bid and a per-uploader
        # insertion sequence number, which together reproduce the
        # reference _AssignmentSet's (bid, insertion order) eviction
        # tie-break exactly when a contested segment replays the heap.
        assigned_to = np.full(n, -1, dtype=np.int64)
        bid_of = np.zeros(n, dtype=float)
        seq_of = np.zeros(n, dtype=np.int64)
        next_seq = np.zeros(n_uploaders, dtype=np.int64)
        load = np.zeros(n_uploaders, dtype=np.int64)
        # Per-row best-surplus cache (read by the η epilogue; phi2 and
        # the best edge are only needed within a round and recomputed on
        # each evaluation).  When nothing is masked and no row is empty
        # the up-front retirement scan is skipped entirely — the first
        # (bulk) round writes every phi1 before anything reads it.
        # Otherwise the λ=0 segment maxima
        # double as the retirement scan (rows with no edge, or only
        # zero-capacity candidates, can never bid) and are already final
        # for those rows: every usable edge is -inf there.
        no_empty = bool(counts.min(initial=1) > 0)
        if values is csr.values and no_empty:
            phi1_of = np.empty(n, dtype=float)
            retired = np.zeros(n, dtype=bool)
            dirty = np.ones(n, dtype=bool)
        else:
            phi1_of = _segment_max(values, indptr)
            retired = ~np.isfinite(phi1_of)
            # The frontier: rows whose cached surplus may be stale.
            # Rows retired up front stay clean forever — their
            # candidates never reprice (zero capacity ⇒ no bids ⇒ no
            # λ updates).
            dirty = ~retired
        rev_indptr, rev_rows = csr.uploader_rows()
        nonempty = nonempty_starts = None  # built lazily (masked problems)
        # Round-persistent scratch (sized once, reused every round) so
        # the sub-CSR gather never re-allocates edge-sized temporaries.
        iota_e = np.arange(n_edges, dtype=np.int64)
        phi_buf = np.empty(n_edges, dtype=float)
        lam_e_buf = np.empty(n_edges, dtype=float)
        edge_u_buf = np.empty(n_edges, dtype=np.int64)
        sub_indptr_buf = np.empty(n + 1, dtype=np.int64)

        for round_no in range(1, self.max_rounds + 1):
            pending = (assigned_to < 0) & ~retired
            if not pending.any():
                break
            rows = np.nonzero(dirty & pending)[0]
            if not len(rows):
                # Every pending row is clean ⇒ dormant at prices that
                # have not moved since its last evaluation; the dense
                # reference would re-bid them all and submit nothing.
                break
            dirty[rows] = False
            self.rows_evaluated += len(rows)
            full_best2 = False
            if 2 * len(rows) >= n:
                # Bulk round (the first, or a warm re-bid wave): the
                # best-surplus pass runs over the full CSR with no
                # gather, refreshing the whole phi1 cache at the current
                # prices.
                if lam.any():
                    np.take(lam, uidx, out=lam_e_buf)
                    phi = np.subtract(values, lam_e_buf, out=phi_buf)
                else:
                    # Cold round: φ ≡ the (masked) values; read them
                    # directly and copy only if the knockout pass below
                    # needs to mutate the full-CSR φ.
                    phi = values
                if no_empty:
                    phi1_of[:] = np.maximum.reduceat(phi, indptr[:-1])
                else:
                    phi1_of[:] = _segment_max(phi, indptr)
                phi1 = phi1_of[rows]
                newly_retired = phi1 <= 0.0
                retired[rows[newly_retired]] = True
                live = ~newly_retired
                if not live.any():
                    continue
                rows = rows[live]
                phi1 = phi1[live]
                live_edges = int(counts[rows].sum())
                full_best2 = 2 * live_edges >= n_edges
                if full_best2:
                    # Live bidders hold most edges: the best-edge /
                    # second-best pass is cheaper over the full CSR than
                    # through a gather.
                    if phi is values:
                        np.copyto(phi_buf, values)
                        phi = phi_buf
                    is_best = phi >= np.repeat(phi1_of, counts)
                    if no_empty:
                        loc_star_all = np.minimum.reduceat(
                            np.where(is_best, iota_e, n_edges), indptr[:-1]
                        )
                        e_star = loc_star_all[rows]
                        phi[loc_star_all] = -np.inf
                        phi2 = np.maximum.reduceat(phi, indptr[:-1])[rows]
                    else:
                        if nonempty_starts is None:
                            nonempty = counts > 0
                            nonempty_starts = indptr[:-1][nonempty]
                        loc_star_ne = np.minimum.reduceat(
                            np.where(is_best, iota_e, n_edges), nonempty_starts
                        )
                        e_star_all = np.zeros(n, dtype=np.int64)
                        e_star_all[nonempty] = loc_star_ne
                        e_star = e_star_all[rows]
                        phi[loc_star_ne] = -np.inf
                        phi2 = _segment_max(phi, indptr)[rows]
                else:
                    starts = indptr[rows]
                    lens = counts[rows]
                    sub_indptr = sub_indptr_buf[: len(rows) + 1]
                    sub_indptr[0] = 0
                    np.cumsum(lens, out=sub_indptr[1:])
                    total = int(sub_indptr[-1])
                    eidx = self._concat_ranges(starts, lens, iota_e)
                    # lam_e_buf is dead after the subtract; reuse it for
                    # the live rows' phi gather.
                    phi_sub = np.take(phi, eidx, out=lam_e_buf[:total])
            else:
                # Frontier round: gather only the dirty pending rows'
                # edges into a compact sub-CSR over the scratch buffers.
                starts = indptr[rows]
                lens = counts[rows]
                sub_indptr = sub_indptr_buf[: len(rows) + 1]
                sub_indptr[0] = 0
                np.cumsum(lens, out=sub_indptr[1:])
                total = int(sub_indptr[-1])
                eidx = self._concat_ranges(starts, lens, iota_e)
                phi_sub = np.take(values, eidx, out=phi_buf[:total])
                eu = np.take(uidx, eidx, out=edge_u_buf[:total])
                np.take(lam, eu, out=lam_e_buf[:total])
                phi_sub -= lam_e_buf[:total]
                # Pending rows are never empty (empty rows were retired
                # up front), so plain reduceat is safe here.
                phi1 = np.maximum.reduceat(phi_sub, sub_indptr[:-1])
                phi1_of[rows] = phi1
                newly_retired = phi1 <= 0.0
                retired[rows[newly_retired]] = True
                live = ~newly_retired
                if not live.any():
                    continue
                if not live.all():
                    # Re-gather the live subset so the best-edge pass
                    # below sees one contiguous sub-CSR in either path.
                    rows = rows[live]
                    phi1 = phi1[live]
                    starts = indptr[rows]
                    lens = counts[rows]
                    sub_indptr = sub_indptr_buf[: len(rows) + 1]
                    sub_indptr[0] = 0
                    np.cumsum(lens, out=sub_indptr[1:])
                    total = int(sub_indptr[-1])
                    eidx = self._concat_ranges(starts, lens, iota_e)
                    phi_sub = np.take(values, eidx, out=phi_buf[:total])
                    eu = np.take(uidx, eidx, out=edge_u_buf[:total])
                    np.take(lam, eu, out=lam_e_buf[:total])
                    phi_sub -= lam_e_buf[:total]

            if not full_best2:
                # First maximal edge per live row (same tie-break as the
                # dense argmax), then knock it out in place for phi2 —
                # the sub-buffer is dead after these two reductions.
                is_best = phi_sub >= np.repeat(phi1, lens)
                loc_star = np.minimum.reduceat(
                    np.where(is_best, iota_e[:total], total), sub_indptr[:-1]
                )
                e_star = eidx[loc_star]
                phi_sub[loc_star] = -np.inf
                phi2 = np.maximum.reduceat(phi_sub, sub_indptr[:-1])
            target = uidx[e_star]
            outside = np.maximum(phi2, 0.0)
            lam_t = lam[target]
            bids = lam_t + phi1 - outside + self.epsilon
            submit = bids > lam_t
            if not submit.any():
                break  # all remaining bidders dormant (ε = 0 ties)
            rows = rows[submit]
            bids = bids[submit]
            target = target[submit]
            stats.bids_submitted += len(rows)
            stats.rounds = round_no

            # Commit each auctioneer's batch, highest bid first — one
            # vectorized pass over all segments when no batch contends
            # with previously accepted members (the overwhelmingly
            # common case), replaying the exact heap walk only for the
            # contested auctioneers.
            order = _order_bids(bids, target, n_uploaders)
            rows, bids, target = rows[order], bids[order], target[order]
            boundaries = np.nonzero(np.diff(target))[0] + 1
            seg_starts = np.concatenate(([0], boundaries))
            seg_len = np.diff(np.concatenate((seg_starts, [len(target)])))
            seg_u = target[seg_starts]
            lam_seg_before = lam[seg_u]
            m = load[seg_u]
            cap = capacity[seg_u]
            # A segment can evict an *existing* member only when the
            # auctioneer already holds members and the batch overflows
            # its capacity.  m == 0 segments never evict: descending
            # bids fill the set, then every later bid loses to the
            # accepted minimum (ties reject, `b <= min_bid`).
            contested = (m > 0) & (m + seg_len > cap)
            if not contested.any():
                limit = np.minimum(seg_len, cap - m)
                within = np.arange(len(target), dtype=np.int64) - np.repeat(
                    seg_starts, seg_len
                )
                accepted = within < np.repeat(limit, seg_len)
                acc_rows = rows[accepted]
                stats.bids_rejected += int(len(rows) - len(acc_rows))
                full_now = (m + limit == cap) & (limit > 0)
                need_existing = full_now & (m > 0)
                existing_min = (
                    self._member_mins(assigned_to, bid_of, seg_u[need_existing])
                    if need_existing.any()
                    else None
                )
                assigned_to[acc_rows] = target[accepted]
                bid_of[acc_rows] = bids[accepted]
                seq_of[acc_rows] = next_seq[target[accepted]] + within[accepted]
                next_seq[seg_u] += limit
                load[seg_u] += limit
                if full_now.any():
                    # λ_u = lowest member bid once full: the lowest
                    # accepted batch bid, tempered by the lowest bid of
                    # pre-existing members where there are any.
                    new_price = bids[seg_starts + limit - 1].copy()
                    if existing_min is not None:
                        new_price[need_existing] = np.minimum(
                            new_price[need_existing], existing_min
                        )
                    upd = full_now & (new_price > lam[seg_u])
                    if upd.any():
                        lam[seg_u[upd]] = new_price[upd]
                        stats.price_updates += int(upd.sum())
                        if self.on_price_update is not None:
                            # Callback fast path: only a tracing run pays
                            # for the index materialization + Python loop.
                            for i in np.nonzero(upd)[0].tolist():
                                self.on_price_update(
                                    round_no,
                                    int(csr.uploaders[seg_u[i]]),
                                    float(new_price[i]),
                                )
            else:
                self._commit_segments_mixed(
                    rows, bids, target, seg_starts, seg_len, seg_u, contested,
                    assigned_to, bid_of, seq_of, next_seq, load, lam, capacity,
                    stats, round_no, csr.uploaders, dirty,
                )
            # Frontier propagation: every request incident to an
            # uploader that repriced this round re-evaluates next round
            # (this includes every bidder rejected above — a rejection
            # always coincides with its target's λ rising).
            repriced = seg_u[lam[seg_u] > lam_seg_before]
            if len(repriced):
                hit = self._concat_ranges(
                    rev_indptr[repriced],
                    rev_indptr[repriced + 1] - rev_indptr[repriced],
                )
                dirty[rev_rows[hit]] = True
            if self.trace is not None:
                self.trace.record(
                    round_no,
                    {int(csr.uploaders[i]): float(lam[i]) for i in range(n_uploaders)},
                )
        else:
            raise AuctionNonConvergence(
                f"round budget {self.max_rounds} exceeded: "
                f"{(assigned_to >= 0).sum()}/{n} assigned, epsilon={self.epsilon}"
            )

        # η epilogue off the phi1 cache: rows whose candidates repriced
        # after their last evaluation get one final sync at the final
        # prices; every clean row's cache already equals the final
        # surplus, so no full-edge _etas_array pass is needed.
        sync = np.nonzero(dirty)[0]
        if len(sync):
            starts = indptr[sync]
            lens = counts[sync]
            sub_indptr = sub_indptr_buf[: len(sync) + 1]
            sub_indptr[0] = 0
            np.cumsum(lens, out=sub_indptr[1:])
            total = int(sub_indptr[-1])
            eidx = self._concat_ranges(starts, lens, iota_e)
            phi = np.take(values, eidx, out=phi_buf[:total])
            eu = np.take(uidx, eidx, out=edge_u_buf[:total])
            np.take(lam, eu, out=lam_e_buf[:total])
            phi -= lam_e_buf[:total]
            # Dirty rows always hold at least one edge (only repriced
            # uploaders and evictions mark rows, both require edges).
            phi1_of[sync] = np.maximum.reduceat(phi, sub_indptr[:-1])
        return ScheduleResult.from_arrays(
            assigned_to,
            csr.uploaders,
            lam,
            etas=np.maximum(phi1_of, 0.0),
            stats=stats,
        )

    @staticmethod
    def _member_mins(
        assigned_to: np.ndarray, bid_of: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Lowest accepted bid per uploader in ``targets``; +inf when empty.

        One sort over the currently assigned requests instead of one
        heap query per uploader.
        """
        out = np.full(len(targets), np.inf, dtype=float)
        members = np.nonzero(assigned_to >= 0)[0]
        if not len(members):
            return out
        owners = assigned_to[members]
        owner_bids = bid_of[members]
        order = np.argsort(owners, kind="stable")
        owners, owner_bids = owners[order], owner_bids[order]
        starts = np.concatenate(([0], np.nonzero(np.diff(owners))[0] + 1))
        uniq = owners[starts]
        mins = np.minimum.reduceat(owner_bids, starts)
        pos = np.searchsorted(uniq, targets)
        pos_c = np.minimum(pos, len(uniq) - 1)
        hit = uniq[pos_c] == targets
        out[hit] = mins[pos_c[hit]]
        return out

    def _commit_segments_mixed(
        self,
        rows: np.ndarray,
        bids: np.ndarray,
        target: np.ndarray,
        seg_starts: np.ndarray,
        seg_len: np.ndarray,
        seg_u: np.ndarray,
        contested: np.ndarray,
        assigned_to: np.ndarray,
        bid_of: np.ndarray,
        seq_of: np.ndarray,
        next_seq: np.ndarray,
        load: np.ndarray,
        lam: np.ndarray,
        capacity: np.ndarray,
        stats: SolverStats,
        round_no: int,
        uploader_ids: np.ndarray,
        dirty: Optional[np.ndarray] = None,
    ) -> None:
        """Per-segment commit for a round with at least one contested batch.

        Uncontested segments take the same accept-prefix shortcut as the
        all-vectorized path (scalarized per segment); contested segments
        replay the reference heap walk over ``(bid, seq)`` so evictions
        and tie-breaks stay bit-for-bit identical to ``jacobi-dense``.
        ``dirty`` is the frontier solver's re-evaluation mask: every
        evicted request is marked so it re-bids next round even when the
        eviction did not move the auctioneer's price (a min-bid tie).
        """
        # One batched member-min pass covers every uncontested segment
        # that will fill up: an uploader's member set is only modified
        # by its own segment (one segment per uploader per round), so
        # mins taken before the loop match mins taken at each turn.
        m_all = load[seg_u]
        limit_all = np.minimum(seg_len, capacity[seg_u] - m_all)
        need = ~contested & (m_all > 0) & (m_all + limit_all == capacity[seg_u])
        existing_min_of = np.full(len(seg_u), np.inf)
        if need.any():
            existing_min_of[need] = self._member_mins(
                assigned_to, bid_of, seg_u[need]
            )
        for i in range(len(seg_u)):
            u = int(seg_u[i])
            start = int(seg_starts[i])
            stop = start + int(seg_len[i])
            price = float(lam[u])
            cap_u = int(capacity[u])
            if not contested[i]:
                k = stop - start
                limit = min(k, cap_u - int(load[u]))
                existing_min = float(existing_min_of[i])
                acc = slice(start, start + limit)
                assigned_to[rows[acc]] = u
                bid_of[rows[acc]] = bids[acc]
                seq_of[rows[acc]] = next_seq[u] + np.arange(limit, dtype=np.int64)
                next_seq[u] += limit
                load[u] += limit
                stats.bids_rejected += k - limit
                if limit and int(load[u]) == cap_u:
                    new_price = min(float(bids[start + limit - 1]), existing_min)
                    if new_price > price:
                        lam[u] = new_price
                        stats.price_updates += 1
                        if self.on_price_update is not None:
                            self.on_price_update(
                                round_no, int(uploader_ids[u]), new_price
                            )
                continue
            # Contested: exact replay of the reference _AssignmentSet walk.
            members = np.nonzero(assigned_to == u)[0]
            heap = list(
                zip(
                    bid_of[members].tolist(),
                    seq_of[members].tolist(),
                    members.tolist(),
                )
            )
            heapq.heapify(heap)
            changed = False
            for r, b in zip(rows[start:stop].tolist(), bids[start:stop].tolist()):
                if b <= price:
                    stats.bids_rejected += 1
                    continue
                if len(heap) >= cap_u:
                    if b <= heap[0][0]:
                        stats.bids_rejected += 1
                        continue
                    _, _, evicted = heapq.heappop(heap)
                    assigned_to[evicted] = -1
                    stats.evictions += 1
                    if dirty is not None:
                        dirty[evicted] = True
                seq = int(next_seq[u])
                next_seq[u] += 1
                heapq.heappush(heap, (b, seq, r))
                assigned_to[r] = u
                bid_of[r] = b
                seq_of[r] = seq
                changed = True
            load[u] = len(heap)
            if changed and len(heap) >= cap_u:
                new_price = heap[0][0]
                if new_price > price:
                    lam[u] = new_price
                    stats.price_updates += 1
                    if self.on_price_update is not None:
                        self.on_price_update(round_no, int(uploader_ids[u]), new_price)

    # ------------------------------------------------------------------
    # Jacobi over the padded dense view (reference for the CSR port)
    # ------------------------------------------------------------------
    def _solve_jacobi_dense(
        self,
        problem: SchedulingProblem,
        initial_prices: Optional[Dict[int, float]] = None,
    ) -> ScheduleResult:
        dense = problem.dense()
        n = dense.n_requests
        stats = SolverStats()
        if n == 0:
            return self._empty_result(dense.uploaders, initial_prices, stats)

        values = dense.values.copy()
        uidx = dense.uploader_index
        # Mask out uploaders with no capacity.
        zero_cap = np.nonzero(dense.capacity == 0)[0]
        if len(zero_cap):
            dead = np.isin(uidx, zero_cap)
            values[dead] = -np.inf

        n_uploaders = len(dense.uploaders)
        lam = self._initial_lam(dense.uploaders, initial_prices)
        sets = [
            _AssignmentSet(int(c)) for c in dense.capacity
        ]  # indexed by uploader index
        assigned_to = np.full(n, -1, dtype=np.int64)
        retired = np.all(np.isinf(values) & (values < 0), axis=1)

        safe_uidx = np.where(uidx >= 0, uidx, 0)
        pad = ~np.isfinite(values)

        for round_no in range(1, self.max_rounds + 1):
            pending = (assigned_to < 0) & ~retired
            if not pending.any():
                break
            rows = np.nonzero(pending)[0]
            self.rows_evaluated += len(rows)
            phi = values[rows] - lam[safe_uidx[rows]]
            phi[pad[rows]] = -np.inf
            j_star = np.argmax(phi, axis=1)
            phi1 = phi[np.arange(len(rows)), j_star]

            newly_retired = phi1 <= 0.0
            retired[rows[newly_retired]] = True
            live = ~newly_retired
            if not live.any():
                continue
            rows = rows[live]
            phi = phi[live]
            j_star = j_star[live]
            phi1 = phi1[live]

            phi_wo_best = phi.copy()
            phi_wo_best[np.arange(len(rows)), j_star] = -np.inf
            phi2 = phi_wo_best.max(axis=1)
            outside = np.maximum(phi2, 0.0)
            target = uidx[rows, j_star]
            bids = lam[target] + phi1 - outside + self.epsilon
            submit = bids > lam[target]
            if not submit.any():
                break  # all remaining bidders dormant (ε = 0 ties)
            rows = rows[submit]
            bids = bids[submit]
            target = target[submit]
            stats.bids_submitted += len(rows)
            stats.rounds = round_no

            # Process each auctioneer's batch, highest bid first.
            order = np.lexsort((-bids, target))
            rows, bids, target = rows[order], bids[order], target[order]
            boundaries = np.nonzero(np.diff(target))[0] + 1
            for chunk_rows, chunk_bids, u in zip(
                np.split(rows, boundaries),
                np.split(bids, boundaries),
                target[np.concatenate(([0], boundaries))],
            ):
                aset = sets[int(u)]
                price = lam[int(u)]
                changed = False
                for r, b in zip(chunk_rows, chunk_bids):
                    if b <= price:
                        stats.bids_rejected += 1
                        continue
                    if aset.full:
                        if b <= aset.min_bid():
                            stats.bids_rejected += 1
                            continue
                        evicted, _ = aset.evict_min()
                        assigned_to[evicted] = -1
                        stats.evictions += 1
                    aset.add(int(r), float(b))
                    assigned_to[int(r)] = int(u)
                    changed = True
                if changed and aset.full:
                    new_price = aset.min_bid()
                    if new_price > price:
                        lam[int(u)] = new_price
                        stats.price_updates += 1
                        if self.on_price_update is not None:
                            self.on_price_update(round_no, int(dense.uploaders[int(u)]), new_price)
            if self.trace is not None:
                self.trace.record(
                    round_no,
                    {int(dense.uploaders[i]): float(lam[i]) for i in range(n_uploaders)},
                )
        else:
            raise AuctionNonConvergence(
                f"round budget {self.max_rounds} exceeded: "
                f"{(assigned_to >= 0).sum()}/{n} assigned, epsilon={self.epsilon}"
            )

        return ScheduleResult.from_arrays(
            assigned_to,
            dense.uploaders,
            lam,
            etas=self._etas_array(problem, lam),
            stats=stats,
        )
