"""Scheduler interface and registry.

Every per-slot scheduling strategy — the auction, the paper's locality
baseline, the extra baselines and the exact oracles — implements the
same ``schedule(problem) -> ScheduleResult`` protocol, so the P2P system
(:mod:`repro.p2p.system`) and the experiment harness can swap them by
name.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from .auction import DEFAULT_EPSILON, AuctionSolver
from .baselines import (
    LocalityRetryScheduler,
    NetworkAgnosticScheduler,
    RandomScheduler,
    SimpleLocalityScheduler,
    UtilityGreedyScheduler,
)
from .exact import solve_hungarian, solve_lp_relaxation
from .problem import SchedulingProblem
from .result import ScheduleResult
from .sharding import ShardedAuctionSolver

__all__ = [
    "AuctionScheduler",
    "DistributedAuctionScheduler",
    "ChunkScheduler",
    "HungarianScheduler",
    "LPScheduler",
    "ShardedAuctionScheduler",
    "available_schedulers",
    "make_scheduler",
]


@runtime_checkable
class ChunkScheduler(Protocol):
    """Anything that can schedule one slot's chunk requests."""

    name: str

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        """Solve one slot; must not mutate ``problem``."""
        ...


class AuctionScheduler:
    """The paper's primal-dual auction as a :class:`ChunkScheduler`."""

    name = "auction"
    #: The slot pipeline may pass ``initial_prices`` (warm-started
    #: re-bids); schedulers without this attribute are always run cold.
    supports_warm_start = True

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        mode: str = "auto",
        **solver_kwargs,
    ) -> None:
        self.epsilon = epsilon
        self.mode = mode
        self.solver_kwargs = solver_kwargs
        #: Bid-phase row evaluations of the most recent solve (telemetry).
        self.last_rows_evaluated = 0

    def schedule(
        self, problem: SchedulingProblem, initial_prices=None
    ) -> ScheduleResult:
        """Solve one slot; ``initial_prices`` warm-starts ``λ``.

        ``initial_prices`` takes either price form accepted by
        :meth:`AuctionSolver.solve` — a dict or an ``(ids, values)``
        pair (:meth:`~repro.core.result.ScheduleResult.price_arrays`).
        """
        solver = AuctionSolver(
            epsilon=self.epsilon, mode=self.mode, **self.solver_kwargs
        )
        result = solver.solve(problem, initial_prices=initial_prices)
        self.last_rows_evaluated = solver.rows_evaluated
        return result


class ShardedAuctionScheduler:
    """The auction solved region-sharded with boundary-price coordination.

    Rows partition by ``region_fn(request peer ids) % n_shards`` — the
    P2P system injects the store's ISP column
    (:meth:`~repro.p2p.state.PeerStateStore.regions_of`), standalone use
    defaults to hashing the requesting peer id, which is correct (the
    coordination certificate never depends on the partition) just not
    locality-aligned.  ``n_shards=1`` is byte-identical to
    :class:`AuctionScheduler`.  The solver instance persists across
    calls so the row partition is revalidated, not recomputed, for the
    stable-membership slots of the delta pipeline; ``last_report``
    exposes per-solve coordination diagnostics.
    """

    name = "auction-sharded"
    supports_warm_start = True

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        n_shards: int = 2,
        region_fn=None,
        n_workers: int = 0,
        **solver_kwargs,
    ) -> None:
        self.epsilon = epsilon
        self.n_shards = int(n_shards)
        self.region_fn = region_fn
        self.solver = ShardedAuctionSolver(
            epsilon=epsilon,
            n_shards=self.n_shards,
            n_workers=n_workers,
            **solver_kwargs,
        )

    def close(self) -> None:
        """Shut down the worker pool (no-op for in-process solves)."""
        self.solver.close()

    @property
    def last_report(self):
        """Diagnostics of the most recent solve."""
        return self.solver.last_report

    @property
    def worker_fallbacks(self):
        """Cumulative reason-coded worker-pool degradations (telemetry)."""
        return self.solver.worker_fallbacks

    @property
    def last_rows_evaluated(self) -> int:
        """In-process bid-phase row evaluations of the most recent solve."""
        return self.solver.rows_evaluated

    def schedule(
        self, problem: SchedulingProblem, initial_prices=None
    ) -> ScheduleResult:
        peers = problem.request_peer_array()
        regions = self.region_fn(peers) if self.region_fn is not None else peers
        return self.solver.solve(problem, regions, initial_prices=initial_prices)


class DistributedAuctionScheduler:
    """The auction executed as the real message-level protocol.

    Spins up a discrete-event network per slot and runs
    :class:`~repro.core.distributed.DistributedAuction` to quiescence —
    the system-level proof that the protocol (with latencies, stale
    prices, timeouts) schedules as well as the centralized solver.
    ``message_latency`` is the constant per-message delay; pass a
    ``latency_model`` for cost-proportional delays.
    """

    name = "auction-distributed"

    def __init__(
        self,
        epsilon: float = 0.01,
        message_latency: float = 0.01,
        latency_model=None,
        loss_probability: float = 0.0,
    ) -> None:
        self.epsilon = epsilon
        self.message_latency = message_latency
        self.latency_model = latency_model
        self.loss_probability = loss_probability

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        from ..sim.engine import Simulator
        from ..sim.network import ConstantLatency, SimNetwork
        from .distributed import DistributedAuction

        sim = Simulator()
        network = SimNetwork(
            sim,
            latency=self.latency_model or ConstantLatency(self.message_latency),
            loss_probability=self.loss_probability,
            rng=np.random.default_rng(0),
        )
        auction = DistributedAuction(sim, network, problem, epsilon=self.epsilon)
        return auction.run_to_convergence()


class HungarianScheduler:
    """Exact centralized optimum (oracle; not a deployable P2P protocol)."""

    name = "hungarian"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        return solve_hungarian(problem)


class LPScheduler:
    """LP-relaxation optimum via HiGHS (integral by total unimodularity)."""

    name = "lp"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        return solve_lp_relaxation(problem).result


_REGISTRY: Dict[str, Callable[..., ChunkScheduler]] = {
    "auction": AuctionScheduler,
    "auction-sharded": ShardedAuctionScheduler,
    "auction-distributed": DistributedAuctionScheduler,
    "locality": SimpleLocalityScheduler,
    "locality-retry": LocalityRetryScheduler,
    "agnostic": NetworkAgnosticScheduler,
    "greedy": UtilityGreedyScheduler,
    "random": RandomScheduler,
    "hungarian": HungarianScheduler,
    "lp": LPScheduler,
}


def available_schedulers() -> list[str]:
    """Names accepted by :func:`make_scheduler`."""
    return sorted(_REGISTRY)


def make_scheduler(
    name: str, rng: Optional[np.random.Generator] = None, **kwargs
) -> ChunkScheduler:
    """Instantiate a scheduler by registry name.

    ``rng`` is forwarded to the randomized baselines; other keyword
    arguments go to the scheduler constructor.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    if name in ("agnostic", "random") and rng is not None:
        return factory(rng=rng, **kwargs)
    return factory(**kwargs)
