"""Transportation → classical assignment conversion (Section IV-A, Fig. 1).

The slot problem is a transportation problem: requests are sources (α=1)
and uploaders are sinks with β = B(u).  Following Bertsekas & Castañón,
it converts to a classical assignment problem by replacing each uploader
with ``B(u)`` identical unit-bandwidth *slots* (one object per unit), and
copying the original edge weight onto each slot edge.

We additionally materialize the *outside option* as one dummy slot per
request with weight 0, so the classical matcher is free to leave a
request unserved — that makes a complete maximum-weight matching on the
expanded matrix exactly equivalent to the original ILP (which never
benefits from serving a negative-utility edge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .problem import SchedulingProblem
from .result import ScheduleResult, SolverStats

__all__ = ["AssignmentExpansion", "expand_to_assignment"]

#: Weight on forbidden (absent) edges — finite so scipy accepts the matrix.
FORBIDDEN = -1e15


@dataclass
class AssignmentExpansion:
    """The expanded weight matrix plus the bookkeeping to map back.

    Attributes
    ----------
    weights:
        ``(R, S + R)`` matrix; column ``j < S`` is a bandwidth slot owned
        by ``slot_owner[j]``, columns ``S..`` are per-request dummy slots
        of weight 0 (any request may take any dummy).
    slot_owner:
        Uploader peer id owning each real slot column.
    """

    problem: SchedulingProblem
    weights: np.ndarray
    slot_owner: np.ndarray

    @property
    def n_real_slots(self) -> int:
        return len(self.slot_owner)

    def to_result(
        self, rows: np.ndarray, cols: np.ndarray
    ) -> ScheduleResult:
        """Convert a matching (row, col) back to a :class:`ScheduleResult`."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        assigned = np.full(self.problem.n_requests, -1, dtype=np.int64)
        real = (cols < self.n_real_slots) & (
            self.weights[rows, cols] > FORBIDDEN / 2
        )
        assigned[rows[real]] = self.slot_owner[cols[real]]
        return ScheduleResult.from_assignment_ids(
            assigned, stats=SolverStats(converged=True)
        )


def expand_to_assignment(problem: SchedulingProblem) -> AssignmentExpansion:
    """Build the Fig. 1(b) expansion of ``problem``.

    Negative-utility edges are kept (with their true weights): the dummy
    columns dominate them, so the matcher's optimum still equals the ILP
    optimum, and tests can verify that no negative edge is ever picked.
    """
    uploaders = problem.uploaders()
    slot_owner: List[int] = []
    slot_start: Dict[int, int] = {}
    for u in uploaders:
        slot_start[u] = len(slot_owner)
        slot_owner.extend([u] * problem.capacity_of(u))

    n_requests = problem.n_requests
    n_slots = len(slot_owner)
    weights = np.full((n_requests, n_slots + n_requests), FORBIDDEN, dtype=float)

    for r in range(n_requests):
        candidates = problem.candidates_of(r)
        values = problem.edge_values_of(r)
        for u, value in zip(candidates, values):
            u = int(u)
            start = slot_start[u]
            cap = problem.capacity_of(u)
            weights[r, start : start + cap] = value
        weights[r, n_slots + r] = 0.0  # the outside option

    return AssignmentExpansion(
        problem=problem,
        weights=weights,
        slot_owner=np.array(slot_owner, dtype=np.int64),
    )
