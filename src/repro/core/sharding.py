"""Region-sharded execution of the slot auction.

The paper prices inter-ISP traffic explicitly, which makes the ISP
region the natural decomposition boundary for the slot problem: intra-
ISP competition is resolved inside a per-region sub-auction, and the
dual prices ``λ_u`` on *boundary* uploaders (uploaders candidate to
requests of more than one region) are exactly the coordination
interface between the sub-problems — the partitioned-LP scheme of the
distributed transportation simplex, with auction prices in the role of
the simplex multipliers.

The solve runs in three phases:

1. **Partition** (:func:`plan_shards`): request rows are grouped by the
   requesting peer's ISP region (``region % n_shards``); each shard's
   rows are sliced out of the slot CSR into a compact per-shard view
   (:func:`rows_view`).  Every edge of a row belongs to the row's shard,
   so intra-ISP edges stay inside their shard and inter-ISP edges become
   *boundary columns*: the shard views share the parent's global
   uploader axis (ids, capacities), which keeps the per-shard solves
   index-compatible and makes price merging a plain elementwise max.
2. **Speculative shard solves**: the event-driven
   :meth:`AuctionSolver._solve_jacobi` frontier runs per shard against
   the full capacities — optimistically, as if each shard had every
   boundary uploader to itself.  Private uploaders (all edges in one
   shard, the common case under ISP-local candidate selection) are
   exactly solved; boundary uploaders may end oversubscribed or priced
   inconsistently across shards.
3. **Boundary-price coordination** (the loop in
   :meth:`ShardedAuctionSolver.solve`): shard prices merge as
   ``λ̂ = max`` over shards, then rounds of

   * releasing every row assigned to an oversubscribed uploader,
   * restoring the cold-auction invariant *positive price ⇒ saturated*
     (shard-local price inflation on an uploader that did not fill
     globally is reset to 0 — the same CS-1 repair the ε-scaling driver
     applies to stale warm starts),
   * flagging rows that violate ε-complementary-slackness under ``λ̂``
     (assigned rows whose surplus trails the best by more than ε;
     unassigned rows with positive surplus somewhere), plus the settled
     members of saturated uploaders those rows want (they must be
     biddable against, or the contest can never resolve),
   * re-solving only this contested set — a *flat* frontier solve over
     the remaining capacities, warm-started from ``λ̂``

   until no violation remains.  Prices only rise inside re-solves, so
   the loop settles; a pathological instance that exceeds the round
   budget falls back to one cold flat solve of the full problem.

On exit the merged assignment is feasible, satisfies ε-CS under ``λ̂``
for every row, and every positively-priced uploader is saturated —
the three conditions of the auction's own optimality certificate — so
the welfare gap to the optimum (and hence to the flat reference solve)
is bounded by ``n·ε`` exactly like the flat solver's.  ``n_shards=1``
(or a degenerate partition) short-circuits to the flat solver and is
byte-identical to it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .auction import (
    DEFAULT_EPSILON,
    AuctionNonConvergence,
    AuctionSolver,
    _segment_max,
)
from .problem import CSRView, SchedulingProblem
from .result import ScheduleResult, SolverStats
from .workers import ShardWorkerPool, WorkerError

__all__ = [
    "ShardPlan",
    "ShardedAuctionSolver",
    "ShardedSolveReport",
    "boundary_uploaders",
    "plan_shards",
    "rows_view",
]

#: Float slack for the ε-CS violation checks: bids are built by float
#: adds, so equality cases sit within a few ulps of the bound.
_CS_ATOL = 1e-12

#: Override for the coordination-stall limit (rounds with no drop in
#: the violation count before the loop is declared cycling and bails to
#: the fallback).  ``None`` — the default — adapts the limit to the
#: partition: converging workloads shrink the contested set every
#: round, and the headroom a genuine convergence can need grows with
#: the number of shards whose prices must reconcile, so the limit is
#: ``max(2, nonempty_shards.bit_length())`` (2 shards → 2 rounds,
#: 5 → 3, 64 → 7) instead of a flat 5 — the 10k-tier stall slot bails
#: two rounds sooner.  Tests pin a small integer here to force the
#: stall path deterministically.
_STALL_LIMIT: Optional[int] = None


def _stall_limit(n_nonempty: int) -> int:
    """Stall-round budget for a partition with ``n_nonempty`` shards."""
    if _STALL_LIMIT is not None:
        return _STALL_LIMIT
    return max(2, int(n_nonempty).bit_length())


#: Blocks whose published copy is compared before rewriting: the CSR
#: structure and the shard plan are stable across re-bid rounds and
#: across delta-patched slots without membership churn.  ``values`` and
#: ``lam0`` are deliberately absent — valuations are recomputed
#: wholesale every slot (deadline drift), so their blocks always
#: rewrite.
_STABLE_BLOCKS = ("uidx", "indptr", "uploaders", "capacity", "porder", "pindptr")


@dataclass(frozen=True)
class ShardPlan:
    """Row partition of one slot problem into region shards.

    ``order`` holds the request rows grouped by shard (ascending row
    order within each shard — the partition is a stable counting sort),
    with shard ``s`` occupying ``order[indptr[s]:indptr[s+1]]``.
    """

    n_shards: int
    shard_of_row: np.ndarray
    order: np.ndarray
    indptr: np.ndarray

    def rows(self, shard: int) -> np.ndarray:
        """Global request rows of ``shard`` (ascending; do not mutate)."""
        return self.order[self.indptr[shard] : self.indptr[shard + 1]]

    def shard_sizes(self) -> np.ndarray:
        """Row count per shard, ``(n_shards,)``."""
        return np.diff(self.indptr)

    def n_nonempty(self) -> int:
        """Shards that actually hold rows."""
        return int((np.diff(self.indptr) > 0).sum())


def plan_shards(regions: np.ndarray, n_shards: int) -> ShardPlan:
    """Partition rows by requester region into ``n_shards`` groups.

    ``regions`` is the per-row ISP region id; rows map to shard
    ``region % n_shards`` so any shard count folds the region axis
    deterministically (``n_shards ≥ n_regions`` gives one shard per
    region).  Correctness never depends on the partition — any grouping
    coordinates to the same certificate — only locality does.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
    shard_of_row = np.asarray(regions, dtype=np.int64) % n_shards
    order = np.argsort(shard_of_row, kind="stable")
    indptr = np.zeros(n_shards + 1, dtype=np.int64)
    np.cumsum(np.bincount(shard_of_row, minlength=n_shards), out=indptr[1:])
    return ShardPlan(
        n_shards=n_shards, shard_of_row=shard_of_row, order=order, indptr=indptr
    )


def rows_view(
    csr: CSRView, rows: np.ndarray, capacity: Optional[np.ndarray] = None
) -> CSRView:
    """Sub-CSR over ``rows`` in the parent's *global* uploader space.

    The returned view keeps the parent's ``uploaders``/``capacity``
    columns (optionally overridden with remaining capacities), so
    per-shard price vectors are index-aligned with the parent's and
    merging needs no id remapping.  One flat gather — O(edges kept).
    """
    counts = np.diff(csr.indptr)
    lens = counts[rows]
    eidx = AuctionSolver._concat_ranges(csr.indptr[rows], lens)
    indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    return CSRView(
        values=csr.values[eidx],
        uploader_index=csr.uploader_index[eidx],
        indptr=indptr,
        uploaders=csr.uploaders,
        capacity=csr.capacity if capacity is None else capacity,
    )


def boundary_uploaders(csr: CSRView, plan: ShardPlan) -> np.ndarray:
    """Bool mask over uploader indices: candidate to rows of ≥ 2 shards.

    Private uploaders (every incident edge inside one shard) are exactly
    solved by their shard's sub-auction; boundary uploaders are the
    coordination interface.  Uses the reverse uploader→rows index, so
    the pass is O(E) after the (cached) transpose.
    """
    rev_indptr, rev_rows = csr.uploader_rows()
    if not len(rev_rows):
        return np.zeros(len(csr.uploaders), dtype=bool)
    shard_of_edge = plan.shard_of_row[rev_rows]
    lo = _segment_max(-shard_of_edge.astype(float), rev_indptr)
    hi = _segment_max(shard_of_edge.astype(float), rev_indptr)
    # Empty segments give -inf on both sides → not boundary.
    return np.isfinite(hi) & (hi != -lo)


class _CSRProblem:
    """Adapter presenting a bare :class:`CSRView` to ``_solve_jacobi``.

    The jacobi frontier reads the problem exclusively through
    ``problem.csr()``, so shard sub-solves need no
    :class:`SchedulingProblem` round-trip (dict re-keying, cache
    rebuilds) — just the sliced view.
    """

    __slots__ = ("_view",)

    def __init__(self, view: CSRView) -> None:
        self._view = view

    def csr(self) -> CSRView:
        return self._view


@dataclass
class ShardedSolveReport:
    """Diagnostics of one sharded solve (``solver.last_report``)."""

    n_shards: int = 1
    shard_sizes: Tuple[int, ...] = ()
    n_boundary_uploaders: int = 0
    coordination_rounds: int = 0
    contested_rows: int = 0
    released_overloaded: int = 0
    repriced_slack: int = 0
    #: "" (coordinated), "short-circuit" (≤ 1 effective shard),
    #: "coordination-stall" (violation count stopped improving — flat
    #: fallback) or "coordination-budget" (flat fallback).
    fallback: str = ""
    #: The flat fallback resolved from the merged λ̂ warm start and its
    #: certificate checked out (False: the exact cold solve ran).
    fallback_warm: bool = False
    #: Worker processes that ran the phase-1 shard solves (0 = the
    #: in-process sequential path).
    procs: int = 0
    #: Shards solved by the pool in phase 1.
    par_shards: int = 0
    #: Reason code of the worker-pool degradation this solve, "" if the
    #: pool ran clean (mirrors ``solver.worker_fallbacks``).
    worker_fallback: str = ""
    #: Shared-memory blocks actually rewritten by this solve's publish
    #: (−1: nothing published — in-process path).
    blocks_republished: int = -1


class ShardedAuctionSolver:
    """Region-sharded driver around :class:`AuctionSolver`.

    Parameters
    ----------
    epsilon:
        Bidding increment, as in :class:`AuctionSolver`; the merged
        result satisfies the same ``n·ε`` welfare bound.
    n_shards:
        Target shard count; rows map to ``region % n_shards``.
    mode:
        Mode for the flat paths (the ``n_shards=1`` short-circuit and
        the non-convergence fallback).  Shard and repair solves always
        run the jacobi frontier.
    max_rounds:
        Per-(sub)solve round budget, as in :class:`AuctionSolver`.
    max_coordination_rounds:
        Boundary-coordination rounds before the flat fallback.
    n_workers:
        Worker processes for the phase-1 shard solves and the phase-2
        contested re-solves (:class:`~repro.core.workers.ShardWorkerPool`
        over shared-memory blocks).  0 — the default — solves in
        process.  Results are byte-identical either way; any pool
        failure degrades to the in-process path and counts into
        ``worker_fallbacks``.
    worker_timeout:
        Seconds to wait on a worker reply before declaring it hung.
    """

    def __init__(
        self,
        epsilon: float = DEFAULT_EPSILON,
        n_shards: int = 2,
        mode: str = "auto",
        max_rounds: int = 100_000,
        max_coordination_rounds: int = 40,
        n_workers: int = 0,
        worker_timeout: float = 120.0,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards!r}")
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers!r}")
        self.epsilon = float(epsilon)
        self.n_shards = int(n_shards)
        self.mode = mode
        self.max_rounds = int(max_rounds)
        self.max_coordination_rounds = int(max_coordination_rounds)
        self.n_workers = int(n_workers)
        self.worker_timeout = float(worker_timeout)
        self.last_report = ShardedSolveReport()
        #: Cumulative reason-coded count of worker-pool degradations
        #: (``worker-crash``, ``worker-timeout``, ``payload-too-large``,
        #: ``shm-unavailable``, …).  Every entry was a solve that fell
        #: back to the in-process path with identical results.
        self.worker_fallbacks: Dict[str, int] = {}
        #: Bid-phase row evaluations of the last solve, summed over the
        #: in-process sub-solves (worker-side evaluations are not
        #: counted — workers return assignments, not per-round traces).
        #: Telemetry only; kept off ``ShardedSolveReport`` so report
        #: equality stays pinned by the determinism properties.
        self.rows_evaluated = 0
        self._pool: Optional[ShardWorkerPool] = None
        self._pool_failed = False
        # Partition cache: the region column is stable across re-bid
        # rounds (and across delta-patched slots with no membership
        # churn), so the counting sort is revalidated by one compare —
        # or by identity alone when the caller hands back the same
        # (read-only) array, as the store's memoized ``regions_of``
        # does.
        self._plan_key: Optional[np.ndarray] = None
        self._plan: Optional[ShardPlan] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def solve(
        self,
        problem: SchedulingProblem,
        regions: np.ndarray,
        initial_prices=None,
    ) -> ScheduleResult:
        """Solve one slot sharded by ``regions`` (per-row region ids).

        ``initial_prices`` warm-starts ``λ̂`` exactly like the flat
        solver's (dict or ``(ids, values)`` pair).  With one effective
        shard the call degenerates to — and is byte-identical with —
        :meth:`AuctionSolver.solve`.
        """
        self.rows_evaluated = 0
        regions = np.asarray(regions, dtype=np.int64)
        if len(regions) != problem.n_requests:
            raise ValueError(
                f"regions column has {len(regions)} rows for "
                f"{problem.n_requests} requests"
            )
        if self.n_shards == 1 or problem.n_requests == 0:
            return self._flat(problem, initial_prices, "short-circuit")
        plan = self._planned(regions)
        if plan.n_nonempty() <= 1:
            return self._flat(problem, initial_prices, "short-circuit")
        return self._solve_sharded(problem, plan, initial_prices)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _flat(
        self, problem: SchedulingProblem, initial_prices, why: str
    ) -> ScheduleResult:
        self.last_report = ShardedSolveReport(n_shards=1, fallback=why)
        solver = AuctionSolver(
            epsilon=self.epsilon, mode=self.mode, max_rounds=self.max_rounds
        )
        result = solver.solve(problem, initial_prices=initial_prices)
        self.rows_evaluated += solver.rows_evaluated
        return result

    def _planned(self, regions: np.ndarray) -> ShardPlan:
        if self._plan is not None and regions is self._plan_key:
            # O(1) identity hit: the store's memoized ``regions_of``
            # returns the same read-only array while its (peers,
            # region-version) key is unchanged.
            return self._plan
        if self._plan_key is not None and np.array_equal(self._plan_key, regions):
            self._adopt_plan_key(regions)
            return self._plan
        plan = plan_shards(regions, self.n_shards)
        self._adopt_plan_key(regions)
        self._plan = plan
        return plan

    def _adopt_plan_key(self, regions: np.ndarray) -> None:
        # A read-only column is kept by reference (the next call
        # revalidates by identity, no compare); a writable one is
        # defensively copied as before — the caller may mutate it.
        self._plan_key = regions if not regions.flags.writeable else regions.copy()

    def close(self) -> None:
        """Shut down the worker pool (no-op for in-process solves)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover — belt and braces
        try:
            self.close()
        except Exception:
            pass

    def _worker_pool(self) -> Optional[ShardWorkerPool]:
        if self.n_workers <= 0 or self._pool_failed:
            return None
        if self._pool is None:
            self._pool = ShardWorkerPool(
                self.n_workers, timeout_s=self.worker_timeout
            )
        return self._pool

    def _count_worker_fallback(
        self, report: ShardedSolveReport, exc: WorkerError
    ) -> None:
        report.worker_fallback = exc.reason
        self.worker_fallbacks[exc.reason] = (
            self.worker_fallbacks.get(exc.reason, 0) + 1
        )
        if exc.reason == "shm-unavailable":
            # Permanent on this platform — stop re-probing every slot.
            self._pool_failed = True
            self.close()

    def _sub_solver(self) -> AuctionSolver:
        return AuctionSolver(
            epsilon=self.epsilon, mode="jacobi", max_rounds=self.max_rounds
        )

    @staticmethod
    def _id_to_index(uploaders: np.ndarray):
        """Vectorized uploader peer id → uploader index mapper."""
        sorter = np.argsort(uploaders, kind="stable")
        sorted_ids = uploaders[sorter]

        def to_index(ids: np.ndarray) -> np.ndarray:
            return sorter[np.searchsorted(sorted_ids, ids)]

        return to_index

    # ------------------------------------------------------------------
    # The sharded path
    # ------------------------------------------------------------------
    def _solve_sharded(
        self, problem: SchedulingProblem, plan: ShardPlan, initial_prices
    ) -> ScheduleResult:
        csr = problem.csr()
        n = csr.n_requests
        n_uploaders = len(csr.uploaders)
        capacity = csr.capacity
        uidx = csr.uploader_index
        counts = np.diff(csr.indptr)
        values = csr.values
        if csr.n_edges and (capacity == 0).any():
            values = values.copy()
            values[capacity[uidx] == 0] = -np.inf
        to_index = self._id_to_index(csr.uploaders)
        lam0 = AuctionSolver._initial_lam(csr.uploaders, initial_prices)

        report = ShardedSolveReport(
            n_shards=plan.n_shards,
            shard_sizes=tuple(int(c) for c in plan.shard_sizes()),
        )
        self.last_report = report

        # Phase 1 — speculative per-shard frontier solves against the
        # full capacities (boundary uploaders may end oversubscribed).
        # The boundary count (diagnostics) piggybacks on the shard views
        # already in hand — one bincount per shard instead of the full
        # reverse-index transpose :func:`boundary_uploaders` would pay.
        assigned_idx = np.full(n, -1, dtype=np.int64)
        lam_hat = lam0.copy()
        stats = SolverStats()

        def merge_payload_stats(s: tuple, parallel_depth: bool) -> None:
            # Shards are independent: rounds count as the longest shard
            # (parallel-depth semantics); work counters add up.  The
            # merge is commutative, so worker completion order cannot
            # change the result.
            nonlocal shard_rounds
            if parallel_depth:
                shard_rounds = max(shard_rounds, s[0])
            else:
                stats.rounds += s[0]
            stats.bids_submitted += s[1]
            stats.bids_rejected += s[2]
            stats.evictions += s[3]
            stats.price_updates += s[4]
            stats.converged = stats.converged and s[5]

        def apply_payload(payload: dict, rows: np.ndarray) -> None:
            a = payload["assignment"]
            served = a >= 0
            if served.any():
                assigned_idx[rows[served]] = to_index(a[served])
            idx = payload["lam_idx"]
            if len(idx):
                # Sparse merge ≡ the sequential dense max-merge: the
                # worker's λ equals the one it was sent off ``idx``.
                lam_hat[idx] = np.maximum(lam_hat[idx], payload["lam_vals"])

        def coordination_fallback(why: str) -> ScheduleResult:
            # The certificate cannot be established by coordination —
            # fall back to one flat solve.  Try it warm-started from
            # the merged λ̂ first: that usually resolves in a handful
            # of rounds where the cold solve repeats the whole price
            # discovery (the 224 ms-class stall-slot outliers).  A warm
            # start can void the cold-auction certificate — the solver
            # never lowers prices, so a stale positive λ can end on an
            # unsaturated uploader (CS-1) — hence the certificate is
            # verified explicitly, with up to two CS-1 repair retries
            # (zero the slack prices, re-solve warm: the same repair
            # the coordination loop applies each round).  If it still
            # fails, the exact cold solve runs — the pinned reference.
            report.fallback = why
            attempt_stats = stats
            lam_try = lam_hat
            for _ in range(3):
                warm_solver = AuctionSolver(
                    epsilon=self.epsilon,
                    mode=self.mode,
                    max_rounds=self.max_rounds,
                )
                try:
                    warm = warm_solver.solve(
                        problem, initial_prices=(csr.uploaders, lam_try)
                    )
                except AuctionNonConvergence:
                    break
                finally:
                    self.rows_evaluated += warm_solver.rows_evaluated
                attempt_stats = attempt_stats.merge(warm.stats)
                if self._certified(csr, values, counts, warm, to_index):
                    report.fallback_warm = True
                    self.last_report = report
                    warm.stats = attempt_stats
                    return warm
                a = warm.assignment_array()
                won = a >= 0
                w_idx = np.full(n, -1, dtype=np.int64)
                if won.any():
                    w_idx[won] = to_index(a[won])
                load_w = np.bincount(w_idx[won], minlength=n_uploaders)
                lam_try = warm.price_arrays()[1].copy()
                lam_try[(lam_try > 0.0) & (load_w < capacity)] = 0.0
            flat = self._flat(problem, None, why)
            self.last_report = report
            flat.stats = attempt_stats.merge(flat.stats)
            return flat

        shard_rounds = 0
        shards_touching = np.zeros(n_uploaders, dtype=np.int64)
        payloads: Optional[Dict[int, dict]] = None
        pool = self._worker_pool()
        if pool is not None:
            try:
                report.blocks_republished = pool.publish(
                    {
                        "values": values,
                        "uidx": uidx,
                        "indptr": csr.indptr,
                        "uploaders": csr.uploaders,
                        "capacity": capacity,
                        "lam0": lam0,
                        "porder": plan.order,
                        "pindptr": plan.indptr,
                    },
                    stable=_STABLE_BLOCKS,
                )
                sizes = plan.shard_sizes()
                shard_ids = [
                    int(s)
                    for s in np.argsort(-sizes, kind="stable")
                    if sizes[s] > 0
                ]
                payloads = pool.map_shards(
                    shard_ids, epsilon=self.epsilon, max_rounds=self.max_rounds
                )
            except WorkerError as exc:
                self._count_worker_fallback(report, exc)
                payloads = None
        if payloads is not None:
            report.procs = pool.n_workers
            report.par_shards = len(payloads)
            for shard in range(plan.n_shards):
                payload = payloads.get(shard)
                if payload is None:
                    continue
                shards_touching[payload["touched"]] += 1
                apply_payload(payload, plan.rows(shard))
                merge_payload_stats(payload["stats"], parallel_depth=True)
        else:
            for shard in range(plan.n_shards):
                rows = plan.rows(shard)
                if not len(rows):
                    continue
                view = rows_view(csr, rows)
                shards_touching += (
                    np.bincount(view.uploader_index, minlength=n_uploaders) > 0
                )
                sub = self._sub_solver()
                res = sub._solve_jacobi(
                    _CSRProblem(view), initial_prices=(csr.uploaders, lam0)
                )
                self.rows_evaluated += sub.rows_evaluated
                a = res.assignment_array()
                served = a >= 0
                if served.any():
                    assigned_idx[rows[served]] = to_index(a[served])
                np.maximum(lam_hat, res.price_arrays()[1], out=lam_hat)
                s = res.stats
                merge_payload_stats(
                    (
                        s.rounds,
                        s.bids_submitted,
                        s.bids_rejected,
                        s.evictions,
                        s.price_updates,
                        s.converged,
                    ),
                    parallel_depth=True,
                )
        stats.rounds = shard_rounds
        report.n_boundary_uploaders = int((shards_touching >= 2).sum())

        # Phase 2 — boundary-price coordination.  The slack-reset /
        # re-inflate pair can cycle on adversarial tie structure, so
        # progress is tracked: if the violation count stops improving
        # for the partition's stall budget (adaptive in the nonempty
        # shard count, see :func:`_stall_limit`) the loop is not going
        # to converge and bails to the flat fallback immediately
        # instead of burning the whole round budget on the cycle.
        best_viol: Optional[int] = None
        stall = 0
        stall_budget = _stall_limit(plan.n_nonempty())
        dispatch = payloads is not None
        for _ in range(self.max_coordination_rounds):
            report.coordination_rounds += 1
            served = assigned_idx >= 0
            load = np.bincount(assigned_idx[served], minlength=n_uploaders)
            # (a) Oversubscribed (necessarily boundary) uploaders:
            # release every holder; the re-solve re-auctions them under
            # one consistent price.
            over = load > capacity
            if over.any():
                drop = np.nonzero(served)[0]
                drop = drop[over[assigned_idx[drop]]]
                assigned_idx[drop] = -1
                report.released_overloaded += len(drop)
                served = assigned_idx >= 0
                load = np.bincount(assigned_idx[served], minlength=n_uploaders)
            # (b) CS-1 repair: a positive price on an uploader that did
            # not fill globally is shard-local inflation — reset to the
            # cold-auction level so retired rows that would win at the
            # true price get flagged below and re-bid.
            slack = (lam_hat > 0.0) & (load < capacity)
            if slack.any():
                report.repriced_slack += int(slack.sum())
                lam_hat[slack] = 0.0
            # (c) ε-CS audit under the merged prices.
            viol, phi = self._cs_violations(
                values, uidx, csr.indptr, counts, lam_hat, assigned_idx, served
            )
            if not viol.any():
                break
            # Saturated uploaders wanted by a violating row must be
            # biddable against — release their members into the contest
            # (otherwise the re-solve sees zero remaining capacity there
            # and the tension can never resolve).
            hot = np.zeros(n_uploaders, dtype=bool)
            want = viol[csr.edge_rows()] & (phi > 0.0)
            hot[uidx[want]] = True
            hot &= load >= capacity
            if hot.any():
                viol |= served & hot[np.where(served, assigned_idx, 0)]
            contested = np.nonzero(viol)[0]
            report.contested_rows += len(contested)
            if best_viol is None or len(contested) < best_viol:
                best_viol = len(contested)
                stall = 0
            else:
                stall += 1
                if stall >= stall_budget:
                    return coordination_fallback("coordination-stall")
            assigned_idx[contested] = -1
            served = assigned_idx >= 0
            load = np.bincount(assigned_idx[served], minlength=n_uploaders)
            # (d) Flat re-solve of only the contested rows over the
            # remaining capacities, warm-started from λ̂ (prices only
            # rise from here, which is what settles the loop).  With
            # the pool live the re-solve runs on an idle worker: the
            # parent ships only the contested row ids plus sparse λ̂ /
            # remaining-capacity deltas against the published blocks.
            payload = None
            if dispatch:
                remaining = capacity - load
                lam_idx = np.flatnonzero(lam_hat != lam0)
                cap_idx = np.flatnonzero(remaining != capacity)
                try:
                    payload = pool.solve_rows(
                        contested,
                        lam_idx,
                        lam_hat[lam_idx],
                        cap_idx,
                        remaining[cap_idx],
                        epsilon=self.epsilon,
                        max_rounds=self.max_rounds,
                    )
                except WorkerError as exc:
                    self._count_worker_fallback(report, exc)
                    dispatch = False
            if payload is not None:
                apply_payload(payload, contested)
                merge_payload_stats(payload["stats"], parallel_depth=False)
            else:
                view = rows_view(csr, contested, capacity=capacity - load)
                sub = self._sub_solver()
                res = sub._solve_jacobi(
                    _CSRProblem(view), initial_prices=(csr.uploaders, lam_hat)
                )
                self.rows_evaluated += sub.rows_evaluated
                a = res.assignment_array()
                won = a >= 0
                if won.any():
                    assigned_idx[contested[won]] = to_index(a[won])
                np.maximum(lam_hat, res.price_arrays()[1], out=lam_hat)
                s = res.stats
                merge_payload_stats(
                    (
                        s.rounds,
                        s.bids_submitted,
                        s.bids_rejected,
                        s.evictions,
                        s.price_updates,
                        s.converged,
                    ),
                    parallel_depth=False,
                )
        else:
            # Coordination budget exhausted (adversarial tie structure).
            return coordination_fallback("coordination-budget")

        etas = AuctionSolver._etas_array(problem, lam_hat)
        return ScheduleResult.from_arrays(
            assigned_idx, csr.uploaders, lam_hat, etas=etas, stats=stats
        )

    # ------------------------------------------------------------------
    # Certificate pieces (shared by the coordination loop and the warm
    # fallback)
    # ------------------------------------------------------------------
    def _cs_violations(
        self,
        values: np.ndarray,
        uidx: np.ndarray,
        indptr: np.ndarray,
        counts: np.ndarray,
        lam: np.ndarray,
        assigned_idx: np.ndarray,
        served: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """ε-CS violation mask per row under prices ``lam`` (+ edge φ).

        Served rows violate when their assigned surplus trails the best
        by more than ε; unserved rows when any positive surplus exists.
        """
        phi = values - lam[uidx]
        phi1 = _segment_max(phi, indptr)
        phi_assigned = _segment_max(
            np.where(uidx == np.repeat(assigned_idx, counts), phi, -np.inf),
            indptr,
        )
        viol = np.where(
            served,
            phi_assigned < np.maximum(phi1, 0.0) - self.epsilon - _CS_ATOL,
            phi1 > _CS_ATOL,
        )
        return viol, phi

    def _certified(
        self,
        csr: CSRView,
        values: np.ndarray,
        counts: np.ndarray,
        result: ScheduleResult,
        to_index,
    ) -> bool:
        """Whether ``result`` carries the full n·ε optimality certificate.

        Feasible load, ε-CS for every row, and CS-1 (positive price ⇒
        saturated) — the three conditions that bound the welfare gap by
        ``n·ε``.  Used to validate the λ̂-warm-started fallback solve,
        whose stale warm prices can void CS-1.
        """
        a = result.assignment_array()
        served = a >= 0
        assigned_idx = np.full(len(a), -1, dtype=np.int64)
        if served.any():
            assigned_idx[served] = to_index(a[served])
        lam = result.price_arrays()[1]
        load = np.bincount(
            assigned_idx[served], minlength=len(csr.uploaders)
        )
        if (load > csr.capacity).any():
            return False
        if ((lam > 0.0) & (load < csr.capacity)).any():
            return False
        viol, _ = self._cs_violations(
            values, csr.uploader_index, csr.indptr, counts, lam, assigned_idx, served
        )
        return not viol.any()
