"""Baseline schedulers the auction is compared against.

The paper's comparator (Section V): "each downstream peer requests
chunks from upstream neighbors with the lowest network costs in between
as much as possible; for bandwidth allocation at an upstream peer, it
always prioritizes to transmit chunks with more urgent deadlines."
That is :class:`SimpleLocalityScheduler`.

We add two more for context: :class:`NetworkAgnosticScheduler` (random
neighbor choice — the ISP-oblivious protocols of the paper's
introduction) and :class:`UtilityGreedyScheduler` (a centralized greedy
on ``v − w``, a strong non-optimal heuristic).  All baselines are
welfare-oblivious in the way the paper describes: the locality and
agnostic protocols never check the sign of ``v − w``, which is why their
social welfare can go negative (Fig. 3).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .problem import SchedulingProblem
from .result import ScheduleResult, SolverStats

__all__ = [
    "LocalityRetryScheduler",
    "NetworkAgnosticScheduler",
    "RandomScheduler",
    "SimpleLocalityScheduler",
    "UtilityGreedyScheduler",
]


class _UrgencyQueue:
    """An uploader's accepted set, prioritized by requester urgency (valuation).

    Keeps the ``capacity`` most urgent requests; less urgent ones are
    evicted when displaced.
    """

    __slots__ = ("capacity", "members", "_heap", "_seq")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.members: Dict[int, float] = {}
        self._heap: List[tuple] = []  # (valuation, seq, request)
        self._seq = itertools.count()

    def offer(self, request: int, valuation: float) -> Optional[int]:
        """Try to accept ``request``.

        Returns ``request`` itself when turned away, the evicted request
        when it displaced someone, or ``None`` when accepted without
        eviction.
        """
        if self.capacity == 0:
            return request
        if len(self.members) < self.capacity:
            self._push(request, valuation)
            return None
        self._settle()
        lowest_val, _, lowest_req = self._heap[0]
        if valuation <= lowest_val:
            return request
        heapq.heappop(self._heap)
        del self.members[lowest_req]
        self._push(request, valuation)
        return lowest_req

    def _push(self, request: int, valuation: float) -> None:
        self.members[request] = valuation
        heapq.heappush(self._heap, (valuation, next(self._seq), request))

    def _settle(self) -> None:
        while self._heap:
            valuation, _, request = self._heap[0]
            if self.members.get(request) == valuation:
                return
            heapq.heappop(self._heap)


def _preference_rounds(
    problem: SchedulingProblem,
    preference_order: Callable[[int], Sequence[int]],
    max_attempts: Optional[int] = None,
) -> ScheduleResult:
    """Run the proposal protocol shared by the baselines.

    Each unassigned request proposes to its next-preferred candidate;
    uploaders keep the most urgent proposals up to capacity.
    ``max_attempts`` bounds how many candidates a request may try:

    * ``1`` — single-shot, the paper's strawman protocols: a request
      rejected (or later displaced) at its chosen neighbor is simply
      dropped for the slot.  No re-bidding machinery — that is exactly
      what the auction adds.
    * ``None`` — unlimited retries (deferred acceptance), a much
      stronger variant used as an ablation.

    Terminates because preference cursors only advance (at most one
    proposal per edge).
    """
    n = problem.n_requests
    stats = SolverStats()
    queues: Dict[int, _UrgencyQueue] = {
        u: _UrgencyQueue(problem.capacity_of(u)) for u in problem.uploaders()
    }
    prefs: List[Sequence[int]] = [preference_order(r) for r in range(n)]
    cursor = [0] * n
    assigned: List[Optional[int]] = [None] * n
    pending = list(range(n))
    while pending:
        r = pending.pop()
        if assigned[r] is not None:
            continue
        order = prefs[r]
        if max_attempts is not None and cursor[r] >= max_attempts:
            continue  # out of attempts: dropped for this slot
        if cursor[r] >= len(order):
            continue  # exhausted all candidates: stays unserved
        target = order[cursor[r]]
        cursor[r] += 1
        stats.bids_submitted += 1
        outcome = queues[target].offer(r, problem.request(r).valuation)
        if outcome is None:
            assigned[r] = target
        elif outcome == r:
            stats.bids_rejected += 1
            pending.append(r)  # re-queued; dropped if out of attempts
        else:
            assigned[r] = target
            assigned[outcome] = None
            stats.evictions += 1
            pending.append(outcome)
    stats.rounds = stats.bids_submitted
    return ScheduleResult.from_assignment_ids(
        np.fromiter(
            (-1 if u is None else u for u in assigned), dtype=np.int64, count=n
        ),
        stats=stats,
    )


def _cost_order(problem: SchedulingProblem, r: int) -> Sequence[int]:
    candidates = problem.candidates_of(r)
    costs = problem.costs_of(r)
    order = np.argsort(costs, kind="stable")
    return [int(candidates[i]) for i in order]


class SimpleLocalityScheduler:
    """The paper's locality-aware comparator.

    "Each downstream peer requests chunks from upstream neighbors with
    the lowest network costs in between as much as possible; for
    bandwidth allocation at an upstream peer, it always prioritizes to
    transmit chunks with more urgent deadlines."  Single-shot: a request
    turned away at its cheapest neighbor is dropped for the slot (the
    protocol has no re-bidding — that is the auction's contribution).
    """

    name = "locality"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        return _preference_rounds(
            problem, lambda r: _cost_order(problem, r), max_attempts=1
        )


class LocalityRetryScheduler:
    """Deferred-acceptance variant of the locality protocol (ablation).

    Requests walk their candidates in cost order until accepted —
    strictly stronger than the paper's strawman; useful to separate how
    much of the auction's edge comes from re-bidding versus from
    welfare-aware prices.
    """

    name = "locality-retry"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        return _preference_rounds(problem, lambda r: _cost_order(problem, r))


class NetworkAgnosticScheduler:
    """ISP-oblivious baseline: random candidate choice, urgency allocation.

    Models the "network agnostic" protocols of the introduction, where a
    peer downloads from whoever caches the chunk regardless of ISP.
    Single-shot like the locality strawman; ``retries=True`` upgrades it
    to deferred acceptance.
    """

    name = "agnostic"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        retries: bool = False,
    ) -> None:
        self.rng = rng or np.random.default_rng(0)
        self.retries = retries

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        def shuffled(r: int) -> Sequence[int]:
            candidates = [int(u) for u in problem.candidates_of(r)]
            self.rng.shuffle(candidates)
            return candidates

        return _preference_rounds(
            problem, shuffled, max_attempts=None if self.retries else 1
        )


class UtilityGreedyScheduler:
    """Centralized greedy on edge utility ``v − w`` (positive edges only).

    A strong heuristic upper-mid baseline: it sees all edges at once
    (unlike the distributed protocols) but commits greedily, so it can
    be beaten by the auction on instances where early greedy picks block
    better global matchings.
    """

    name = "greedy"

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        edges = []
        for r in range(problem.n_requests):
            for u, value in zip(problem.candidates_of(r), problem.edge_values_of(r)):
                if value > 0:
                    edges.append((float(value), r, int(u)))
        edges.sort(key=lambda e: (-e[0], e[1], e[2]))
        remaining = {u: problem.capacity_of(u) for u in problem.uploaders()}
        assignment: Dict[int, Optional[int]] = {
            r: None for r in range(problem.n_requests)
        }
        stats = SolverStats()
        for value, r, u in edges:
            if assignment[r] is not None or remaining[u] == 0:
                continue
            assignment[r] = u
            remaining[u] -= 1
            stats.bids_submitted += 1
        stats.rounds = 1
        return ScheduleResult(assignment=assignment, stats=stats)


class RandomScheduler:
    """Uniform random feasible assignment — the floor any protocol must beat.

    ``positive_only`` restricts to positive-utility edges; with it off the
    scheduler mimics fully oblivious chunk exchange.
    """

    name = "random"

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        positive_only: bool = False,
    ) -> None:
        self.rng = rng or np.random.default_rng(0)
        self.positive_only = positive_only

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        order = list(range(problem.n_requests))
        self.rng.shuffle(order)
        remaining = {u: problem.capacity_of(u) for u in problem.uploaders()}
        assignment: Dict[int, Optional[int]] = {
            r: None for r in range(problem.n_requests)
        }
        stats = SolverStats(rounds=1)
        for r in order:
            candidates = problem.candidates_of(r)
            values = problem.edge_values_of(r)
            viable = [
                int(u)
                for u, value in zip(candidates, values)
                if remaining[int(u)] > 0 and (value > 0 or not self.positive_only)
            ]
            if not viable:
                continue
            pick = viable[int(self.rng.integers(len(viable)))]
            assignment[r] = pick
            remaining[pick] -= 1
            stats.bids_submitted += 1
        return ScheduleResult(assignment=assignment, stats=stats)
