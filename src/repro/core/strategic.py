"""Strategic bidding study: what a selfish peer gains by misreporting.

The paper's auction takes reported valuations at face value and charges
no money: a winner's utility is simply ``v − w``.  A selfish peer can
therefore inflate its reports to grab bandwidth it values less than the
displaced peers do — the manipulation the paper's conclusion flags as
open work.  :func:`manipulation_study` quantifies it:

* under the **auction** mechanism (no payments), the cheater's true
  utility is non-decreasing in its misreport factor while social welfare
  falls;
* under the **VCG** layer (:mod:`repro.core.vcg`), the cheater pays its
  externality, and misreporting never beats truth-telling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .exact import solve_hungarian
from .problem import SchedulingProblem
from .result import ScheduleResult
from .vcg import vcg_payments

__all__ = ["ManipulationRow", "manipulation_study", "true_utility_of_peer"]


def true_utility_of_peer(
    problem: SchedulingProblem, result: ScheduleResult, peer: int
) -> float:
    """Σ (true v − w) over the chunks ``peer`` actually receives.

    ``problem`` must carry the *true* valuations; ``result`` may come
    from a run on misreported ones (same request order — guaranteed by
    :meth:`SchedulingProblem.reweighted`).
    """
    total = 0.0
    for index, uploader in result.assignment.items():
        if uploader is None:
            continue
        request = problem.request(index)
        if request.peer == peer:
            total += problem.edge_value(index, uploader)
    return total


@dataclass(frozen=True)
class ManipulationRow:
    """Outcome of one misreport factor for the strategic peer."""

    factor: float
    auction_true_utility: float  # cheater's true utility, no payments
    auction_welfare: float  # true social welfare under the manipulated run
    vcg_net_utility: float  # cheater's quasilinear utility under VCG
    chunks_won: int


def manipulation_study(
    problem: SchedulingProblem,
    peer: int,
    factors: List[float],
    solver: Optional[Callable[[SchedulingProblem], ScheduleResult]] = None,
) -> List[ManipulationRow]:
    """Sweep misreport factors for ``peer`` and measure both mechanisms.

    ``factors`` scale the peer's reported valuations (1.0 = truthful).
    The solver (default: exact Hungarian, the welfare maximizer both
    mechanisms assume) runs on the *reported* problem; utilities and
    welfare are then evaluated with the *true* valuations.
    """
    solve = solver or solve_hungarian
    rows: List[ManipulationRow] = []
    for factor in factors:
        reported = problem.reweighted(
            lambda index: problem.request(index).valuation
            * (factor if problem.request(index).peer == peer else 1.0)
        )
        result = solve(reported)

        cheater_utility = true_utility_of_peer(problem, result, peer)
        true_welfare = problem.welfare(result.assignment)
        chunks = sum(
            1
            for index, uploader in result.assignment.items()
            if uploader is not None and problem.request(index).peer == peer
        )

        vcg = vcg_payments(reported, solver=solve, base_result=result)
        vcg_net = cheater_utility - vcg.payment_of(peer)

        rows.append(
            ManipulationRow(
                factor=factor,
                auction_true_utility=cheater_utility,
                auction_welfare=true_welfare,
                vcg_net_utility=vcg_net,
                chunks_won=chunks,
            )
        )
    return rows
