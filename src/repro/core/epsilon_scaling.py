"""ε-scaling driver for the auction (Bertsekas [8]'s classic speedup).

The plain auction with tiny ε can take Θ(C/ε) bidding work on instances
with large value spread C.  ε-scaling runs the auction in phases with a
geometrically decreasing increment, warm-starting each phase with the
previous phase's prices, so most of the price climbing happens in cheap
coarse phases.

Caveat (documented in DESIGN.md): with the outside option, a warm start
can strand a positive price on an uploader that ends the final phase
unsaturated, which voids the CS-1 optimality certificate.  The driver
therefore *verifies* the duality gap of the scaled run and falls back to
a cold run at ``epsilon_final`` when the certificate fails — the result
returned is always within ``n·epsilon_final`` of the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .auction import DEFAULT_EPSILON, AuctionSolver
from .duality import duality_gap
from .problem import SchedulingProblem
from .result import ScheduleResult

__all__ = ["ScaledAuctionSolver", "ScalingPhase"]


@dataclass(frozen=True)
class ScalingPhase:
    """Record of one ε phase for diagnostics/benchmarks."""

    epsilon: float
    bids: int
    welfare: float


class ScaledAuctionSolver:
    """Runs the auction through decreasing-ε phases with warm-started prices.

    Parameters
    ----------
    epsilon_final:
        ε of the last phase; the optimality bound is ``n·epsilon_final``.
    theta:
        Geometric reduction factor between phases (Bertsekas suggests 4–10).
    epsilon_initial:
        Starting ε; defaults to ``max_edge_value / 2``.
    mode:
        Forwarded to :class:`~repro.core.auction.AuctionSolver`.
    """

    name = "auction-scaled"

    def __init__(
        self,
        epsilon_final: float = DEFAULT_EPSILON,
        theta: float = 5.0,
        epsilon_initial: Optional[float] = None,
        mode: str = "auto",
        gap_tol: float = 1e-9,
    ) -> None:
        if epsilon_final <= 0:
            raise ValueError("epsilon_final must be positive (scaling needs progress)")
        if theta <= 1:
            raise ValueError(f"theta must exceed 1, got {theta!r}")
        self.epsilon_final = float(epsilon_final)
        self.theta = float(theta)
        self.epsilon_initial = epsilon_initial
        self.mode = mode
        self.gap_tol = float(gap_tol)
        self.phases: List[ScalingPhase] = []
        self.fell_back = False

    def schedule(self, problem: SchedulingProblem) -> ScheduleResult:
        """Scheduler-protocol alias for :meth:`solve`."""
        return self.solve(problem)

    def solve(self, problem: SchedulingProblem) -> ScheduleResult:
        self.phases = []
        self.fell_back = False
        epsilon = self.epsilon_initial
        if epsilon is None:
            epsilon = max(problem.max_edge_value() / 2.0, self.epsilon_final)
        epsilon = max(float(epsilon), self.epsilon_final)

        prices = None
        result: Optional[ScheduleResult] = None
        while True:
            solver = AuctionSolver(epsilon=epsilon, mode=self.mode)
            result = solver.solve(problem, initial_prices=prices)
            self.phases.append(
                ScalingPhase(
                    epsilon=epsilon,
                    bids=result.stats.bids_submitted,
                    welfare=result.welfare(problem),
                )
            )
            prices = result.prices
            if epsilon <= self.epsilon_final:
                break
            epsilon = max(self.epsilon_final, epsilon / self.theta)

        gap = duality_gap(problem, result)
        bound = result.n_served() * self.epsilon_final + self.gap_tol
        if not (-self.gap_tol <= gap <= bound):
            # Warm-start stranded a price; redo cold for a sound certificate.
            self.fell_back = True
            solver = AuctionSolver(epsilon=self.epsilon_final, mode=self.mode)
            result = solver.solve(problem)
        return result

    def total_bids(self) -> int:
        """Bids across all phases (fallback run not included)."""
        return sum(p.bids for p in self.phases)
