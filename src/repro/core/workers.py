"""Persistent multiprocess shard workers over shared-memory numpy blocks.

The region-sharded solve (:mod:`repro.core.sharding`) decomposes each
slot into per-shard frontier solves whose round counts already carry
parallel-depth semantics — this module supplies the actual parallelism.
A :class:`ShardWorkerPool` keeps N long-lived worker processes, each
running the event-driven jacobi frontier on its shard's CSR row slice.

Data flow is built around ``multiprocessing.shared_memory``:

* The parent publishes the slot problem's flat arrays — masked
  ``values``, ``uploader_index``, ``indptr``, the global ``uploaders``
  and ``capacity`` columns, the warm-start ``lam0`` and the shard
  plan's ``order``/``indptr`` — once per solve into named shared-memory
  blocks.  Both sides wrap the blocks in zero-copy numpy views, so the
  per-shard edge gathers happen in the worker against shared pages and
  the only things crossing the pipe are shard ids, sparse λ deltas and
  result columns (assignment, λ̂ delta, touched uploaders, stats).
* Blocks carry 1.5× headroom and are recreated (fresh name, old block
  unlinked) only on growth.  Structure arrays that compare equal to the
  previous slot's published copy are skipped — with the PR 7 delta
  pipeline only the invalidated blocks are republished per slot
  (``values``/``lam0`` always rewrite: valuations are recomputed
  wholesale each slot by design).

The pool is crash-safe by construction: any worker death, timeout,
desync or oversized payload raises :class:`WorkerError` with a reason
code, the caller degrades to the in-process sequential path (which is
byte-identical — the solver is deterministic on identical inputs), and
the pool restarts itself lazily on the next publish.  Clean shutdown is
guaranteed via ``atexit`` and :meth:`ShardWorkerPool.close` (idempotent;
unlinks every block).
"""

from __future__ import annotations

import atexit
import os
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp
from multiprocessing import connection as mp_connection

import numpy as np

__all__ = [
    "ShardWorkerPool",
    "WorkerError",
    "workers_available",
]

#: Ceiling on the pickled payload of a single pipe message (the
#: contested-rows dispatch: row ids plus sparse λ/capacity deltas).
#: Anything larger falls back to the in-process re-solve — the pipe is
#: the wrong transport at that size and the sequential path is exact.
_MAX_PIPE_BYTES = 64 * 1024 * 1024

#: Keys every publish must provide (the worker rebuilds its CSR view
#: and shard plan from exactly these blocks).
_REQUIRED_BLOCKS = (
    "values",
    "uidx",
    "indptr",
    "uploaders",
    "capacity",
    "lam0",
    "porder",
    "pindptr",
)


class WorkerError(RuntimeError):
    """A pool operation failed; ``reason`` codes the fallback counter.

    Reasons: ``worker-crash`` (death / broken pipe), ``worker-timeout``,
    ``worker-error`` (exception inside the worker, e.g. a pickling
    failure), ``worker-desync`` (stale reply), ``payload-too-large``
    (pipe guard — the pool stays usable), ``shm-unavailable`` (shared
    memory could not be allocated) and ``pool-closed``.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason


def workers_available() -> bool:
    """Whether POSIX shared memory is usable on this platform.

    Tests and the bench harness gate the parallel path on this — some
    sandboxes mount no ``/dev/shm``.
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    try:
        shm.close()
        shm.unlink()
    except Exception:
        pass
    return True


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _attach_untracked(name: str):
    """Attach an existing block without resource-tracker registration.

    The parent owns every block's lifecycle (create + unlink).  On
    Python < 3.13 attaching also registers with the resource tracker —
    under ``fork`` that tracker is shared with the parent (double
    bookkeeping for one registration), under ``spawn`` the worker's own
    tracker would unlink live segments at worker exit.  Suppressing the
    register call during attach fixes both; the worker is
    single-threaded so the patch window is race-free.
    """
    from multiprocessing import resource_tracker, shared_memory

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _solve_view(arrays, rows, lam, cap, epsilon, max_rounds):
    """One jacobi frontier solve over ``rows`` of the published CSR.

    ``lam``/``cap`` are the warm-start prices and (remaining)
    capacities in the global uploader space.  Returns the compact
    result payload: assignment (peer ids per local row), the sparse λ
    delta vs ``lam``, the touched-uploader index set and the stats
    tuple.  Exactly the arrays the parent's sequential path would
    produce — the frontier is deterministic, so byte-identity holds by
    construction.
    """
    from .auction import AuctionSolver
    from .problem import CSRView
    from .sharding import _CSRProblem, rows_view

    csr = CSRView(
        values=arrays["values"],
        uploader_index=arrays["uidx"],
        indptr=arrays["indptr"],
        uploaders=arrays["uploaders"],
        capacity=cap,
    )
    view = rows_view(csr, rows)
    touched = np.flatnonzero(
        np.bincount(view.uploader_index, minlength=len(csr.uploaders)) > 0
    )
    solver = AuctionSolver(epsilon=epsilon, mode="jacobi", max_rounds=max_rounds)
    res = solver._solve_jacobi(
        _CSRProblem(view), initial_prices=(arrays["uploaders"], lam)
    )
    lam_full = res.price_arrays()[1]
    changed = np.flatnonzero(lam_full != lam)
    s = res.stats
    return {
        "assignment": res.assignment_array(),
        "lam_idx": changed,
        "lam_vals": lam_full[changed],
        "touched": touched,
        "stats": (
            s.rounds,
            s.bids_submitted,
            s.bids_rejected,
            s.evictions,
            s.price_updates,
            bool(s.converged),
        ),
    }


def _worker_main(conn) -> None:
    """Worker loop: attach published blocks, answer solve requests."""
    blocks: Dict[str, object] = {}
    arrays: Optional[Dict[str, np.ndarray]] = None
    gen = -1
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if op == "stop":
            break
        if op == "_crash":  # test instrumentation (crash-fallback tests)
            os._exit(3)
        if op == "_sleep":  # test instrumentation (timeout-fallback tests)
            time.sleep(msg[1])
            continue
        if op == "publish":
            gen, specs = msg[1], msg[2]
            try:
                arrays = None  # drop views before any stale block closes
                keep = {spec[0] for spec in specs.values()}
                for name in [n for n in blocks if n not in keep]:
                    try:
                        blocks.pop(name).close()
                    except Exception:
                        pass
                fresh: Dict[str, np.ndarray] = {}
                for key, (name, dtype, shape) in specs.items():
                    if name not in blocks:
                        blocks[name] = _attach_untracked(name)
                    view = np.ndarray(
                        shape, dtype=np.dtype(dtype), buffer=blocks[name].buf
                    )
                    view.flags.writeable = False
                    fresh[key] = view
                arrays = fresh
            except Exception:
                arrays = None  # surfaces as "err" on the next solve
            continue
        # Solve requests: ("shard", gen, req, shard, eps, max_rounds) or
        # ("rows", gen, req, rows, lam_idx, lam_vals, cap_idx, cap_vals,
        #  eps, max_rounds).
        req = msg[2]
        try:
            if msg[1] != gen or arrays is None:
                raise RuntimeError("no problem published for this generation")
            if op == "shard":
                shard, epsilon, max_rounds = msg[3:]
                pindptr = arrays["pindptr"]
                rows = arrays["porder"][pindptr[shard] : pindptr[shard + 1]]
                payload = _solve_view(
                    arrays,
                    rows,
                    arrays["lam0"],
                    arrays["capacity"],
                    epsilon,
                    max_rounds,
                )
            elif op == "rows":
                rows, lam_idx, lam_vals, cap_idx, cap_vals, epsilon, max_rounds = msg[
                    3:
                ]
                lam = arrays["lam0"].copy()
                lam[lam_idx] = lam_vals
                cap = arrays["capacity"]
                if len(cap_idx):
                    cap = cap.copy()
                    cap[cap_idx] = cap_vals
                payload = _solve_view(arrays, rows, lam, cap, epsilon, max_rounds)
            else:
                raise RuntimeError(f"unknown op {op!r}")
            conn.send((req, "ok", payload))
        except Exception as exc:  # noqa: BLE001 — reported to the parent
            try:
                conn.send((req, "err", f"{type(exc).__name__}: {exc}"))
            except Exception:
                break
    arrays = None
    for shm in blocks.values():
        try:
            shm.close()
        except Exception:
            pass
    try:
        conn.close()
    except Exception:
        pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Block:
    __slots__ = ("shm", "capacity")

    def __init__(self, shm, capacity: int) -> None:
        self.shm = shm
        self.capacity = capacity


class ShardWorkerPool:
    """N persistent shard-solver processes over shared-memory blocks.

    Workers start lazily on the first :meth:`publish` and restart
    themselves after any failure (the failed call raises
    :class:`WorkerError`; the *next* publish heals the pool).  ``fork``
    is preferred where available — workers inherit the loaded modules
    and start in milliseconds; ``spawn`` platforms work too, just with
    a slower first publish.
    """

    def __init__(
        self,
        n_workers: int,
        timeout_s: float = 120.0,
        start_method: Optional[str] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers!r}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.n_workers = int(n_workers)
        self.timeout_s = float(timeout_s)
        self._ctx = mp.get_context(start_method)
        self._procs: List[mp.process.BaseProcess] = []
        self._conns: List = []
        self._blocks: Dict[str, _Block] = {}
        self._specs: Dict[str, Tuple[str, str, Tuple[int, ...]]] = {}
        self._gen = 0
        self._req = 0
        self._started = False
        self._broken = False
        self._closed = False
        self._atexit_registered = False
        #: Telemetry: summed busy wall time per worker index for the
        #: most recent :meth:`map_shards` call (dispatch → reply, as
        #: observed by the parent).  Never enters solve results.
        self.last_wall_s: Dict[int, float] = {}

    # -- lifecycle -----------------------------------------------------
    def _start(self) -> None:
        for i in range(self.n_workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-shard-worker-{i}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._started = True
        self._broken = False
        if not self._atexit_registered:
            atexit.register(self.close)
            self._atexit_registered = True

    def _stop_workers(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except Exception:
                pass
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except Exception:
                pass
        self._procs = []
        self._conns = []
        self._started = False
        self._broken = False

    def _ensure_started(self) -> None:
        if self._closed:
            raise WorkerError("pool-closed", "worker pool is closed")
        if self._broken:
            self._stop_workers()
        if not self._started:
            self._start()

    def close(self) -> None:
        """Stop workers and unlink every shared-memory block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_workers()
        for block in self._blocks.values():
            try:
                block.shm.close()
                block.shm.unlink()
            except Exception:
                pass
        self._blocks = {}
        self._specs = {}
        if self._atexit_registered:
            self._atexit_registered = False
            try:
                atexit.unregister(self.close)
            except Exception:
                pass

    def __del__(self) -> None:  # pragma: no cover — belt and braces
        try:
            self.close()
        except Exception:
            pass

    # -- publish -------------------------------------------------------
    def publish(
        self, arrays: Dict[str, np.ndarray], stable: Sequence[str] = ()
    ) -> int:
        """Publish the slot problem into shared memory; returns blocks written.

        Keys in ``stable`` are compared against the previous publish and
        skipped when byte-equal (same dtype/shape/content) — the delta
        pipeline's invalidation-aware republish.  Growth recreates the
        block under a fresh name with 1.5× headroom and unlinks the old
        one; attached workers keep their mappings until the spec swap.
        """
        self._ensure_started()
        missing = [key for key in _REQUIRED_BLOCKS if key not in arrays]
        if missing:
            raise WorkerError("worker-error", f"publish missing blocks: {missing}")
        try:
            written = 0
            specs: Dict[str, Tuple[str, str, Tuple[int, ...]]] = {}
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                block = self._blocks.get(key)
                old = self._specs.get(key)
                if (
                    key in stable
                    and block is not None
                    and old is not None
                    and old[1] == arr.dtype.str
                    and old[2] == arr.shape
                ):
                    held = np.ndarray(arr.shape, arr.dtype, buffer=block.shm.buf)
                    if np.array_equal(held, arr):
                        specs[key] = old
                        continue
                nbytes = max(int(arr.nbytes), 1)
                if block is None or block.capacity < nbytes:
                    if block is not None:
                        block.shm.close()
                        block.shm.unlink()
                    from multiprocessing import shared_memory

                    grown = max(nbytes + nbytes // 2, 64)
                    block = _Block(
                        shared_memory.SharedMemory(create=True, size=grown), grown
                    )
                    self._blocks[key] = block
                np.ndarray(arr.shape, arr.dtype, buffer=block.shm.buf)[...] = arr
                specs[key] = (block.shm.name, arr.dtype.str, arr.shape)
                written += 1
            self._specs = specs
            self._gen += 1
            for conn in self._conns:
                conn.send(("publish", self._gen, specs))
            return written
        except WorkerError:
            raise
        except (BrokenPipeError, ConnectionError, EOFError) as exc:
            self._broken = True
            raise WorkerError("worker-crash", f"publish pipe failed: {exc}") from exc
        except Exception as exc:
            self._broken = True
            raise WorkerError(
                "shm-unavailable", f"shared-memory publish failed: {exc}"
            ) from exc

    # -- solves --------------------------------------------------------
    def map_shards(
        self, shards: Sequence[int], epsilon: float, max_rounds: int
    ) -> Dict[int, dict]:
        """Solve every shard in ``shards`` across the pool; dict by shard id.

        Scheduling is greedy (next shard to the first idle worker), so
        pass shards largest-first for best packing.  Completion order
        cannot affect results — the parent's merge is commutative.
        """
        if self._closed or not self._started or self._broken:
            raise WorkerError("pool-closed", "pool is not running")
        pending = deque(int(s) for s in shards)
        idle = deque(range(len(self._conns)))
        inflight: Dict[int, Tuple[int, int]] = {}
        results: Dict[int, dict] = {}
        sent_at: Dict[int, float] = {}
        self.last_wall_s = {}
        while pending or inflight:
            while pending and idle:
                worker = idle.popleft()
                shard = pending.popleft()
                self._req += 1
                self._send(
                    worker, ("shard", self._gen, self._req, shard, epsilon, max_rounds)
                )
                inflight[worker] = (self._req, shard)
                sent_at[worker] = time.perf_counter()
            ready = mp_connection.wait(
                [self._conns[w] for w in inflight], timeout=self.timeout_s
            )
            if not ready:
                self._broken = True
                raise WorkerError(
                    "worker-timeout",
                    f"no reply within {self.timeout_s:.1f}s "
                    f"({len(inflight)} shard solves outstanding)",
                )
            for conn in ready:
                worker = self._conns.index(conn)
                req, shard = inflight.pop(worker)
                results[shard] = self._recv(worker, req)
                self.last_wall_s[worker] = self.last_wall_s.get(worker, 0.0) + (
                    time.perf_counter() - sent_at.pop(worker)
                )
                idle.append(worker)
        return results

    def solve_rows(
        self,
        rows: np.ndarray,
        lam_idx: np.ndarray,
        lam_vals: np.ndarray,
        cap_idx: np.ndarray,
        cap_vals: np.ndarray,
        epsilon: float,
        max_rounds: int,
    ) -> dict:
        """Dispatch one contested-rows re-solve to an idle worker.

        ``lam_idx/lam_vals`` patch the published ``lam0`` to the current
        merged λ̂ (both directions — CS-1 repair lowers prices);
        ``cap_idx/cap_vals`` patch ``capacity`` to the remaining
        capacities.  Oversized payloads raise ``payload-too-large``
        without breaking the pool.
        """
        if self._closed or not self._started or self._broken:
            raise WorkerError("pool-closed", "pool is not running")
        nbytes = sum(
            int(np.asarray(a).nbytes)
            for a in (rows, lam_idx, lam_vals, cap_idx, cap_vals)
        )
        if nbytes > _MAX_PIPE_BYTES:
            raise WorkerError(
                "payload-too-large",
                f"contested-rows payload is {nbytes} bytes "
                f"(limit {_MAX_PIPE_BYTES})",
            )
        worker = self._req % len(self._conns)
        self._req += 1
        self._send(
            worker,
            (
                "rows",
                self._gen,
                self._req,
                rows,
                lam_idx,
                lam_vals,
                cap_idx,
                cap_vals,
                epsilon,
                max_rounds,
            ),
        )
        ready = mp_connection.wait([self._conns[worker]], timeout=self.timeout_s)
        if not ready:
            self._broken = True
            raise WorkerError(
                "worker-timeout", f"no reply within {self.timeout_s:.1f}s"
            )
        return self._recv(worker, self._req)

    # -- plumbing ------------------------------------------------------
    def _send(self, worker: int, msg: tuple) -> None:
        try:
            self._conns[worker].send(msg)
        except Exception as exc:
            self._broken = True
            raise WorkerError("worker-crash", f"pipe send failed: {exc}") from exc

    def _recv(self, worker: int, expect_req: int) -> dict:
        try:
            msg = self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            self._broken = True
            raise WorkerError(
                "worker-crash", f"worker {worker} died mid-solve"
            ) from exc
        req, status, payload = msg
        if req != expect_req:
            self._broken = True
            raise WorkerError(
                "worker-desync", f"expected reply {expect_req}, got {req}"
            )
        if status != "ok":
            self._broken = True
            raise WorkerError("worker-error", str(payload))
        return payload

    # -- test instrumentation ------------------------------------------
    def inject_crash(self, worker: int = 0) -> None:
        """Hard-kill a worker so the next solve exercises the crash path."""
        self._conns[worker].send(("_crash",))
        self._procs[worker].join(timeout=5.0)

    def inject_delay(self, worker: int = 0, seconds: float = 1.0) -> None:
        """Stall a worker's next reply so a short timeout trips."""
        self._conns[worker].send(("_sleep", float(seconds)))
