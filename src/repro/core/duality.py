"""Dual problem, complementary slackness, and optimality certificates.

The dual of the slot ILP (paper eq. (5)) is

    min  Σ_u λ_u B(u) + Σ_{d,c} η_d^{(c)}
    s.t. λ_u + η_d^{(c)} ≥ v^{(c)}(d) − w_{u→d}   on every edge
         λ, η ≥ 0

Theorem 1 says the auction's final assignment and prices satisfy the
three complementary-slackness (CS) conditions of the primal/dual pair,
certifying optimality.  This module re-checks those conditions on any
:class:`~repro.core.result.ScheduleResult` and computes the duality gap;
with bidding increment ε the certificates hold within ``ε`` per request
(gap ≤ served·ε), which the checkers account for via their tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .problem import SchedulingProblem
from .result import ScheduleResult

__all__ = [
    "CertificateReport",
    "check_complementary_slackness",
    "dual_objective",
    "duality_gap",
    "verify_theorem1",
]


@dataclass
class CertificateReport:
    """Outcome of the optimality-certificate checks."""

    dual_feasible: bool
    cs_capacity: bool  # λ_u > 0 → uploader saturated
    cs_assignment: bool  # assigned edge → λ + η = v − w
    cs_request: bool  # η > 0 → request served
    gap: float
    violations: List[str] = field(default_factory=list)

    @property
    def optimal(self) -> bool:
        """All certificates hold (within the tolerance used to build this report)."""
        return (
            self.dual_feasible
            and self.cs_capacity
            and self.cs_assignment
            and self.cs_request
        )


def dual_objective(
    problem: SchedulingProblem,
    prices: Dict[int, float],
    etas: Dict[int, float],
) -> float:
    """Dual value Σ λ_u B(u) + Σ η_d."""
    lam_term = sum(
        prices.get(u, 0.0) * problem.capacity_of(u) for u in problem.uploaders()
    )
    eta_term = sum(etas.get(r, 0.0) for r in range(problem.n_requests))
    return lam_term + eta_term


def duality_gap(problem: SchedulingProblem, result: ScheduleResult) -> float:
    """Dual minus primal objective; ≥ 0 for feasible pairs, ≤ served·ε at optimum."""
    return dual_objective(problem, result.prices, result.etas) - result.welfare(problem)


def check_complementary_slackness(
    problem: SchedulingProblem,
    result: ScheduleResult,
    tol: float = 1e-7,
) -> CertificateReport:
    """Verify dual feasibility and the three CS conditions from Appendix A.

    ``tol`` must dominate the solver's ε (use ``n·ε`` to be safe for the
    aggregate gap; per-condition slack is ``ε``).
    """
    violations: List[str] = []
    prices = result.prices
    etas = result.etas
    loads = result.uploader_loads()

    # Dual feasibility: λ_u + η_r ≥ v − w on every edge.  Edges to
    # zero-capacity uploaders are skipped: λ_u·B(u) = 0 there, so the
    # dual can raise λ_u for free and the constraint never binds.
    dual_feasible = True
    for r in range(problem.n_requests):
        candidates = problem.candidates_of(r)
        if len(candidates) == 0:
            continue
        values = problem.edge_values_of(r)
        usable = np.array(
            [problem.capacity_of(int(u)) > 0 for u in candidates], dtype=bool
        )
        if not usable.any():
            continue
        lam = np.array([prices.get(int(u), 0.0) for u in candidates[usable]])
        slack = lam + etas.get(r, 0.0) - values[usable]
        worst = float(slack.min())
        if worst < -tol:
            dual_feasible = False
            violations.append(
                f"dual infeasible at request {r}: min slack {worst:.3e}"
            )

    # CS 1: λ_u > 0 → uploader fully loaded.
    cs_capacity = True
    for u in problem.uploaders():
        lam_u = prices.get(u, 0.0)
        if lam_u > tol and loads.get(u, 0) != problem.capacity_of(u):
            cs_capacity = False
            violations.append(
                f"uploader {u}: λ={lam_u:.3e} but load "
                f"{loads.get(u, 0)}/{problem.capacity_of(u)}"
            )

    # CS 2: assigned edge → λ_u + η_r = v − w.
    cs_assignment = True
    for r, uploader in result.assignment.items():
        if uploader is None:
            continue
        value = problem.edge_value(r, uploader)
        resid = prices.get(uploader, 0.0) + etas.get(r, 0.0) - value
        if abs(resid) > tol:
            cs_assignment = False
            violations.append(
                f"request {r}→{uploader}: λ+η−(v−w) = {resid:.3e}"
            )

    # CS 3: η_r > 0 → request served.
    cs_request = True
    for r in range(problem.n_requests):
        if etas.get(r, 0.0) > tol and result.assignment.get(r) is None:
            cs_request = False
            violations.append(
                f"request {r}: η={etas.get(r, 0.0):.3e} but unserved"
            )

    return CertificateReport(
        dual_feasible=dual_feasible,
        cs_capacity=cs_capacity,
        cs_assignment=cs_assignment,
        cs_request=cs_request,
        gap=duality_gap(problem, result),
        violations=violations,
    )


def verify_theorem1(
    problem: SchedulingProblem,
    result: ScheduleResult,
    epsilon: float,
    tol: float = 1e-9,
) -> CertificateReport:
    """Check Theorem 1's conclusion for an auction run with increment ``epsilon``.

    Uses a tolerance of ``epsilon + tol`` per condition and additionally
    asserts the duality gap lies in ``[-tol, served·ε + tol]``.
    """
    result.check_feasible(problem)
    report = check_complementary_slackness(problem, result, tol=epsilon + tol)
    served = result.n_served()
    if not (-tol <= report.gap <= served * epsilon + tol):
        report.violations.append(
            f"duality gap {report.gap:.3e} outside [0, served·ε = {served * epsilon:.3e}]"
        )
        report.cs_assignment = False
    return report
