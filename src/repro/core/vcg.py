"""VCG payments for the chunk-scheduling market (truthfulness extension).

The paper's conclusion announces ongoing work on "enforc[ing]
truthfulness of the bids in cases of selfish peers that may manipulate
the mechanism".  This module implements the classical answer: charge
each downstream peer its Vickrey-Clarke-Groves payment — the externality
its presence imposes on everyone else:

    p_d = W(others | d absent) − W(others | d present)

where ``W`` is the optimal social welfare of the slot ILP restricted to
the *other* peers' requests.  Under VCG, reporting true valuations is a
dominant strategy (numerically verified in the tests and the strategic
ablation), payments are non-negative, and participation is individually
rational.

Payments are computed with the exact Hungarian oracle (one solve per
paying peer plus one base solve) — this is a per-slot mechanism layer on
top of the auction, not a replacement for it: the auction still finds
the allocation distributedly; VCG prices what winners owe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from .exact import solve_hungarian
from .problem import SchedulingProblem
from .result import ScheduleResult

__all__ = ["VCGOutcome", "vcg_payments"]

Solver = Callable[[SchedulingProblem], ScheduleResult]


@dataclass
class VCGOutcome:
    """Allocation plus per-peer VCG payments and utilities."""

    result: ScheduleResult
    payments: Dict[int, float] = field(default_factory=dict)  # peer → p_d ≥ 0
    gross_utilities: Dict[int, float] = field(default_factory=dict)  # Σ (v − w) won

    def payment_of(self, peer: int) -> float:
        return self.payments.get(peer, 0.0)

    def net_utility_of(self, peer: int) -> float:
        """Quasilinear utility: value received minus payment charged."""
        return self.gross_utilities.get(peer, 0.0) - self.payments.get(peer, 0.0)

    def total_payments(self) -> float:
        return sum(self.payments.values())


def _others_welfare(
    problem: SchedulingProblem, result: ScheduleResult, peer: int
) -> float:
    """Welfare accruing to peers other than ``peer`` in ``result``."""
    indices, uploaders = result.served_pairs()
    if not len(indices):
        return 0.0
    owners = problem.request_peer_array()[indices]
    values = problem.edge_value_pairs(indices, uploaders)
    return float(values[owners != peer].sum())


def vcg_payments(
    problem: SchedulingProblem,
    solver: Optional[Solver] = None,
    base_result: Optional[ScheduleResult] = None,
) -> VCGOutcome:
    """Compute the VCG outcome for one slot.

    Parameters
    ----------
    problem:
        The slot ILP with (reported) valuations.
    solver:
        Welfare-maximizing solver; defaults to the exact Hungarian
        oracle.  VCG's truthfulness guarantee requires exact
        maximization of reported welfare — an ε-auction solver gives an
        ε-approximate mechanism.
    base_result:
        Optional precomputed allocation for ``problem`` (must come from
        the same solver).
    """
    solve = solver or solve_hungarian
    base = base_result if base_result is not None else solve(problem)

    indices, uploaders = base.served_pairs()
    gross: Dict[int, float] = {}
    if len(indices):
        owners = problem.request_peer_array()[indices]
        values = problem.edge_value_pairs(indices, uploaders)
        uniq, inverse = np.unique(owners, return_inverse=True)
        sums = np.bincount(inverse, weights=values)
        gross = dict(zip(uniq.tolist(), sums.tolist()))

    payments: Dict[int, float] = {}
    for peer in gross:
        reduced, _ = problem.without_peer(peer)
        without = solve(reduced).welfare(reduced)
        with_present = _others_welfare(problem, base, peer)
        payments[peer] = max(0.0, without - with_present)

    return VCGOutcome(result=base, payments=payments, gross_utilities=gross)
