"""Schedule results: assignments, prices, and feasibility checks.

Every scheduler returns a :class:`ScheduleResult`.  For the auction it
also carries the dual solution (bandwidth prices ``λ_u`` and request
utilities ``η_d^{(c)}``) so Theorem 1's optimality certificates can be
checked (:mod:`repro.core.duality`).

The result is *array-native*: the source of truth is three numpy
columns (request ids, assigned uploader ids, served mask) plus the dual
vectors, built either straight from solver arrays
(:meth:`ScheduleResult.from_arrays` — no per-request Python work) or by
converting the classic dicts once at construction.  The historical dict
API (``result.assignment`` / ``result.prices`` / ``result.etas``) is
preserved as lazily materialized, cached read-only views, so every
consumer written against the dict interface keeps working unchanged;
hot paths use the array accessors (:meth:`assignment_array`,
:meth:`served_pairs`, :meth:`served_columns`) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, Mapping, Optional, Tuple

import numpy as np

from .problem import SchedulingProblem

__all__ = ["ScheduleResult", "SolverStats", "decay_prices"]

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=float)

#: Sentinel uploader id for unserved requests in :meth:`assignment_array`.
UNSERVED = -1


def decay_prices(
    ids: np.ndarray,
    values: np.ndarray,
    factor: float,
    floor: float = 0.0,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Geometrically decayed warm-start prices; ``None`` when all cold.

    Carrying last slot's final λ verbatim across the boundary overprices
    uploaders whose scarcity was transient — the next auction then burns
    rounds walking them back down (and retires rows that would have won
    at equilibrium).  Scaling by ``factor`` and flushing entries below
    ``floor`` to exactly 0 keeps the persistent component of the price
    field while forgetting the noise.  ``factor=1.0`` is the legacy raw
    carry; a result of all-zero prices returns ``None`` so the caller
    can fall back to a plain cold start.
    """
    if not 0.0 <= factor <= 1.0:
        raise ValueError(f"decay factor must be in [0, 1], got {factor!r}")
    if factor == 1.0 and floor <= 0.0:
        return ids, values
    decayed = values * factor
    if floor > 0.0:
        decayed[decayed < floor] = 0.0
    if not decayed.any():
        return None
    return ids, decayed


class _SyncedDict(dict):
    """A dict view that tells its owner when it is mutated.

    The result's arrays stay the source of truth for the hot paths; a
    consumer that mutates the historical dict API (tests patch
    assignments in place) flips a dirty flag so the arrays are rebuilt
    from the dict before the next array access.
    """

    __slots__ = ("_mark_dirty",)

    def __init__(self, data, mark_dirty) -> None:
        super().__init__(data)
        self._mark_dirty = mark_dirty

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._mark_dirty()

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._mark_dirty()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._mark_dirty()

    def __ior__(self, other):
        out = super().__ior__(other)
        self._mark_dirty()
        return out

    def setdefault(self, key, default=None):
        out = super().setdefault(key, default)
        self._mark_dirty()
        return out

    def pop(self, *args):
        out = super().pop(*args)
        self._mark_dirty()
        return out

    def popitem(self):
        out = super().popitem()
        self._mark_dirty()
        return out

    def clear(self) -> None:
        super().clear()
        self._mark_dirty()


@dataclass
class SolverStats:
    """Work counters a solver reports for benchmarking and diagnostics."""

    rounds: int = 0
    bids_submitted: int = 0
    bids_rejected: int = 0
    evictions: int = 0
    price_updates: int = 0
    converged: bool = True

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Combine counters from a sub-run (e.g., ε-scaling phases)."""
        return SolverStats(
            rounds=self.rounds + other.rounds,
            bids_submitted=self.bids_submitted + other.bids_submitted,
            bids_rejected=self.bids_rejected + other.bids_rejected,
            evictions=self.evictions + other.evictions,
            price_updates=self.price_updates + other.price_updates,
            converged=self.converged and other.converged,
        )


class ScheduleResult:
    """Outcome of scheduling one slot.

    Attributes
    ----------
    assignment:
        request index → uploader peer id (or ``None`` when unserved).
        A lazily built dict view over the backing arrays.  In-place
        mutations are supported for compatibility: they mark the view
        dirty and the arrays are rebuilt from it on the next array
        access.
    prices:
        Dual variables ``λ_u`` per uploader (zero for non-auction
        solvers).  Lazy dict view with the same mutation write-back.
    etas:
        Dual variables ``η_d^{(c)}`` per request index (auction only).
        Lazy dict view with the same mutation write-back.
    stats:
        Work counters.
    """

    __slots__ = (
        "_req_ids",
        "_assigned",
        "_served",
        "_price_ids",
        "_price_vals",
        "_eta_ids",
        "_eta_vals",
        "stats",
        "_assignment_dict",
        "_prices_dict",
        "_etas_dict",
        "_dirty",
    )

    def __init__(
        self,
        assignment: Optional[Mapping[int, Optional[int]]] = None,
        prices: Optional[Mapping[int, float]] = None,
        etas: Optional[Mapping[int, float]] = None,
        stats: Optional[SolverStats] = None,
    ) -> None:
        assignment = {} if assignment is None else assignment
        n = len(assignment)
        self._req_ids = np.fromiter(assignment.keys(), dtype=np.int64, count=n)
        self._served = np.fromiter(
            (u is not None for u in assignment.values()), dtype=bool, count=n
        )
        self._assigned = np.fromiter(
            (UNSERVED if u is None else u for u in assignment.values()),
            dtype=np.int64,
            count=n,
        )
        self._price_ids, self._price_vals = self._split_mapping(prices)
        self._eta_ids, self._eta_vals = self._split_mapping(etas)
        self.stats = stats if stats is not None else SolverStats()
        self._assignment_dict: Optional[Dict[int, Optional[int]]] = None
        self._prices_dict: Optional[Dict[int, float]] = None
        self._etas_dict: Optional[Dict[int, float]] = None
        self._dirty = False

    @staticmethod
    def _split_mapping(
        mapping: Optional[Mapping[int, float]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not mapping:
            return _EMPTY_INT, _EMPTY_FLOAT
        n = len(mapping)
        ids = np.fromiter(mapping.keys(), dtype=np.int64, count=n)
        vals = np.fromiter(mapping.values(), dtype=float, count=n)
        return ids, vals

    @classmethod
    def from_arrays(
        cls,
        assigned_index: np.ndarray,
        uploaders: np.ndarray,
        prices: Optional[np.ndarray] = None,
        etas: Optional[np.ndarray] = None,
        stats: Optional[SolverStats] = None,
    ) -> "ScheduleResult":
        """Build a result straight from solver arrays (no Python loops).

        Parameters
        ----------
        assigned_index:
            ``(R,)`` int array: position ``r`` holds the *index into
            uploaders* serving request ``r``, or ``-1`` when unserved.
        uploaders:
            ``(U,)`` uploader peer ids (the solver's stable index order).
        prices:
            Optional ``(U,)`` float ``λ`` aligned with ``uploaders``.
        etas:
            Optional ``(R,)`` float ``η`` per request index.
        """
        assigned_index = np.asarray(assigned_index, dtype=np.int64)
        uploaders = np.asarray(uploaders, dtype=np.int64)
        n = len(assigned_index)
        result = cls.__new__(cls)
        result._req_ids = np.arange(n, dtype=np.int64)
        result._served = assigned_index >= 0
        if len(uploaders):
            result._assigned = np.where(
                result._served,
                uploaders[np.where(result._served, assigned_index, 0)],
                UNSERVED,
            )
        else:
            # No uploaders at all ⇒ nothing can be served (a request-only
            # problem); the gather above would index an empty array.
            result._assigned = np.full(n, UNSERVED, dtype=np.int64)
        result._price_ids = uploaders
        result._price_vals = (
            np.zeros(len(uploaders), dtype=float)
            if prices is None
            else np.asarray(prices, dtype=float)
        )
        if etas is None:
            result._eta_ids, result._eta_vals = _EMPTY_INT, _EMPTY_FLOAT
        else:
            result._eta_ids = np.arange(n, dtype=np.int64)
            result._eta_vals = np.asarray(etas, dtype=float)
        result.stats = stats if stats is not None else SolverStats()
        result._assignment_dict = None
        result._prices_dict = None
        result._etas_dict = None
        result._dirty = False
        return result

    @classmethod
    def from_assignment_ids(
        cls,
        assigned_ids: np.ndarray,
        prices: Optional[Mapping[int, float]] = None,
        etas: Optional[Mapping[int, float]] = None,
        stats: Optional[SolverStats] = None,
    ) -> "ScheduleResult":
        """Build a result from a dense uploader-id column.

        ``assigned_ids`` is ``(R,)``: position ``r`` holds the uploader
        *peer id* serving request ``r``, or ``-1`` when unserved.  The
        array is taken over as backing storage — do not mutate it after.
        """
        assigned_ids = np.asarray(assigned_ids, dtype=np.int64)
        result = cls.__new__(cls)
        result._req_ids = np.arange(len(assigned_ids), dtype=np.int64)
        result._served = assigned_ids != UNSERVED
        result._assigned = assigned_ids
        result._price_ids, result._price_vals = cls._split_mapping(prices)
        result._eta_ids, result._eta_vals = cls._split_mapping(etas)
        result.stats = stats if stats is not None else SolverStats()
        result._assignment_dict = None
        result._prices_dict = None
        result._etas_dict = None
        result._dirty = False
        return result

    # ------------------------------------------------------------------
    # Dict views (compatibility API; lazily materialized, cached)
    # ------------------------------------------------------------------
    def _mark_dirty(self) -> None:
        self._dirty = True

    def _sync(self) -> None:
        """Rebuild the arrays after a consumer mutated a dict view."""
        if not self._dirty:
            return
        if self._assignment_dict is not None:
            d = self._assignment_dict
            n = len(d)
            self._req_ids = np.fromiter(d.keys(), dtype=np.int64, count=n)
            self._served = np.fromiter(
                (u is not None for u in d.values()), dtype=bool, count=n
            )
            self._assigned = np.fromiter(
                (UNSERVED if u is None else u for u in d.values()),
                dtype=np.int64,
                count=n,
            )
        if self._prices_dict is not None:
            self._price_ids, self._price_vals = self._split_mapping(self._prices_dict)
        if self._etas_dict is not None:
            self._eta_ids, self._eta_vals = self._split_mapping(self._etas_dict)
        self._dirty = False

    @property
    def assignment(self) -> Dict[int, Optional[int]]:
        if self._assignment_dict is None:
            self._assignment_dict = _SyncedDict(
                {
                    r: (u if s else None)
                    for r, u, s in zip(
                        self._req_ids.tolist(),
                        self._assigned.tolist(),
                        self._served.tolist(),
                    )
                },
                self._mark_dirty,
            )
        return self._assignment_dict

    @property
    def prices(self) -> Dict[int, float]:
        if self._prices_dict is None:
            self._prices_dict = _SyncedDict(
                dict(zip(self._price_ids.tolist(), self._price_vals.tolist())),
                self._mark_dirty,
            )
        return self._prices_dict

    @property
    def etas(self) -> Dict[int, float]:
        if self._etas_dict is None:
            self._etas_dict = _SyncedDict(
                dict(zip(self._eta_ids.tolist(), self._eta_vals.tolist())),
                self._mark_dirty,
            )
        return self._etas_dict

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScheduleResult(n={len(self._req_ids)}, "
            f"served={self.n_served()}, stats={self.stats!r})"
        )

    # ------------------------------------------------------------------
    # Array views (hot-path API)
    # ------------------------------------------------------------------
    def request_indices(self) -> np.ndarray:
        """Request ids, aligned with :meth:`assignment_array` (do not mutate)."""
        self._sync()
        return self._req_ids

    def assignment_array(self) -> np.ndarray:
        """Uploader peer id per request, ``-1`` for unserved (do not mutate).

        Aligned with :meth:`request_indices`; for solver-built results
        that is simply ``0..R-1``.
        """
        self._sync()
        return self._assigned

    def served_mask(self) -> np.ndarray:
        """Bool mask over :meth:`request_indices` (do not mutate)."""
        self._sync()
        return self._served

    def served_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(request_ids, uploader_ids)`` of the served requests."""
        self._sync()
        return self._req_ids[self._served], self._assigned[self._served]

    def price_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(uploader_ids, λ values)`` (do not mutate)."""
        self._sync()
        return self._price_ids, self._price_vals

    def eta_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(request_ids, η values)`` (do not mutate)."""
        self._sync()
        return self._eta_ids, self._eta_vals

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def welfare(self, problem: SchedulingProblem) -> float:
        """Social welfare Σ (v − w) over served requests."""
        return problem.welfare_pairs(*self.served_pairs())

    def n_served(self) -> int:
        """Number of requests that received bandwidth."""
        self._sync()
        return int(self._served.sum())

    def n_unserved(self) -> int:
        self._sync()
        return len(self._req_ids) - self.n_served()

    def served_columns(
        self, problem: SchedulingProblem
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized served-edge columns.

        Returns ``(request_ids, downstream_peers, uploader_ids,
        net_utilities)`` — everything :meth:`served_edges` yields except
        the (arbitrarily hashable, hence non-columnar) chunk keys.
        Raises ``KeyError`` if a served request is assigned to a
        non-candidate, like :meth:`SchedulingProblem.edge_value` would.
        """
        indices, uploaders = self.served_pairs()
        downstream = problem.request_peer_array()[indices]
        values = problem.edge_value_pairs(indices, uploaders)
        return indices, downstream, uploaders, values

    def served_edges(
        self, problem: SchedulingProblem
    ) -> Iterator[Tuple[int, int, Hashable, int, float]]:
        """Yield ``(request_index, downstream, chunk, uploader, net_utility)``."""
        indices, downstream, uploaders, values = self.served_columns(problem)
        for r, d, u, v in zip(
            indices.tolist(), downstream.tolist(), uploaders.tolist(), values.tolist()
        ):
            yield (r, d, problem.chunk_of(r), u, v)

    def uploader_loads(self) -> Dict[int, int]:
        """Chunks assigned per uploader."""
        self._sync()
        ids, counts = np.unique(self._assigned[self._served], return_counts=True)
        return dict(zip(ids.tolist(), counts.tolist()))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_feasible(self, problem: SchedulingProblem) -> None:
        """Raise ``AssertionError`` if the assignment violates the ILP constraints."""
        self._sync()
        n = problem.n_requests
        covered = (
            len(self._req_ids) == n
            and np.array_equal(np.sort(self._req_ids), np.arange(n))
        )
        if not covered:
            raise AssertionError(
                "assignment must cover every request index exactly once"
            )
        indices, uploaders = self.served_pairs()
        candidate_ok = problem.has_edge_pairs(indices, uploaders)
        if not candidate_ok.all():
            where = int(np.nonzero(~candidate_ok)[0][0])
            raise AssertionError(
                f"request {int(indices[where])} assigned to non-candidate "
                f"{int(uploaders[where])}"
            )
        for uploader, load in self.uploader_loads().items():
            cap = problem.capacity_of(uploader)
            if load > cap:
                raise AssertionError(
                    f"uploader {uploader} over capacity: {load} > {cap}"
                )

    def summary(self, problem: SchedulingProblem) -> str:
        """Human-readable one-liner."""
        return (
            f"welfare={self.welfare(problem):.3f} served={self.n_served()}"
            f"/{len(self._req_ids)} rounds={self.stats.rounds}"
            f" converged={self.stats.converged}"
        )
