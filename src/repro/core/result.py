"""Schedule results: assignments, prices, and feasibility checks.

Every scheduler returns a :class:`ScheduleResult`.  For the auction it
also carries the dual solution (bandwidth prices ``λ_u`` and request
utilities ``η_d^{(c)}``) so Theorem 1's optimality certificates can be
checked (:mod:`repro.core.duality`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, Optional, Tuple

from .problem import SchedulingProblem

__all__ = ["ScheduleResult", "SolverStats"]


@dataclass
class SolverStats:
    """Work counters a solver reports for benchmarking and diagnostics."""

    rounds: int = 0
    bids_submitted: int = 0
    bids_rejected: int = 0
    evictions: int = 0
    price_updates: int = 0
    converged: bool = True

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Combine counters from a sub-run (e.g., ε-scaling phases)."""
        return SolverStats(
            rounds=self.rounds + other.rounds,
            bids_submitted=self.bids_submitted + other.bids_submitted,
            bids_rejected=self.bids_rejected + other.bids_rejected,
            evictions=self.evictions + other.evictions,
            price_updates=self.price_updates + other.price_updates,
            converged=self.converged and other.converged,
        )


@dataclass
class ScheduleResult:
    """Outcome of scheduling one slot.

    Attributes
    ----------
    assignment:
        request index → uploader peer id (or ``None`` when unserved).
    prices:
        Dual variables ``λ_u`` per uploader (zero for non-auction solvers).
    etas:
        Dual variables ``η_d^{(c)}`` per request index (auction only).
    stats:
        Work counters.
    """

    assignment: Dict[int, Optional[int]]
    prices: Dict[int, float] = field(default_factory=dict)
    etas: Dict[int, float] = field(default_factory=dict)
    stats: SolverStats = field(default_factory=SolverStats)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def welfare(self, problem: SchedulingProblem) -> float:
        """Social welfare Σ (v − w) over served requests."""
        return problem.welfare(self.assignment)

    def n_served(self) -> int:
        """Number of requests that received bandwidth."""
        return sum(1 for u in self.assignment.values() if u is not None)

    def n_unserved(self) -> int:
        return len(self.assignment) - self.n_served()

    def served_edges(
        self, problem: SchedulingProblem
    ) -> Iterator[Tuple[int, int, Hashable, int, float]]:
        """Yield ``(request_index, downstream, chunk, uploader, net_utility)``."""
        for index, uploader in self.assignment.items():
            if uploader is None:
                continue
            request = problem.request(index)
            yield (
                index,
                request.peer,
                request.chunk,
                uploader,
                problem.edge_value(index, uploader),
            )

    def uploader_loads(self) -> Dict[int, int]:
        """Chunks assigned per uploader."""
        loads: Dict[int, int] = {}
        for uploader in self.assignment.values():
            if uploader is not None:
                loads[uploader] = loads.get(uploader, 0) + 1
        return loads

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_feasible(self, problem: SchedulingProblem) -> None:
        """Raise ``AssertionError`` if the assignment violates the ILP constraints."""
        if set(self.assignment) != set(range(problem.n_requests)):
            raise AssertionError(
                "assignment must cover every request index exactly once"
            )
        for index, uploader in self.assignment.items():
            if uploader is None:
                continue
            candidates = problem.candidates_of(index)
            if uploader not in candidates:
                raise AssertionError(
                    f"request {index} assigned to non-candidate {uploader}"
                )
        for uploader, load in self.uploader_loads().items():
            cap = problem.capacity_of(uploader)
            if load > cap:
                raise AssertionError(
                    f"uploader {uploader} over capacity: {load} > {cap}"
                )

    def summary(self, problem: SchedulingProblem) -> str:
        """Human-readable one-liner."""
        return (
            f"welfare={self.welfare(problem):.3f} served={self.n_served()}"
            f"/{len(self.assignment)} rounds={self.stats.rounds}"
            f" converged={self.stats.converged}"
        )
