"""The per-slot chunk scheduling problem (Section III).

A :class:`SchedulingProblem` is one time slot's social-welfare ILP:

* a set of *requests* ``(I_d, c)`` — peer ``d`` wants chunk ``c`` and
  values it ``v^{(c)}(d)``;
* for each request, the *candidate* upstream peers that cache ``c``
  (``∪_n N_n^{(c)}(d)``) with the network cost ``w_{u→d}`` on each edge;
* per-uploader capacities ``B(u)`` (chunks per slot).

The edge weight is the net utility ``v^{(c)}(d) − w_{u→d}``.  Solvers
(:mod:`repro.core.auction`, :mod:`repro.core.exact`,
:mod:`repro.core.baselines`) consume this object; they may not modify it.

Construction comes in two flavours:

* :meth:`SchedulingProblem.add_request` — one request at a time, fully
  validated per call.  The reference path, used by tests, tooling and
  hand-built instances.
* :meth:`SchedulingProblem.add_requests_batch` / :class:`ProblemBuilder`
  — a whole block of requests as flat CSR arrays, validated once with
  vectorized checks.  The per-slot hot path of
  :meth:`repro.p2p.system.P2PSystem.build_problem` uses this; a batch of
  tens of thousands of requests costs a handful of numpy passes instead
  of one Python dict walk per request.

Two read-only array views serve vectorized solvers: the padded
:meth:`SchedulingProblem.dense` ``(R, K_max)`` matrices and the flat
:meth:`SchedulingProblem.csr` arrays.  The CSR view is the one to prefer
when candidate counts are skewed — its size is the edge count ``E``,
not ``R × K_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ChunkRequest",
    "CSRView",
    "DenseView",
    "ProblemBuilder",
    "SchedulingProblem",
    "random_problem",
]

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=float)


@dataclass(frozen=True)
class ChunkRequest:
    """One download request ``(I_d, c)`` with the requester's valuation."""

    peer: int
    chunk: Hashable
    valuation: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.valuation):
            raise ValueError(f"valuation must be finite, got {self.valuation!r}")

    @property
    def key(self) -> Tuple[int, Hashable]:
        """The request identity (I_d, c)."""
        return (self.peer, self.chunk)


@dataclass(frozen=True)
class DenseView:
    """Padded numpy view of a problem for vectorized solvers.

    Attributes
    ----------
    values:
        ``(R, K)`` array of edge net utilities ``v − w``; ``-inf`` padding.
    uploader_index:
        ``(R, K)`` array of uploader *indices* (into :attr:`uploaders`);
        ``-1`` padding.
    uploaders:
        Uploader peer ids, position = index used above.
    capacity:
        ``(U,)`` int array of ``B(u)`` aligned with :attr:`uploaders`.
    """

    values: np.ndarray
    uploader_index: np.ndarray
    uploaders: np.ndarray
    capacity: np.ndarray

    @property
    def n_requests(self) -> int:
        return self.values.shape[0]

    @property
    def max_candidates(self) -> int:
        return self.values.shape[1]


@dataclass(frozen=True)
class CSRView:
    """Flat (CSR) numpy view of a problem for vectorized solvers.

    Request ``r``'s candidate edges occupy positions
    ``indptr[r]:indptr[r+1]`` of the flat arrays, in candidate order.
    Unlike :class:`DenseView` there is no ``(R, K_max)`` padding, so the
    memory/compute footprint is the edge count ``E`` even when candidate
    counts are heavily skewed.

    Attributes
    ----------
    values:
        ``(E,)`` float array of edge net utilities ``v − w``.
    uploader_index:
        ``(E,)`` int array of uploader *indices* (into :attr:`uploaders`).
    indptr:
        ``(R + 1,)`` int array of row boundaries.
    uploaders:
        Uploader peer ids, position = index used above.
    capacity:
        ``(U,)`` int array of ``B(u)`` aligned with :attr:`uploaders`.
    """

    values: np.ndarray
    uploader_index: np.ndarray
    indptr: np.ndarray
    uploaders: np.ndarray
    capacity: np.ndarray

    @property
    def n_requests(self) -> int:
        return len(self.indptr) - 1

    @property
    def n_edges(self) -> int:
        return len(self.values)

    def counts(self) -> np.ndarray:
        """Candidate count per request, ``(R,)``."""
        return np.diff(self.indptr)

    def row(self, index: int) -> slice:
        """Slice of the flat arrays holding request ``index``'s edges."""
        return slice(int(self.indptr[index]), int(self.indptr[index + 1]))

    def edge_rows(self) -> np.ndarray:
        """Request index of every edge, ``(E,)``; cached, do not mutate."""
        cached = getattr(self, "_edge_rows", None)
        if cached is None:
            cached = np.repeat(
                np.arange(self.n_requests, dtype=np.int64), self.counts()
            )
            object.__setattr__(self, "_edge_rows", cached)
        return cached

    def uploader_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """Reverse CSR index: uploader → incident request rows; cached.

        Returns ``(rev_indptr, rev_rows)`` where the requests holding an
        edge at uploader index ``u`` are
        ``rev_rows[rev_indptr[u]:rev_indptr[u+1]]`` (ascending row order
        within each uploader, one entry per edge — candidate uploaders
        are unique within a request, so rows never repeat per uploader).
        The event-driven auction uses this to re-evaluate only the
        requests incident to uploaders whose price changed.
        """
        cached = getattr(self, "_uploader_rows", None)
        if cached is None:
            n_uploaders = len(self.uploaders)
            if self.n_edges:
                cached = self._transpose_index(n_uploaders)
            else:
                cached = (np.zeros(n_uploaders + 1, dtype=np.int64), _EMPTY_INT)
            object.__setattr__(self, "_uploader_rows", cached)
        return cached

    def _transpose_index(self, n_uploaders: int) -> Tuple[np.ndarray, np.ndarray]:
        """Build :meth:`uploader_rows` — scipy's C transpose when available.

        ``csr → csc`` conversion is exactly the stable counting sort the
        reverse index needs (row order preserved within each column) and
        runs ~8× faster than ``np.argsort(..., kind="stable")`` over the
        edge column; the numpy path keeps the module importable without
        scipy.
        """
        try:
            from scipy import sparse
        except ImportError:  # covered: test_csr_reverse_index masks scipy
            rev_indptr = np.zeros(n_uploaders + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(self.uploader_index, minlength=n_uploaders),
                out=rev_indptr[1:],
            )
            order = np.argsort(self.uploader_index, kind="stable")
            return rev_indptr, self.edge_rows()[order]
        matrix = sparse.csr_matrix(
            (
                np.ones(self.n_edges, dtype=np.int8),
                self.uploader_index,
                self.indptr,
            ),
            shape=(self.n_requests, n_uploaders),
        ).tocsc()
        return matrix.indptr.astype(np.int64), matrix.indices

    def to_dense(self) -> DenseView:
        """Expand to the padded :class:`DenseView` (round-trip helper)."""
        n = self.n_requests
        counts = self.counts()
        k = int(counts.max()) if n else 0
        values = np.full((n, max(k, 1)), -np.inf, dtype=float)
        uploader_index = np.full((n, max(k, 1)), -1, dtype=np.int64)
        if self.n_edges:
            rows = np.repeat(np.arange(n, dtype=np.int64), counts)
            cols = np.arange(self.n_edges, dtype=np.int64) - np.repeat(
                self.indptr[:-1], counts
            )
            values[rows, cols] = self.values
            uploader_index[rows, cols] = self.uploader_index
        return DenseView(
            values=values,
            uploader_index=uploader_index,
            uploaders=self.uploaders,
            capacity=self.capacity,
        )


class SchedulingProblem:
    """Immutable-after-build description of one slot's assignment problem.

    Build with :meth:`add_request` / :meth:`add_requests_batch` /
    :meth:`set_capacity`, then hand to a scheduler.  Request order is
    preserved and indexes results.

    Example
    -------
    >>> p = SchedulingProblem()
    >>> p.set_capacity(10, 1)
    >>> _ = p.add_request(peer=1, chunk="c0", valuation=5.0, candidates={10: 1.0})
    >>> p.n_requests, p.total_capacity()
    (1, 1)
    """

    def __init__(self) -> None:
        # Columnar request storage: one entry per request each.
        self._peers: List[int] = []
        self._chunks: List[Hashable] = []
        self._valuations: List[float] = []
        # Scalar blocks from add_requests_batch whose list forms have not
        # been materialized yet — batch producers hand numpy columns and
        # the hot consumers (csr(), request_peer_array) read them as
        # arrays, so the O(R) list round trip is deferred until a
        # per-request accessor actually asks for it.
        self._peer_pending: List[np.ndarray] = []
        self._val_pending: List[np.ndarray] = []
        self._n_pending_scalars = 0
        self._request_keys: set = set()
        self._keys_stale = False
        self._candidates: List[np.ndarray] = []  # uploader peer ids per request
        self._costs: List[np.ndarray] = []  # w_{u→d} aligned with candidates
        # Flat CSR blocks from add_requests_batch, not yet split into the
        # per-request view lists above; split lazily on first per-request
        # access so batch-built problems feed csr() without ever paying
        # for R slice objects.
        self._lazy_blocks: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        # (m, 2) int chunk-key blocks whose tuple forms have not been
        # materialized into _chunks yet — batch producers hand chunk
        # keys as arrays and most consumers (solvers, the transfer
        # epilogue) only ever read the array form.
        self._chunk_pending: List[np.ndarray] = []
        self._cap_dict: Dict[int, int] = {}
        # Trusted (ids, capacities) column pair from prime_capacities,
        # not yet materialized into the dict; csr() reads it directly so
        # batch producers skip both the dict build and the fromiters.
        self._cap_primed: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._edge_count = 0
        self._dense: Optional[DenseView] = None
        self._csr: Optional[CSRView] = None
        self._peer_arr: Optional[np.ndarray] = None
        self._chunk_arr: Optional[np.ndarray] = None

    def _invalidate(self) -> None:
        self._dense = None
        self._csr = None
        self._peer_arr = None
        self._chunk_arr = None

    @property
    def _capacity(self) -> Dict[int, int]:
        """The capacity dict, materializing a primed column pair lazily.

        After materialization the dict is the single source of truth
        again (a later ``set_capacity`` write lands in it), so the
        primed arrays are dropped.
        """
        primed = self._cap_primed
        if primed is not None:
            ids, caps = primed
            self._cap_dict.update(zip(ids.tolist(), caps.tolist()))
            self._cap_primed = None
        return self._cap_dict

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set_capacity(self, peer: int, capacity: int) -> None:
        """Declare upload capacity ``B(peer)`` in chunks per slot."""
        if capacity < 0 or int(capacity) != capacity:
            raise ValueError(f"capacity must be a non-negative int, got {capacity!r}")
        self._capacity[peer] = int(capacity)
        self._invalidate()

    def set_capacities_batch(
        self, peers: Sequence[int], capacities: Sequence[int]
    ) -> None:
        """Declare many capacities at once (vectorized :meth:`set_capacity`)."""
        ids = np.asarray(peers, dtype=np.int64)
        caps = np.asarray(capacities)
        if ids.shape != caps.shape or ids.ndim != 1:
            raise ValueError(
                f"peers and capacities must be 1-D and aligned, got shapes "
                f"{ids.shape} and {caps.shape}"
            )
        if caps.size:
            as_int = caps.astype(np.int64)
            if np.any(caps != as_int) or np.any(as_int < 0):
                bad = caps[(caps != as_int) | (as_int < 0)][0]
                raise ValueError(
                    f"capacity must be a non-negative int, got {bad!r}"
                )
            caps = as_int
        self._capacity.update(zip(ids.tolist(), caps.tolist()))
        self._invalidate()

    def prime_capacities(
        self, peers: np.ndarray, capacities: np.ndarray
    ) -> None:
        """Trusted bulk capacity declare from aligned id/value columns.

        The loop-free counterpart of :meth:`set_capacities_batch` for
        producers whose columns are invariant-checked elsewhere (the
        slot pipeline's store columns: unique ids, non-negative int
        capacities — pinned by the store consistency tests).  The
        arrays are copied and handed to :meth:`csr` verbatim, so the
        uploader/capacity columns come out byte-identical to the dict
        path while skipping both the dict build and the fromiters.
        Only legal on a problem with no capacities declared yet.
        """
        if self._cap_dict or self._cap_primed is not None:
            raise ValueError(
                "prime_capacities requires a problem with no declared "
                "capacities"
            )
        ids = np.ascontiguousarray(peers, dtype=np.int64)
        caps = np.ascontiguousarray(capacities, dtype=np.int64)
        if ids.shape != caps.shape or ids.ndim != 1:
            raise ValueError(
                f"peers and capacities must be 1-D and aligned, got shapes "
                f"{ids.shape} and {caps.shape}"
            )
        if ids is peers:
            ids = ids.copy()
        if caps is capacities:
            caps = caps.copy()
        self._cap_primed = (ids, caps)
        self._invalidate()

    def add_request(
        self,
        peer: int,
        chunk: Hashable,
        valuation: float,
        candidates: Dict[int, float],
    ) -> int:
        """Add request ``(peer, chunk)``; returns its index.

        ``candidates`` maps uploader peer id → network cost ``w_{u→d}``.
        Uploaders must have had capacity declared; the requester itself
        cannot be a candidate.  A request with no candidates is legal (it
        simply can never be served).
        """
        valuation = float(valuation)
        if not np.isfinite(valuation):
            raise ValueError(f"valuation must be finite, got {valuation!r}")
        self._materialize_scalars()
        self._ensure_keys()
        key = (peer, chunk)
        if key in self._request_keys:
            raise ValueError(f"duplicate request {key!r}")
        for uploader, cost in candidates.items():
            if uploader == peer:
                raise ValueError(f"peer {peer!r} cannot upload to itself")
            if uploader not in self._capacity:
                raise ValueError(
                    f"candidate uploader {uploader!r} has no declared capacity"
                )
            if not np.isfinite(cost) or cost < 0:
                raise ValueError(f"cost must be finite and >= 0, got {cost!r}")
        self._request_keys.add(key)
        self._peers.append(peer)
        self._chunks.append(chunk)
        self._valuations.append(valuation)
        uploaders = np.fromiter(candidates.keys(), dtype=np.int64, count=len(candidates))
        costs = np.fromiter(candidates.values(), dtype=float, count=len(candidates))
        self._materialize_views()
        self._candidates.append(uploaders)
        self._costs.append(costs)
        self._edge_count += len(uploaders)
        self._invalidate()
        return len(self._peers) - 1

    def add_requests_batch(
        self,
        peers: Sequence[int],
        chunks: Sequence[Hashable],
        valuations: Sequence[float],
        cand_uploaders: Sequence[int],
        cand_costs: Sequence[float],
        indptr: Sequence[int],
        validate: bool = True,
    ) -> range:
        """Append a block of requests from flat CSR arrays; returns their indices.

        Request ``i`` of the block is ``(peers[i], chunks[i])`` valued
        ``valuations[i]``, with candidate uploaders
        ``cand_uploaders[indptr[i]:indptr[i+1]]`` at costs
        ``cand_costs[indptr[i]:indptr[i+1]]``.  Exactly the same
        invariants as :meth:`add_request` are enforced — duplicate keys,
        self-upload, undeclared uploaders, bad costs, duplicate
        candidates within one request — but every check is one vectorized
        pass over the batch instead of per-request Python work.

        ``validate=False`` skips the invariant checks (shape checks are
        always performed) for trusted producers whose output is pinned
        elsewhere — the slot pipeline's construction is equivalence-tested
        against the per-request reference, so it does not pay for
        re-validating what the tests already guarantee.  Untrusted or
        hand-built input must keep ``validate=True``.

        ``chunks`` may be an ``(m, 2)`` int array of
        ``(video_id, chunk_index)`` pairs instead of a tuple sequence;
        the tuple keys are then materialized lazily, only if a
        per-request accessor asks for them (the slot pipeline and the
        solvers never do — they read :meth:`chunk_pair_array`).
        """
        peers_arr = np.ascontiguousarray(peers, dtype=np.int64)
        valuations_arr = np.ascontiguousarray(valuations, dtype=float)
        uploaders_arr = np.ascontiguousarray(cand_uploaders, dtype=np.int64)
        costs_arr = np.ascontiguousarray(cand_costs, dtype=float)
        indptr_arr = np.ascontiguousarray(indptr, dtype=np.int64)
        m = len(peers_arr)
        start = self.n_requests
        chunk_block: Optional[np.ndarray] = None
        if isinstance(chunks, np.ndarray):
            chunk_block = np.ascontiguousarray(chunks, dtype=np.int64)
            if chunk_block.ndim != 2 or chunk_block.shape[1] != 2:
                raise ValueError(
                    f"array chunks must have shape (m, 2), got "
                    f"{chunk_block.shape}"
                )
            n_chunks = len(chunk_block)
            chunk_list: List[Hashable] = []
        else:
            chunk_list = list(chunks)
            n_chunks = len(chunk_list)
        if n_chunks != m or len(valuations_arr) != m:
            raise ValueError(
                f"peers ({m}), chunks ({n_chunks}) and valuations "
                f"({len(valuations_arr)}) must be aligned"
            )
        if len(costs_arr) != len(uploaders_arr):
            raise ValueError(
                f"cand_uploaders ({len(uploaders_arr)}) and cand_costs "
                f"({len(costs_arr)}) must be aligned"
            )
        if (
            len(indptr_arr) != m + 1
            or (m >= 0 and (indptr_arr[0] != 0 or indptr_arr[-1] != len(uploaders_arr)))
        ):
            raise ValueError(
                f"indptr must have length {m + 1}, start at 0 and end at "
                f"{len(uploaders_arr)}, got {indptr_arr!r}"
            )
        counts = np.diff(indptr_arr)
        if np.any(counts < 0):
            raise ValueError("indptr must be non-decreasing")
        if m == 0:
            return range(start, start)
        if validate:
            if chunk_block is not None:
                chunk_list = list(map(tuple, chunk_block.tolist()))
                chunk_block = None
            self._validate_batch(
                peers_arr, valuations_arr, uploaders_arr, costs_arr, counts, m
            )
            keys = list(zip(peers_arr.tolist(), chunk_list))
            batch_keys = set(keys)
            if len(batch_keys) < len(keys):
                seen: set = set()
                for key in keys:
                    if key in seen:
                        raise ValueError(f"duplicate request {key!r}")
                    seen.add(key)
            self._ensure_keys()
            overlap = self._request_keys & batch_keys
            if overlap:
                raise ValueError(f"duplicate request {next(iter(overlap))!r}")
            # All checks passed: commit the block (views into the flat
            # arrays, so the append loop is O(R) slices, no per-edge work).
            self._request_keys |= batch_keys
        else:
            # Trusted block: the key set is rebuilt lazily if a later
            # per-request or validated add needs duplicate detection.
            self._keys_stale = True
        # The scalar blocks are retained (deferred materialization), so
        # never alias the caller's buffers — ascontiguousarray is a
        # no-op for already-conforming input.
        if peers_arr is peers:
            peers_arr = peers_arr.copy()
        if valuations_arr is valuations:
            valuations_arr = valuations_arr.copy()
        self._peer_pending.append(peers_arr)
        self._val_pending.append(valuations_arr)
        self._n_pending_scalars += m
        if chunk_block is not None:
            self._chunk_pending.append(chunk_block)
        else:
            self._materialize_chunks()
            self._chunks.extend(chunk_list)
        self._lazy_blocks.append((uploaders_arr, costs_arr, indptr_arr))
        self._edge_count += len(uploaders_arr)
        self._invalidate()
        return range(start, start + m)

    def _materialize_views(self) -> None:
        """Split pending batch blocks into per-request zero-copy views.

        Deferred until a per-request accessor needs them — the solver
        hot path (``csr()``/``dense()``/``welfare``) never does.
        ``map()`` keeps the slicing loop in C.
        """
        if not self._lazy_blocks:
            return
        for uploaders_arr, costs_arr, indptr_arr in self._lazy_blocks:
            bounds = indptr_arr.tolist()
            slices = list(map(slice, bounds[:-1], bounds[1:]))
            self._candidates.extend(map(uploaders_arr.__getitem__, slices))
            self._costs.extend(map(costs_arr.__getitem__, slices))
        self._lazy_blocks.clear()

    def _validate_batch(
        self,
        peers_arr: np.ndarray,
        valuations_arr: np.ndarray,
        uploaders_arr: np.ndarray,
        costs_arr: np.ndarray,
        counts: np.ndarray,
        m: int,
    ) -> None:
        """Vectorized invariant checks for one request batch."""
        if not np.all(np.isfinite(valuations_arr)):
            bad = valuations_arr[~np.isfinite(valuations_arr)][0]
            raise ValueError(f"valuation must be finite, got {bad!r}")
        if len(costs_arr) and (
            not np.all(np.isfinite(costs_arr)) or np.any(costs_arr < 0)
        ):
            bad = costs_arr[~np.isfinite(costs_arr) | (costs_arr < 0)][0]
            raise ValueError(f"cost must be finite and >= 0, got {bad!r}")
        if not len(uploaders_arr):
            return
        edge_peer = np.repeat(peers_arr, counts)
        selfish = edge_peer == uploaders_arr
        if np.any(selfish):
            offender = int(edge_peer[selfish][0])
            raise ValueError(f"peer {offender!r} cannot upload to itself")
        declared = np.fromiter(
            self._capacity.keys(), dtype=np.int64, count=len(self._capacity)
        )
        known = np.isin(uploaders_arr, declared)
        if not known.all():
            offender = int(uploaders_arr[~known][0])
            raise ValueError(
                f"candidate uploader {offender!r} has no declared capacity"
            )
        rows = np.repeat(np.arange(m, dtype=np.int64), counts)
        same_row = rows[1:] == rows[:-1]
        adjacent = uploaders_arr[1:] == uploaders_arr[:-1]
        if np.all((uploaders_arr[1:] > uploaders_arr[:-1]) | ~same_row):
            return  # strictly increasing within each row ⇒ no duplicates
        if not np.any(adjacent & same_row):
            # Not sorted: fall back to a per-row sort to find repeats.
            order = np.lexsort((uploaders_arr, rows))
            su, sr = uploaders_arr[order], rows[order]
            adjacent = su[1:] == su[:-1]
            same_row = sr[1:] == sr[:-1]
            uploaders_arr, rows = su, sr
        dup = adjacent & same_row
        if np.any(dup):
            where = int(np.nonzero(dup)[0][0])
            raise ValueError(
                f"duplicate candidate uploader {int(uploaders_arr[1:][where])!r} "
                f"for request {int(rows[1:][where])!r} of the batch"
            )

    def _materialize_chunks(self) -> None:
        """Convert pending chunk-pair blocks into the tuple-key list.

        Deferred until a per-request accessor (or key validation) needs
        the tuple form — the slot pipeline and the solvers never do.
        """
        if self._chunk_pending:
            for block in self._chunk_pending:
                self._chunks.extend(map(tuple, block.tolist()))
            self._chunk_pending.clear()

    def _materialize_scalars(self) -> None:
        """Convert pending peer/valuation blocks into the scalar lists.

        Deferred until a per-request accessor needs list indexing — the
        solver hot path reads :meth:`request_peer_array` and the cached
        CSR valuation column instead.
        """
        if self._peer_pending:
            for block in self._peer_pending:
                self._peers.extend(block.tolist())
            self._peer_pending.clear()
            for block in self._val_pending:
                self._valuations.extend(block.tolist())
            self._val_pending.clear()
            self._n_pending_scalars = 0

    def _scalar_column(
        self, materialized: List, pending: List[np.ndarray], dtype
    ) -> np.ndarray:
        """Full column over ``materialized + pending`` without list work."""
        if pending and not materialized:
            return pending[0] if len(pending) == 1 else np.concatenate(pending)
        head = np.asarray(materialized, dtype=dtype)
        if not pending:
            return head
        return np.concatenate([head, *pending])

    def _ensure_keys(self) -> None:
        """Rebuild the duplicate-detection key set after trusted batches."""
        if self._keys_stale:
            self._materialize_chunks()
            self._materialize_scalars()
            self._request_keys = set(zip(self._peers, self._chunks))
            self._keys_stale = False

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self._peers) + self._n_pending_scalars

    @property
    def requests(self) -> Sequence[ChunkRequest]:
        return tuple(self.request(i) for i in range(self.n_requests))

    def request(self, index: int) -> ChunkRequest:
        self._materialize_chunks()
        self._materialize_scalars()
        return ChunkRequest(
            peer=self._peers[index],
            chunk=self._chunks[index],
            valuation=self._valuations[index],
        )

    def chunk_of(self, index: int) -> Hashable:
        """Chunk key of request ``index`` (no :class:`ChunkRequest` built)."""
        self._materialize_chunks()
        return self._chunks[index]

    def request_peer_array(self) -> np.ndarray:
        """Downloader peer id per request, ``(R,)`` int64; cached, do not mutate."""
        if self._peer_arr is None:
            self._peer_arr = self._scalar_column(
                self._peers, self._peer_pending, np.int64
            )
        return self._peer_arr

    def request_valuation_array(self) -> np.ndarray:
        """Valuation ``v`` per request, ``(R,)`` float; do not mutate."""
        return self._scalar_column(self._valuations, self._val_pending, float)

    def chunk_pair_array(self) -> np.ndarray:
        """Chunk keys as an ``(R, 2)`` int array; cached, do not mutate.

        Only valid when every chunk key is a ``(video_id, chunk_index)``
        int pair — the shape the P2P slot pipeline always produces.
        Raises ``ValueError``/``TypeError`` otherwise, so columnar
        consumers can fall back to the generic per-request path.
        """
        if self._chunk_arr is None:
            if self._chunk_pending and not self._chunks:
                # Pure array-batch construction: reuse the blocks.
                blocks = self._chunk_pending
                arr = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
            else:
                self._materialize_chunks()
                arr = np.asarray(self._chunks, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError(
                    "chunk keys are not (video_id, chunk_index) pairs"
                )
            self._chunk_arr = arr
        return self._chunk_arr

    def prime_chunk_pairs(self, pairs: np.ndarray) -> None:
        """Install a precomputed :meth:`chunk_pair_array` cache.

        Columnar producers (the slot pipeline) already hold the
        ``(video_id, chunk_index)`` columns they tuple-ized into the
        chunk keys; installing them here spares consumers the O(R)
        list-of-tuples conversion.  The array must match ``_chunks``
        row for row — the construction-equivalence tests pin the one
        producer that uses this.
        """
        pairs = np.ascontiguousarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape != (self.n_requests, 2):
            raise ValueError(
                f"chunk pairs must have shape ({self.n_requests}, 2), "
                f"got {pairs.shape}"
            )
        self._chunk_arr = pairs

    def candidates_of(self, index: int) -> np.ndarray:
        """Uploader peer ids that can serve request ``index``."""
        self._materialize_views()
        return self._candidates[index]

    def costs_of(self, index: int) -> np.ndarray:
        """Edge costs ``w_{u→d}`` aligned with :meth:`candidates_of`."""
        self._materialize_views()
        return self._costs[index]

    def edge_values_of(self, index: int) -> np.ndarray:
        """Net utilities ``v − w`` aligned with :meth:`candidates_of`."""
        self._materialize_views()
        self._materialize_scalars()
        return self._valuations[index] - self._costs[index]

    def capacity_of(self, peer: int) -> int:
        """``B(peer)``; raises ``KeyError`` for unknown uploaders."""
        return self._capacity[peer]

    def uploaders(self) -> List[int]:
        """All peers with declared capacity, in declaration order."""
        return list(self._capacity)

    def total_capacity(self) -> int:
        """Σ_u B(u)."""
        return sum(self._capacity.values())

    def n_edges(self) -> int:
        """Total number of candidate edges."""
        return self._edge_count

    def cost_of_edge(self, index: int, uploader: int) -> float:
        """Cost ``w_{u→d}`` of a specific edge; raises if absent."""
        self._materialize_views()
        cands = self._candidates[index]
        pos = np.nonzero(cands == uploader)[0]
        if len(pos) == 0:
            raise KeyError(
                f"uploader {uploader!r} is not a candidate of request {index!r}"
            )
        return float(self._costs[index][pos[0]])

    def edge_value(self, index: int, uploader: int) -> float:
        """Net utility ``v − w`` of a specific edge."""
        self._materialize_scalars()
        return self._valuations[index] - self.cost_of_edge(index, uploader)

    # ------------------------------------------------------------------
    # Array views for vectorized solvers
    # ------------------------------------------------------------------
    def csr(self) -> CSRView:
        """Flat CSR arrays over a stable uploader index; cached.

        Built with a handful of array passes — no per-request Python
        loop — so it stays cheap on batch-built problems with hundreds
        of thousands of edges.
        """
        if self._csr is not None:
            return self._csr
        n = self.n_requests
        if self._lazy_blocks and not self._candidates:
            # Batch-built problem: reuse the flat block arrays directly,
            # never splitting them into per-request views.
            blocks = self._lazy_blocks
            if len(blocks) == 1:
                flat_uploaders, flat_costs, indptr = blocks[0]
                counts = np.diff(indptr)
            else:
                flat_uploaders = np.concatenate([b[0] for b in blocks])
                flat_costs = np.concatenate([b[1] for b in blocks])
                counts = np.concatenate([np.diff(b[2]) for b in blocks])
                indptr = np.zeros(n + 1, dtype=np.int64)
                np.cumsum(counts, out=indptr[1:])
        else:
            self._materialize_views()
            counts = np.fromiter(map(len, self._candidates), dtype=np.int64, count=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            if self._candidates and self._edge_count:
                flat_uploaders = np.concatenate(self._candidates)
                flat_costs = np.concatenate(self._costs)
            else:
                flat_uploaders = _EMPTY_INT
                flat_costs = _EMPTY_FLOAT
        valuations = self._scalar_column(self._valuations, self._val_pending, float)
        values = np.repeat(valuations, counts) - flat_costs
        if self._cap_primed is not None:
            # Primed column pair: dict insertion order would be exactly
            # the array order, so these are the same columns fromiter
            # would produce.
            uploaders, capacity = self._cap_primed
        else:
            uploaders = np.fromiter(
                self._cap_dict.keys(), dtype=np.int64, count=len(self._cap_dict)
            )
            capacity = np.fromiter(
                self._cap_dict.values(), dtype=np.int64, count=len(self._cap_dict)
            )
        if len(flat_uploaders):
            min_id = int(uploaders.min())
            max_id = int(uploaders.max())
            if 0 <= min_id and max_id < max(1 << 20, 8 * len(uploaders)):
                # Dense non-negative ids (the P2P pipeline's shape): a
                # scatter table beats the E·log U searchsorted by ~10×.
                table = np.empty(max_id + 1, dtype=np.int64)
                table[uploaders] = np.arange(len(uploaders), dtype=np.int64)
                uploader_index = table[flat_uploaders]
            else:
                sorter = np.argsort(uploaders, kind="stable")
                uploader_index = sorter[
                    np.searchsorted(uploaders, flat_uploaders, sorter=sorter)
                ]
        else:
            uploader_index = _EMPTY_INT
        self._csr = CSRView(
            values=values,
            uploader_index=uploader_index,
            indptr=indptr,
            uploaders=uploaders,
            capacity=capacity,
        )
        return self._csr

    def dense(self) -> DenseView:
        """Padded arrays over a stable uploader index; cached.

        Derived from :meth:`csr` by a vectorized scatter; prefer the CSR
        view directly when candidate counts are skewed — the dense
        expansion costs ``R × K_max`` regardless of the true edge count.
        """
        if self._dense is not None:
            return self._dense
        self._dense = self.csr().to_dense()
        return self._dense

    # ------------------------------------------------------------------
    # Welfare
    # ------------------------------------------------------------------
    def welfare(self, assignment: Dict[int, Optional[int]]) -> float:
        """Social welfare Σ (v − w) of an assignment {request index → uploader}."""
        n = self.n_requests
        served = {
            index: uploader
            for index, uploader in assignment.items()
            if uploader is not None
        }
        if not all(0 <= index < n for index in served):
            return self._welfare_loop(assignment)
        count = len(served)
        indices = np.fromiter(served.keys(), dtype=np.int64, count=count)
        uploaders = np.fromiter(served.values(), dtype=np.int64, count=count)
        return self.welfare_pairs(indices, uploaders)

    def _matched_edge_mask(
        self, indices: np.ndarray, uploaders: np.ndarray
    ) -> np.ndarray:
        """Mask over CSR edges hit by the served ``(request, uploader)`` pairs.

        Each valid pair hits exactly one edge (candidate uploaders are
        unique within a request); a pair assigned to a non-candidate
        hits none, which callers detect by comparing counts.
        """
        csr = self.csr()
        assigned = np.full(self.n_requests, np.iinfo(np.int64).min, dtype=np.int64)
        assigned[indices] = uploaders
        return csr.uploaders[csr.uploader_index] == assigned[csr.edge_rows()]

    def welfare_pairs(self, indices, uploaders) -> float:
        """Vectorized welfare of served ``(request index, uploader id)`` columns.

        ``indices`` must be unique; out-of-range or non-candidate pairs
        fall back to the per-edge loop, which raises the precise error.
        """
        indices = np.asarray(indices, dtype=np.int64)
        uploaders = np.asarray(uploaders, dtype=np.int64)
        if len(indices) == 0:
            return 0.0
        n = self.n_requests
        if indices.min() < 0 or indices.max() >= n:
            return self._welfare_loop(dict(zip(indices.tolist(), uploaders.tolist())))
        csr = self.csr()
        matched = self._matched_edge_mask(indices, uploaders)
        if int(matched.sum()) != len(indices):
            return self._welfare_loop(dict(zip(indices.tolist(), uploaders.tolist())))
        return float(csr.values[matched].sum())

    def edge_value_pairs(self, indices, uploaders) -> np.ndarray:
        """Net utilities ``v − w`` of served pairs, aligned with ``indices``.

        ``indices`` must be unique and in range; raises ``KeyError`` for
        a pair whose uploader is not a candidate (like
        :meth:`edge_value`).
        """
        indices = np.asarray(indices, dtype=np.int64)
        uploaders = np.asarray(uploaders, dtype=np.int64)
        if len(indices) == 0:
            return _EMPTY_FLOAT.copy()
        csr = self.csr()
        matched = self._matched_edge_mask(indices, uploaders)
        values = csr.values[matched]
        if len(values) != len(indices):
            hit = np.isin(indices, csr.edge_rows()[matched])
            where = int(np.nonzero(~hit)[0][0])
            raise KeyError(
                f"uploader {int(uploaders[where])!r} is not a candidate of "
                f"request {int(indices[where])!r}"
            )
        # Matched edges come out in CSR (ascending request) order; undo
        # that to align with the caller's order.
        out = np.empty(len(indices), dtype=float)
        out[np.argsort(indices, kind="stable")] = values
        return out

    def edge_cost_pairs(self, indices, uploaders) -> np.ndarray:
        """Network costs ``w`` of served pairs, aligned with ``indices``.

        Recovered as ``v − (v − w)`` from the valuation column and the
        CSR edge values, so the per-ISP transit-cost rollup needs no
        per-edge dict lookups.  Same contract as
        :meth:`edge_value_pairs`: unique in-range ``indices``,
        ``KeyError`` for non-candidate pairs.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) == 0:
            return _EMPTY_FLOAT.copy()
        valuations = self.request_valuation_array()
        return valuations[indices] - self.edge_value_pairs(indices, uploaders)

    def has_edge_pairs(self, indices, uploaders) -> np.ndarray:
        """Bool per pair: is ``uploaders[i]`` a candidate of ``indices[i]``?

        ``indices`` must be unique and in range.
        """
        indices = np.asarray(indices, dtype=np.int64)
        uploaders = np.asarray(uploaders, dtype=np.int64)
        if len(indices) == 0:
            return np.empty(0, dtype=bool)
        csr = self.csr()
        matched = self._matched_edge_mask(indices, uploaders)
        return np.isin(indices, csr.edge_rows()[matched])

    def _welfare_loop(self, assignment: Dict[int, Optional[int]]) -> float:
        total = 0.0
        for index, uploader in assignment.items():
            if uploader is None:
                continue
            total += self.edge_value(index, uploader)
        return total

    def max_edge_value(self) -> float:
        """Largest ``v − w`` over all edges (0 if there are no edges)."""
        csr = self.csr()
        if not csr.n_edges:
            return 0.0
        return max(0.0, float(csr.values.max()))

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"SchedulingProblem(requests={self.n_requests}, "
            f"uploaders={len(self._capacity)}, edges={self.n_edges()}, "
            f"capacity={self.total_capacity()})"
        )

    # ------------------------------------------------------------------
    # Derived problems
    # ------------------------------------------------------------------
    def restricted(
        self, keep: "Callable[[int], bool]"
    ) -> Tuple["SchedulingProblem", Dict[int, int]]:
        """Copy containing only the requests with ``keep(index)`` true.

        Capacities are copied unchanged.  Returns the sub-problem and a
        map new-index → original-index.  Used by the VCG extension
        (welfare without one peer's requests) and by scenario tooling.
        """
        self._materialize_views()
        self._materialize_chunks()
        self._materialize_scalars()
        sub = SchedulingProblem()
        for uploader, capacity in self._capacity.items():
            sub.set_capacity(uploader, capacity)
        index_map: Dict[int, int] = {}
        for index in range(self.n_requests):
            if not keep(index):
                continue
            candidates = {
                int(u): float(c)
                for u, c in zip(self._candidates[index], self._costs[index])
            }
            new_index = sub.add_request(
                self._peers[index],
                self._chunks[index],
                self._valuations[index],
                candidates,
            )
            index_map[new_index] = index
        return sub, index_map

    def without_peer(self, peer: int) -> Tuple["SchedulingProblem", Dict[int, int]]:
        """Copy with every request of ``peer`` removed (capacities intact)."""
        return self.restricted(lambda r: self._peers[r] != peer)

    def reweighted(
        self, valuation_of: "Callable[[int], float]"
    ) -> "SchedulingProblem":
        """Copy with per-request valuations replaced (same edges/capacities).

        ``valuation_of(index)`` returns the (possibly misreported)
        valuation for the request at ``index`` — the strategic-bidding
        tooling uses this to model manipulation.
        """
        self._materialize_views()
        self._materialize_chunks()
        self._materialize_scalars()
        sub = SchedulingProblem()
        for uploader, capacity in self._capacity.items():
            sub.set_capacity(uploader, capacity)
        for index in range(self.n_requests):
            candidates = {
                int(u): float(c)
                for u, c in zip(self._candidates[index], self._costs[index])
            }
            sub.add_request(
                self._peers[index],
                self._chunks[index],
                float(valuation_of(index)),
                candidates,
            )
        return sub


class ProblemBuilder:
    """Columnar accumulator that assembles a :class:`SchedulingProblem`.

    Collect capacity declarations and CSR *blocks* of requests (e.g. one
    block per requesting peer), then :meth:`build` concatenates every
    block once and performs a single vectorized
    :meth:`SchedulingProblem.add_requests_batch` call.  This is the
    construction path the per-slot pipeline uses: total cost is O(E) in
    array ops, independent of how many blocks were added.

    Example
    -------
    >>> b = ProblemBuilder()
    >>> b.set_capacity(10, 2)
    >>> b.add_block(peers=1, chunks=["a", "b"], valuations=[5.0, 4.0],
    ...             cand_uploaders=[10, 10], cand_costs=[1.0, 2.0],
    ...             indptr=[0, 1, 2])
    >>> p = b.build()
    >>> p.n_requests, p.n_edges()
    (2, 2)
    """

    def __init__(self) -> None:
        self._capacity: Dict[int, int] = {}
        self._peer_blocks: List[np.ndarray] = []
        self._chunk_blocks: List[List[Hashable]] = []
        self._valuation_blocks: List[np.ndarray] = []
        self._uploader_blocks: List[np.ndarray] = []
        self._cost_blocks: List[np.ndarray] = []
        self._count_blocks: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # Capacities
    # ------------------------------------------------------------------
    def set_capacity(self, peer: int, capacity: int) -> None:
        """Declare one uploader capacity (order of declaration preserved)."""
        self._capacity[int(peer)] = int(capacity)

    def set_capacities(self, peers: Sequence[int], capacities: Sequence[int]) -> None:
        """Declare many uploader capacities at once."""
        ids = np.asarray(peers, dtype=np.int64)
        caps = np.asarray(capacities, dtype=np.int64)
        if ids.shape != caps.shape:
            raise ValueError(
                f"peers and capacities must be aligned, got shapes "
                f"{ids.shape} and {caps.shape}"
            )
        self._capacity.update(zip(ids.tolist(), caps.tolist()))

    # ------------------------------------------------------------------
    # Request blocks
    # ------------------------------------------------------------------
    def add_block(
        self,
        peers,
        chunks: Sequence[Hashable],
        valuations,
        cand_uploaders,
        cand_costs,
        indptr=None,
        counts=None,
    ) -> int:
        """Queue one CSR block of requests; returns the block's size.

        ``peers`` may be a scalar (one downloader for the whole block —
        the common per-peer case) or an array aligned with ``chunks``.
        Provide either ``indptr`` (length ``len(chunks) + 1``) or
        ``counts`` (length ``len(chunks)``).  Arrays are stored as-is
        and validated at :meth:`build` time by ``add_requests_batch``.
        """
        chunk_list = list(chunks)
        m = len(chunk_list)
        if counts is None:
            if indptr is None:
                raise ValueError("provide either indptr or counts")
            indptr_arr = np.asarray(indptr, dtype=np.int64)
            if len(indptr_arr) != m + 1:
                raise ValueError(
                    f"indptr must have length {m + 1}, got {len(indptr_arr)}"
                )
            counts_arr = np.diff(indptr_arr)
        else:
            if indptr is not None:
                raise ValueError("provide indptr or counts, not both")
            counts_arr = np.asarray(counts, dtype=np.int64)
            if len(counts_arr) != m:
                raise ValueError(
                    f"counts must have length {m}, got {len(counts_arr)}"
                )
        peers_arr = np.asarray(peers, dtype=np.int64)
        if peers_arr.ndim == 0:
            peers_arr = np.full(m, int(peers_arr), dtype=np.int64)
        if m == 0:
            return 0
        self._peer_blocks.append(peers_arr)
        self._chunk_blocks.append(chunk_list)
        self._valuation_blocks.append(np.asarray(valuations, dtype=float))
        self._uploader_blocks.append(np.asarray(cand_uploaders, dtype=np.int64))
        self._cost_blocks.append(np.asarray(cand_costs, dtype=float))
        self._count_blocks.append(counts_arr)
        return m

    @property
    def n_pending(self) -> int:
        """Requests queued so far."""
        return sum(len(block) for block in self._peer_blocks)

    def request_peers(self) -> np.ndarray:
        """Downloader peer id per queued request, in request order."""
        if not self._peer_blocks:
            return _EMPTY_INT
        return np.concatenate(self._peer_blocks)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> SchedulingProblem:
        """Concatenate all blocks into one :class:`SchedulingProblem`.

        ``validate`` is forwarded to
        :meth:`SchedulingProblem.add_requests_batch`.
        """
        problem = SchedulingProblem()
        if self._capacity:
            problem.set_capacities_batch(
                np.fromiter(self._capacity.keys(), dtype=np.int64, count=len(self._capacity)),
                np.fromiter(self._capacity.values(), dtype=np.int64, count=len(self._capacity)),
            )
        if not self._peer_blocks:
            return problem
        peers = np.concatenate(self._peer_blocks)
        chunks: List[Hashable] = []
        for block in self._chunk_blocks:
            chunks.extend(block)
        valuations = np.concatenate(self._valuation_blocks)
        cand_uploaders = np.concatenate(self._uploader_blocks)
        cand_costs = np.concatenate(self._cost_blocks)
        counts = np.concatenate(self._count_blocks)
        indptr = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        problem.add_requests_batch(
            peers, chunks, valuations, cand_uploaders, cand_costs, indptr,
            validate=validate,
        )
        return problem


def random_problem(
    rng: np.random.Generator,
    n_requests: int = 50,
    n_uploaders: int = 10,
    max_candidates: int = 5,
    capacity_range: Tuple[int, int] = (1, 4),
    valuation_range: Tuple[float, float] = (0.8, 8.0),
    cost_range: Tuple[float, float] = (0.0, 10.0),
    integer_weights: bool = False,
) -> SchedulingProblem:
    """Generate a random problem instance (testing/benchmark helper).

    ``integer_weights`` draws integer valuations/costs, which makes the
    auction with ε < 1/n exactly optimal — handy for theorem tests.
    """
    if n_uploaders < 1:
        raise ValueError("need at least one uploader")
    problem = SchedulingProblem()
    uploader_ids = [10_000 + i for i in range(n_uploaders)]
    for u in uploader_ids:
        problem.set_capacity(u, int(rng.integers(capacity_range[0], capacity_range[1] + 1)))
    for r in range(n_requests):
        peer = r  # requester ids disjoint from uploader ids
        k = int(rng.integers(1, max_candidates + 1))
        chosen = rng.choice(n_uploaders, size=min(k, n_uploaders), replace=False)
        if integer_weights:
            valuation = float(rng.integers(int(valuation_range[0]), int(valuation_range[1]) + 1))
            costs = rng.integers(int(cost_range[0]), int(cost_range[1]) + 1, size=len(chosen))
        else:
            valuation = float(rng.uniform(*valuation_range))
            costs = rng.uniform(*cost_range, size=len(chosen))
        candidates = {uploader_ids[int(j)]: float(c) for j, c in zip(chosen, costs)}
        problem.add_request(peer=peer, chunk=f"chunk-{r}", valuation=valuation, candidates=candidates)
    return problem
