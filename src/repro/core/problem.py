"""The per-slot chunk scheduling problem (Section III).

A :class:`SchedulingProblem` is one time slot's social-welfare ILP:

* a set of *requests* ``(I_d, c)`` — peer ``d`` wants chunk ``c`` and
  values it ``v^{(c)}(d)``;
* for each request, the *candidate* upstream peers that cache ``c``
  (``∪_n N_n^{(c)}(d)``) with the network cost ``w_{u→d}`` on each edge;
* per-uploader capacities ``B(u)`` (chunks per slot).

The edge weight is the net utility ``v^{(c)}(d) − w_{u→d}``.  Solvers
(:mod:`repro.core.auction`, :mod:`repro.core.exact`,
:mod:`repro.core.baselines`) consume this object; they may not modify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ChunkRequest", "DenseView", "SchedulingProblem"]


@dataclass(frozen=True)
class ChunkRequest:
    """One download request ``(I_d, c)`` with the requester's valuation."""

    peer: int
    chunk: Hashable
    valuation: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.valuation):
            raise ValueError(f"valuation must be finite, got {self.valuation!r}")

    @property
    def key(self) -> Tuple[int, Hashable]:
        """The request identity (I_d, c)."""
        return (self.peer, self.chunk)


@dataclass(frozen=True)
class DenseView:
    """Padded numpy view of a problem for vectorized solvers.

    Attributes
    ----------
    values:
        ``(R, K)`` array of edge net utilities ``v − w``; ``-inf`` padding.
    uploader_index:
        ``(R, K)`` array of uploader *indices* (into :attr:`uploaders`);
        ``-1`` padding.
    uploaders:
        Uploader peer ids, position = index used above.
    capacity:
        ``(U,)`` int array of ``B(u)`` aligned with :attr:`uploaders`.
    """

    values: np.ndarray
    uploader_index: np.ndarray
    uploaders: np.ndarray
    capacity: np.ndarray

    @property
    def n_requests(self) -> int:
        return self.values.shape[0]

    @property
    def max_candidates(self) -> int:
        return self.values.shape[1]


class SchedulingProblem:
    """Immutable-after-build description of one slot's assignment problem.

    Build with :meth:`add_request` / :meth:`set_capacity`, then hand to a
    scheduler.  Request order is preserved and indexes results.

    Example
    -------
    >>> p = SchedulingProblem()
    >>> p.set_capacity(10, 1)
    >>> _ = p.add_request(peer=1, chunk="c0", valuation=5.0, candidates={10: 1.0})
    >>> p.n_requests, p.total_capacity()
    (1, 1)
    """

    def __init__(self) -> None:
        self._requests: List[ChunkRequest] = []
        self._request_keys: set = set()
        self._candidates: List[np.ndarray] = []  # uploader peer ids per request
        self._costs: List[np.ndarray] = []  # w_{u→d} aligned with candidates
        self._capacity: Dict[int, int] = {}
        self._dense: Optional[DenseView] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set_capacity(self, peer: int, capacity: int) -> None:
        """Declare upload capacity ``B(peer)`` in chunks per slot."""
        if capacity < 0 or int(capacity) != capacity:
            raise ValueError(f"capacity must be a non-negative int, got {capacity!r}")
        self._capacity[peer] = int(capacity)
        self._dense = None

    def add_request(
        self,
        peer: int,
        chunk: Hashable,
        valuation: float,
        candidates: Dict[int, float],
    ) -> int:
        """Add request ``(peer, chunk)``; returns its index.

        ``candidates`` maps uploader peer id → network cost ``w_{u→d}``.
        Uploaders must have had capacity declared; the requester itself
        cannot be a candidate.  A request with no candidates is legal (it
        simply can never be served).
        """
        request = ChunkRequest(peer=peer, chunk=chunk, valuation=float(valuation))
        if request.key in self._request_keys:
            raise ValueError(f"duplicate request {request.key!r}")
        for uploader, cost in candidates.items():
            if uploader == peer:
                raise ValueError(f"peer {peer!r} cannot upload to itself")
            if uploader not in self._capacity:
                raise ValueError(
                    f"candidate uploader {uploader!r} has no declared capacity"
                )
            if not np.isfinite(cost) or cost < 0:
                raise ValueError(f"cost must be finite and >= 0, got {cost!r}")
        self._request_keys.add(request.key)
        self._requests.append(request)
        uploaders = np.fromiter(candidates.keys(), dtype=np.int64, count=len(candidates))
        costs = np.fromiter(candidates.values(), dtype=float, count=len(candidates))
        self._candidates.append(uploaders)
        self._costs.append(costs)
        self._dense = None
        return len(self._requests) - 1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self._requests)

    @property
    def requests(self) -> Sequence[ChunkRequest]:
        return tuple(self._requests)

    def request(self, index: int) -> ChunkRequest:
        return self._requests[index]

    def candidates_of(self, index: int) -> np.ndarray:
        """Uploader peer ids that can serve request ``index``."""
        return self._candidates[index]

    def costs_of(self, index: int) -> np.ndarray:
        """Edge costs ``w_{u→d}`` aligned with :meth:`candidates_of`."""
        return self._costs[index]

    def edge_values_of(self, index: int) -> np.ndarray:
        """Net utilities ``v − w`` aligned with :meth:`candidates_of`."""
        return self._requests[index].valuation - self._costs[index]

    def capacity_of(self, peer: int) -> int:
        """``B(peer)``; raises ``KeyError`` for unknown uploaders."""
        return self._capacity[peer]

    def uploaders(self) -> List[int]:
        """All peers with declared capacity, in declaration order."""
        return list(self._capacity)

    def total_capacity(self) -> int:
        """Σ_u B(u)."""
        return sum(self._capacity.values())

    def n_edges(self) -> int:
        """Total number of candidate edges."""
        return sum(len(c) for c in self._candidates)

    def cost_of_edge(self, index: int, uploader: int) -> float:
        """Cost ``w_{u→d}`` of a specific edge; raises if absent."""
        cands = self._candidates[index]
        pos = np.nonzero(cands == uploader)[0]
        if len(pos) == 0:
            raise KeyError(
                f"uploader {uploader!r} is not a candidate of request {index!r}"
            )
        return float(self._costs[index][pos[0]])

    def edge_value(self, index: int, uploader: int) -> float:
        """Net utility ``v − w`` of a specific edge."""
        return self._requests[index].valuation - self.cost_of_edge(index, uploader)

    # ------------------------------------------------------------------
    # Dense view for vectorized solvers
    # ------------------------------------------------------------------
    def dense(self) -> DenseView:
        """Padded arrays over a stable uploader index; cached."""
        if self._dense is not None:
            return self._dense
        uploaders = np.fromiter(self._capacity.keys(), dtype=np.int64)
        index_of = {int(u): i for i, u in enumerate(uploaders)}
        capacity = np.fromiter(self._capacity.values(), dtype=np.int64)
        n = len(self._requests)
        k = max((len(c) for c in self._candidates), default=0)
        values = np.full((n, max(k, 1)), -np.inf, dtype=float)
        uploader_index = np.full((n, max(k, 1)), -1, dtype=np.int64)
        for r, (cands, costs) in enumerate(zip(self._candidates, self._costs)):
            m = len(cands)
            if m == 0:
                continue
            values[r, :m] = self._requests[r].valuation - costs
            uploader_index[r, :m] = [index_of[int(u)] for u in cands]
        self._dense = DenseView(
            values=values,
            uploader_index=uploader_index,
            uploaders=uploaders,
            capacity=capacity,
        )
        return self._dense

    # ------------------------------------------------------------------
    # Welfare
    # ------------------------------------------------------------------
    def welfare(self, assignment: Dict[int, Optional[int]]) -> float:
        """Social welfare Σ (v − w) of an assignment {request index → uploader}."""
        total = 0.0
        for index, uploader in assignment.items():
            if uploader is None:
                continue
            total += self.edge_value(index, uploader)
        return total

    def max_edge_value(self) -> float:
        """Largest ``v − w`` over all edges (0 if there are no edges)."""
        best = 0.0
        for index in range(self.n_requests):
            vals = self.edge_values_of(index)
            if len(vals):
                best = max(best, float(vals.max()))
        return best

    def describe(self) -> str:
        """One-line summary for logs."""
        return (
            f"SchedulingProblem(requests={self.n_requests}, "
            f"uploaders={len(self._capacity)}, edges={self.n_edges()}, "
            f"capacity={self.total_capacity()})"
        )

    # ------------------------------------------------------------------
    # Derived problems
    # ------------------------------------------------------------------
    def restricted(
        self, keep: "Callable[[int], bool]"
    ) -> Tuple["SchedulingProblem", Dict[int, int]]:
        """Copy containing only the requests with ``keep(index)`` true.

        Capacities are copied unchanged.  Returns the sub-problem and a
        map new-index → original-index.  Used by the VCG extension
        (welfare without one peer's requests) and by scenario tooling.
        """
        sub = SchedulingProblem()
        for uploader, capacity in self._capacity.items():
            sub.set_capacity(uploader, capacity)
        index_map: Dict[int, int] = {}
        for index in range(self.n_requests):
            if not keep(index):
                continue
            request = self._requests[index]
            candidates = {
                int(u): float(c)
                for u, c in zip(self._candidates[index], self._costs[index])
            }
            new_index = sub.add_request(
                request.peer, request.chunk, request.valuation, candidates
            )
            index_map[new_index] = index
        return sub, index_map

    def without_peer(self, peer: int) -> Tuple["SchedulingProblem", Dict[int, int]]:
        """Copy with every request of ``peer`` removed (capacities intact)."""
        return self.restricted(lambda r: self._requests[r].peer != peer)

    def reweighted(
        self, valuation_of: "Callable[[int], float]"
    ) -> "SchedulingProblem":
        """Copy with per-request valuations replaced (same edges/capacities).

        ``valuation_of(index)`` returns the (possibly misreported)
        valuation for the request at ``index`` — the strategic-bidding
        tooling uses this to model manipulation.
        """
        sub = SchedulingProblem()
        for uploader, capacity in self._capacity.items():
            sub.set_capacity(uploader, capacity)
        for index in range(self.n_requests):
            request = self._requests[index]
            candidates = {
                int(u): float(c)
                for u, c in zip(self._candidates[index], self._costs[index])
            }
            sub.add_request(
                request.peer, request.chunk, float(valuation_of(index)), candidates
            )
        return sub


def random_problem(
    rng: np.random.Generator,
    n_requests: int = 50,
    n_uploaders: int = 10,
    max_candidates: int = 5,
    capacity_range: Tuple[int, int] = (1, 4),
    valuation_range: Tuple[float, float] = (0.8, 8.0),
    cost_range: Tuple[float, float] = (0.0, 10.0),
    integer_weights: bool = False,
) -> SchedulingProblem:
    """Generate a random problem instance (testing/benchmark helper).

    ``integer_weights`` draws integer valuations/costs, which makes the
    auction with ε < 1/n exactly optimal — handy for theorem tests.
    """
    if n_uploaders < 1:
        raise ValueError("need at least one uploader")
    problem = SchedulingProblem()
    uploader_ids = [10_000 + i for i in range(n_uploaders)]
    for u in uploader_ids:
        problem.set_capacity(u, int(rng.integers(capacity_range[0], capacity_range[1] + 1)))
    for r in range(n_requests):
        peer = r  # requester ids disjoint from uploader ids
        k = int(rng.integers(1, max_candidates + 1))
        chosen = rng.choice(n_uploaders, size=min(k, n_uploaders), replace=False)
        if integer_weights:
            valuation = float(rng.integers(int(valuation_range[0]), int(valuation_range[1]) + 1))
            costs = rng.integers(int(cost_range[0]), int(cost_range[1]) + 1, size=len(chosen))
        else:
            valuation = float(rng.uniform(*valuation_range))
            costs = rng.uniform(*cost_range, size=len(chosen))
        candidates = {uploader_ids[int(j)]: float(c) for j, c in zip(chosen, costs)}
        problem.add_request(peer=peer, chunk=f"chunk-{r}", valuation=valuation, candidates=candidates)
    return problem
