"""The auction as a distributed message-passing protocol (Section IV-B/C).

This module runs one slot's auction the way the paper's emulator does:
bidder peers and auctioneer peers exchange ``Bid`` / ``Accept`` /
``Reject`` / ``Evict`` / ``PriceUpdate`` messages over a
:class:`~repro.sim.network.SimNetwork` with real (simulated) latencies.
Peers act on *locally known* prices, which may be stale — exactly the
interleaving the paper's protocol tolerates — and the auction converges
when no message remains in flight and no bidder wants to re-bid.

The price trajectory ``λ_u(t)`` recorded here is what Fig. 2 plots.

Peer departures mid-auction (Section IV-C) are injected with
:meth:`DistributedAuction.depart_peer`: the departed peer's auction set
is voided and its displaced bidders re-bid, converging to the optimum of
the reduced problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from ..sim.engine import Simulator
from ..sim.messages import (
    AcceptMessage,
    BidMessage,
    EvictMessage,
    Message,
    PriceUpdateMessage,
    RejectMessage,
)
from ..sim.network import SimNetwork
from .auction import DEFAULT_EPSILON, _AssignmentSet
from .problem import SchedulingProblem
from .result import ScheduleResult, SolverStats

__all__ = ["DistributedAuction", "PriceEvent"]


@dataclass(frozen=True)
class PriceEvent:
    """One observed price change: (simulated time, uploader, new λ)."""

    time: float
    uploader: int
    price: float


# Request lifecycle states at the bidder.
_UNASSIGNED = 0
_PENDING = 1  # bid in flight
_ASSIGNED = 2
_DORMANT = 3  # optimal bid equals known price (ε = 0 ties)
_RETIRED = 4  # outside option dominates at known prices


@dataclass
class _RequestState:
    index: int
    chunk: Hashable
    valuation: float
    candidates: np.ndarray  # uploader ids
    values: np.ndarray  # v − w per candidate
    state: int = _UNASSIGNED
    assigned_to: Optional[int] = None
    pending_target: Optional[int] = None
    bid_seq: int = 0  # distinguishes stale timeout events
    timeouts: Dict[int, int] = field(default_factory=dict)  # per-target count


class _Bidder:
    """Bidding module of one downstream peer (Alg. 1, bidder side)."""

    def __init__(self, auction: "DistributedAuction", peer: int) -> None:
        self.auction = auction
        self.peer = peer
        self.requests: List[_RequestState] = []
        self.known_prices: Dict[int, float] = {}
        # Evictions that overtook the Accept they undo (jitter reorders
        # same-pair deliveries): (uploader, chunk) → bid_seq of the
        # pending bid the Evict referred to.  Keyed by sequence so a
        # record left behind by a lost Accept can never swallow a later
        # bid generation's legitimate Accept.
        self._early_evicts: Dict[Tuple[int, Hashable], int] = {}

    def add_request(self, request: _RequestState) -> None:
        self.requests.append(request)
        for u in request.candidates:
            self.known_prices.setdefault(int(u), 0.0)

    # -- price knowledge ------------------------------------------------
    def observe_price(self, uploader: int, price: float) -> None:
        if price > self.known_prices.get(uploader, 0.0):
            self.known_prices[uploader] = price

    # -- bidding --------------------------------------------------------
    def evaluate_all(self) -> None:
        for request in self.requests:
            if request.state in (_UNASSIGNED, _DORMANT):
                self.evaluate(request)

    def evaluate(self, request: _RequestState) -> None:
        """Recompute the optimal bid for one request and send it if viable."""
        if request.state in (_ASSIGNED, _PENDING, _RETIRED):
            return
        if len(request.candidates) == 0:
            request.state = _RETIRED
            return
        prices = np.fromiter(
            (self.known_prices[int(u)] for u in request.candidates),
            dtype=float,
            count=len(request.candidates),
        )
        phi = request.values - prices
        j_star = int(np.argmax(phi))
        phi1 = float(phi[j_star])
        if phi1 <= 0.0:
            # At *known* prices the outside option wins; prices are
            # monotone so this can only get worse — retire.
            request.state = _RETIRED
            return
        phi2 = float(np.partition(phi, -2)[-2]) if len(phi) > 1 else -np.inf
        outside = max(phi2, 0.0)
        u_star = int(request.candidates[j_star])
        bid = self.known_prices[u_star] + phi1 - outside + self.auction.epsilon
        if bid <= self.known_prices[u_star]:
            request.state = _DORMANT  # paper: wait for a price change
            return
        request.state = _PENDING
        request.pending_target = u_star
        request.bid_seq += 1
        seq = request.bid_seq
        self.auction.stats.bids_submitted += 1
        self.auction.network.send(
            BidMessage(src=self.peer, dst=u_star, chunk=request.chunk, bid=bid)
        )
        # Bids (or their replies) can be lost; a timeout retries and,
        # after repeated silence, writes the target off locally.
        self.auction.sim.schedule(
            self.auction.bid_timeout,
            lambda: self._on_bid_timeout(request, u_star, seq),
        )

    def _on_bid_timeout(self, request: _RequestState, target: int, seq: int) -> None:
        if (
            request.state != _PENDING
            or request.pending_target != target
            or request.bid_seq != seq
        ):
            return  # the bid was answered (or superseded) in time
        count = request.timeouts.get(target, 0) + 1
        request.timeouts[target] = count
        if count >= self.auction.max_bid_retries:
            request.candidates, request.values = _drop_candidate(request, target)
        request.state = _UNASSIGNED
        request.pending_target = None
        self.evaluate(request)

    # -- protocol events -------------------------------------------------
    def on_accept(self, msg: AcceptMessage) -> None:
        request = self._pending_for(msg.src, msg.chunk)
        if request is None:
            return
        key = (msg.src, msg.chunk)
        owed_seq = self._early_evicts.pop(key, None)
        if owed_seq == request.bid_seq:
            # The allocation this Accept confirms was already revoked by
            # an Evict that overtook it — treat the pair as a no-op and
            # keep bidding instead of believing a stale assignment.
            request.state = _UNASSIGNED
            request.pending_target = None
            self.evaluate(request)
            return
        # owed_seq from an older bid generation (its Accept was lost or
        # timed out): the record is stale and has been discarded above.
        request.state = _ASSIGNED
        request.assigned_to = msg.src
        request.pending_target = None

    def on_reject(self, msg: RejectMessage) -> None:
        self.observe_price(msg.src, msg.price)
        request = self._pending_for(msg.src, msg.chunk)
        if request is None:
            return
        self.auction.stats.bids_rejected += 1
        request.state = _UNASSIGNED
        request.pending_target = None
        self.evaluate(request)

    def on_evict(self, msg: EvictMessage) -> None:
        self.observe_price(msg.src, msg.price)
        request = self._assigned_for(msg.src, msg.chunk)
        if request is None:
            # The Evict can overtake the Accept it undoes (the bid is
            # still _PENDING here).  Without bookkeeping the late Accept
            # would freeze the request in a phantom _ASSIGNED state while
            # the auctioneer no longer holds it.
            pending = self._pending_for(msg.src, msg.chunk)
            if pending is not None:
                self._early_evicts[(msg.src, msg.chunk)] = pending.bid_seq
            return
        request.state = _UNASSIGNED
        request.assigned_to = None
        self.evaluate(request)

    def on_price_update(self, msg: PriceUpdateMessage) -> None:
        self.observe_price(msg.src, msg.price)
        # A higher price elsewhere can wake a dormant tie; an unassigned
        # request simply recomputes its best target.
        self.evaluate_all()

    def _pending_for(self, uploader: int, chunk: Hashable) -> Optional[_RequestState]:
        for request in self.requests:
            if (
                request.state == _PENDING
                and request.pending_target == uploader
                and request.chunk == chunk
            ):
                return request
        return None

    def _assigned_for(self, uploader: int, chunk: Hashable) -> Optional[_RequestState]:
        for request in self.requests:
            if (
                request.state == _ASSIGNED
                and request.assigned_to == uploader
                and request.chunk == chunk
            ):
                return request
        return None


class _Auctioneer:
    """Allocator module of one upstream peer (Alg. 1, auctioneer side)."""

    def __init__(self, auction: "DistributedAuction", peer: int, capacity: int) -> None:
        self.auction = auction
        self.peer = peer
        self.price = 0.0
        self.aset = _AssignmentSet(capacity)
        self.watchers: Set[int] = set()  # bidder peers holding an edge to us

    def on_bid(self, msg: BidMessage) -> None:
        request_key = (msg.src, msg.chunk)
        if request_key in self.aset.bids:
            # A retry raced with a slow Accept: the request already holds
            # a unit here.  Keep the higher of the two bids and re-affirm.
            if msg.bid > self.aset.bids[request_key]:
                self.aset.remove(request_key)
            else:
                self.auction.network.send(
                    AcceptMessage(src=self.peer, dst=msg.src, chunk=msg.chunk)
                )
                return
        if msg.bid <= self.price or self.aset.capacity == 0:
            self.auction.network.send(
                RejectMessage(
                    src=self.peer, dst=msg.src, chunk=msg.chunk, price=self.price
                )
            )
            return
        if self.aset.full:
            if msg.bid <= self.aset.min_bid():
                self.auction.network.send(
                    RejectMessage(
                        src=self.peer, dst=msg.src, chunk=msg.chunk, price=self.price
                    )
                )
                return
            evicted_key, _ = self.aset.evict_min()
            self.auction.stats.evictions += 1
            self.auction.network.send(
                EvictMessage(
                    src=self.peer,
                    dst=evicted_key[0],
                    chunk=evicted_key[1],
                    price=self.price,
                )
            )
        self.aset.add(request_key, msg.bid)
        self.auction.network.send(
            AcceptMessage(src=self.peer, dst=msg.src, chunk=msg.chunk)
        )
        if self.aset.full:
            new_price = self.aset.min_bid()
            if new_price > self.price:
                self.price = new_price
                self.auction.stats.price_updates += 1
                self.auction.record_price(self.peer, new_price)
                for watcher in self.watchers:
                    if watcher != self.peer:
                        self.auction.network.send(
                            PriceUpdateMessage(
                                src=self.peer, dst=watcher, price=new_price
                            )
                        )


class DistributedAuction:
    """One slot's auction executed as interleaved message exchanges.

    Parameters
    ----------
    sim, network:
        The event engine and message network (latency model inside).
    problem:
        The slot's scheduling problem.
    epsilon:
        Bidding increment (0 = the paper's exact rule).

    Usage::

        auction = DistributedAuction(sim, network, problem)
        auction.start()
        result = auction.run_to_convergence()
    """

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        problem: SchedulingProblem,
        epsilon: float = DEFAULT_EPSILON,
        bid_timeout: float = 1.0,
        max_bid_retries: int = 3,
    ) -> None:
        if bid_timeout <= 0:
            raise ValueError(f"bid_timeout must be positive, got {bid_timeout!r}")
        if max_bid_retries < 1:
            raise ValueError(f"max_bid_retries must be >= 1, got {max_bid_retries!r}")
        self.sim = sim
        self.network = network
        self.problem = problem
        self.epsilon = float(epsilon)
        self.bid_timeout = float(bid_timeout)
        self.max_bid_retries = int(max_bid_retries)
        self.stats = SolverStats()
        self.price_events: List[PriceEvent] = []
        self._started = False
        self._departed: Set[int] = set()

        self.bidders: Dict[int, _Bidder] = {}
        self.auctioneers: Dict[int, _Auctioneer] = {}
        for u in problem.uploaders():
            self.auctioneers[u] = _Auctioneer(self, u, problem.capacity_of(u))
        self._request_of_key: Dict[Tuple[int, Hashable], int] = {}
        for r in range(problem.n_requests):
            request = problem.request(r)
            bidder = self.bidders.get(request.peer)
            if bidder is None:
                bidder = _Bidder(self, request.peer)
                self.bidders[request.peer] = bidder
            candidates = problem.candidates_of(r)
            usable = np.array(
                [problem.capacity_of(int(u)) > 0 for u in candidates], dtype=bool
            )
            state = _RequestState(
                index=r,
                chunk=request.chunk,
                valuation=request.valuation,
                candidates=candidates[usable],
                values=problem.edge_values_of(r)[usable],
            )
            bidder.add_request(state)
            self._request_of_key[(request.peer, request.chunk)] = r
            for u in candidates[usable]:
                self.auctioneers[int(u)].watchers.add(request.peer)

        for node in set(self.bidders) | set(self.auctioneers):
            self.network.register(node, self._dispatch)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off bidding: every bidder evaluates its requests now."""
        if self._started:
            raise RuntimeError("auction already started")
        self._started = True
        for bidder in self.bidders.values():
            self.sim.call_soon(bidder.evaluate_all)

    def run_to_convergence(self, time_limit: Optional[float] = None) -> ScheduleResult:
        """Drain the event queue (= protocol quiescence) and collect the result.

        Raises ``RuntimeError`` when a ``time_limit`` is given and the
        protocol is still chattering past it.
        """
        if not self._started:
            self.start()
        until = None if time_limit is None else self.sim.now + time_limit
        self.sim.run(until=until)
        if until is not None and self.sim.peek_next_time() is not None:
            raise RuntimeError(
                f"auction not quiescent after {time_limit}s "
                f"({self.network.sent.total()} messages sent)"
            )
        return self.result()

    def result(self) -> ScheduleResult:
        """Assemble the schedule from the auctioneers' assignment sets."""
        assigned = np.full(self.problem.n_requests, -1, dtype=np.int64)
        for u, auctioneer in self.auctioneers.items():
            for request_key in auctioneer.aset.bids:
                assigned[self._request_of_key[request_key]] = u
        prices = {u: a.price for u, a in self.auctioneers.items()}
        self.stats.rounds = self.stats.bids_submitted
        etas = self._etas(prices)
        return ScheduleResult.from_assignment_ids(
            assigned, prices=prices, etas=etas, stats=self.stats
        )

    # ------------------------------------------------------------------
    # Section IV-C: dynamics
    # ------------------------------------------------------------------
    def depart_peer(self, peer: int) -> None:
        """Remove a peer mid-auction (its uploads and downloads are voided)."""
        self._departed.add(peer)
        self.network.unregister(peer)
        # Void allocations the departed peer held at other auctioneers; its
        # in-flight bids are dropped on arrival (see _dispatch).
        for auctioneer in self.auctioneers.values():
            stale = [key for key in auctioneer.aset.bids if key[0] == peer]
            for key in stale:
                auctioneer.aset.remove(key)
        auctioneer = self.auctioneers.pop(peer, None)
        if auctioneer is not None:
            # Displaced bidders re-bid at the remaining auctioneers.
            for bidder_peer, chunk in list(auctioneer.aset.bids):
                bidder = self.bidders.get(bidder_peer)
                if bidder is None:
                    continue
                request = bidder._assigned_for(peer, chunk)
                if request is not None:
                    request.state = _UNASSIGNED
                    request.assigned_to = None
                    request.candidates, request.values = _drop_candidate(
                        request, peer
                    )
                    self.sim.call_soon(
                        (lambda b, q: (lambda: b.evaluate(q)))(bidder, request)
                    )
        bidder = self.bidders.pop(peer, None)
        if bidder is not None:
            for request in bidder.requests:
                request.state = _RETIRED
        # Remaining bidders must not target the departed uploader again.
        for other in self.bidders.values():
            for request in other.requests:
                if peer in request.candidates:
                    request.candidates, request.values = _drop_candidate(request, peer)
                    if request.state == _DORMANT:
                        request.state = _UNASSIGNED
                        self.sim.call_soon(
                            (lambda b, q: (lambda: b.evaluate(q)))(other, request)
                        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def record_price(self, uploader: int, price: float) -> None:
        self.price_events.append(PriceEvent(self.sim.now, uploader, price))

    def _dispatch(self, msg: Message) -> None:
        if isinstance(msg, BidMessage):
            if msg.src in self._departed:
                return  # in-flight bid from a peer that has left
            auctioneer = self.auctioneers.get(msg.dst)
            if auctioneer is not None:
                auctioneer.on_bid(msg)
            return
        bidder = self.bidders.get(msg.dst)
        if bidder is None:
            return
        if isinstance(msg, AcceptMessage):
            bidder.on_accept(msg)
        elif isinstance(msg, RejectMessage):
            bidder.on_reject(msg)
        elif isinstance(msg, EvictMessage):
            bidder.on_evict(msg)
        elif isinstance(msg, PriceUpdateMessage):
            bidder.on_price_update(msg)

    def _etas(self, prices: Dict[int, float]) -> Dict[int, float]:
        # Zero-capacity (or departed) uploaders are excluded: their dual
        # price is free, so their edges do not constrain η.
        etas: Dict[int, float] = {}
        for r in range(self.problem.n_requests):
            candidates = self.problem.candidates_of(r)
            values = self.problem.edge_values_of(r)
            best = 0.0
            for u, value in zip(candidates, values):
                u = int(u)
                if u not in self.auctioneers or self.problem.capacity_of(u) == 0:
                    continue
                best = max(best, float(value) - prices.get(u, 0.0))
            etas[r] = best
        return etas

    def price_series(self, uploader: int) -> Tuple[List[float], List[float]]:
        """(times, prices) of one uploader's λ over the auction."""
        times = [e.time for e in self.price_events if e.uploader == uploader]
        prices = [e.price for e in self.price_events if e.uploader == uploader]
        return times, prices

    def convergence_time(self) -> float:
        """Time of the last price change (0 when no price ever moved)."""
        if not self.price_events:
            return 0.0
        return max(e.time for e in self.price_events)


def _drop_candidate(
    request: _RequestState, uploader: int
) -> Tuple[np.ndarray, np.ndarray]:
    keep = request.candidates != uploader
    return request.candidates[keep], request.values[keep]
