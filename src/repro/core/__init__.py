"""The paper's contribution: welfare ILP, primal-dual auction, oracles, baselines."""

from .assignment import AssignmentExpansion, expand_to_assignment
from .auction import (
    DEFAULT_EPSILON,
    AuctionNonConvergence,
    AuctionSolver,
    PriceTrace,
)
from .baselines import (
    LocalityRetryScheduler,
    NetworkAgnosticScheduler,
    RandomScheduler,
    SimpleLocalityScheduler,
    UtilityGreedyScheduler,
)
from .distributed import DistributedAuction, PriceEvent
from .duality import (
    CertificateReport,
    check_complementary_slackness,
    dual_objective,
    duality_gap,
    verify_theorem1,
)
from .epsilon_scaling import ScaledAuctionSolver, ScalingPhase
from .exact import LPSolution, solve_hungarian, solve_lp_relaxation, solve_min_cost_flow
from .problem import (
    ChunkRequest,
    CSRView,
    DenseView,
    ProblemBuilder,
    SchedulingProblem,
    random_problem,
)
from .result import ScheduleResult, SolverStats
from .strategic import ManipulationRow, manipulation_study, true_utility_of_peer
from .vcg import VCGOutcome, vcg_payments
from .scheduler import (
    AuctionScheduler,
    DistributedAuctionScheduler,
    ChunkScheduler,
    HungarianScheduler,
    LPScheduler,
    available_schedulers,
    make_scheduler,
)

__all__ = [
    "AssignmentExpansion",
    "AuctionNonConvergence",
    "AuctionScheduler",
    "AuctionSolver",
    "CSRView",
    "CertificateReport",
    "ChunkRequest",
    "ChunkScheduler",
    "DEFAULT_EPSILON",
    "DenseView",
    "DistributedAuction",
    "DistributedAuctionScheduler",
    "HungarianScheduler",
    "LPScheduler",
    "LPSolution",
    "ManipulationRow",
    "LocalityRetryScheduler",
    "NetworkAgnosticScheduler",
    "PriceEvent",
    "PriceTrace",
    "ProblemBuilder",
    "RandomScheduler",
    "ScaledAuctionSolver",
    "ScalingPhase",
    "ScheduleResult",
    "SchedulingProblem",
    "SimpleLocalityScheduler",
    "SolverStats",
    "UtilityGreedyScheduler",
    "VCGOutcome",
    "available_schedulers",
    "check_complementary_slackness",
    "dual_objective",
    "duality_gap",
    "expand_to_assignment",
    "manipulation_study",
    "make_scheduler",
    "random_problem",
    "solve_hungarian",
    "solve_lp_relaxation",
    "solve_min_cost_flow",
    "true_utility_of_peer",
    "vcg_payments",
    "verify_theorem1",
]
