"""The paper's contribution: welfare ILP, primal-dual auction, oracles, baselines."""

from .assignment import AssignmentExpansion, expand_to_assignment
from .auction import (
    DEFAULT_EPSILON,
    AuctionNonConvergence,
    AuctionSolver,
    PriceTrace,
)
from .baselines import (
    LocalityRetryScheduler,
    NetworkAgnosticScheduler,
    RandomScheduler,
    SimpleLocalityScheduler,
    UtilityGreedyScheduler,
)
from .distributed import DistributedAuction, PriceEvent
from .duality import (
    CertificateReport,
    check_complementary_slackness,
    dual_objective,
    duality_gap,
    verify_theorem1,
)
from .epsilon_scaling import ScaledAuctionSolver, ScalingPhase
from .exact import LPSolution, solve_hungarian, solve_lp_relaxation, solve_min_cost_flow
from .problem import (
    ChunkRequest,
    CSRView,
    DenseView,
    ProblemBuilder,
    SchedulingProblem,
    random_problem,
)
from .result import ScheduleResult, SolverStats
from .sharding import (
    ShardPlan,
    ShardedAuctionSolver,
    ShardedSolveReport,
    boundary_uploaders,
    plan_shards,
    rows_view,
)
from .strategic import ManipulationRow, manipulation_study, true_utility_of_peer
from .vcg import VCGOutcome, vcg_payments
from .workers import ShardWorkerPool, WorkerError, workers_available
from .scheduler import (
    AuctionScheduler,
    DistributedAuctionScheduler,
    ChunkScheduler,
    HungarianScheduler,
    LPScheduler,
    ShardedAuctionScheduler,
    available_schedulers,
    make_scheduler,
)

__all__ = [
    "AssignmentExpansion",
    "AuctionNonConvergence",
    "AuctionScheduler",
    "AuctionSolver",
    "CSRView",
    "CertificateReport",
    "ChunkRequest",
    "ChunkScheduler",
    "DEFAULT_EPSILON",
    "DenseView",
    "DistributedAuction",
    "DistributedAuctionScheduler",
    "HungarianScheduler",
    "LPScheduler",
    "LPSolution",
    "ManipulationRow",
    "LocalityRetryScheduler",
    "NetworkAgnosticScheduler",
    "PriceEvent",
    "PriceTrace",
    "ProblemBuilder",
    "RandomScheduler",
    "ScaledAuctionSolver",
    "ScalingPhase",
    "ScheduleResult",
    "SchedulingProblem",
    "ShardPlan",
    "ShardWorkerPool",
    "ShardedAuctionScheduler",
    "ShardedAuctionSolver",
    "ShardedSolveReport",
    "SimpleLocalityScheduler",
    "SolverStats",
    "WorkerError",
    "UtilityGreedyScheduler",
    "VCGOutcome",
    "available_schedulers",
    "boundary_uploaders",
    "check_complementary_slackness",
    "dual_objective",
    "duality_gap",
    "expand_to_assignment",
    "manipulation_study",
    "make_scheduler",
    "plan_shards",
    "random_problem",
    "rows_view",
    "solve_hungarian",
    "solve_lp_relaxation",
    "solve_min_cost_flow",
    "true_utility_of_peer",
    "vcg_payments",
    "verify_theorem1",
    "workers_available",
]
