"""Exact reference solvers used to verify Theorem 1 numerically.

The paper proves the auction optimal; we *check* that claim against
three independent oracles:

* :func:`solve_hungarian` — scipy's Jonker-Volgenant solver on the
  Fig. 1(b) assignment expansion (exact for any weights);
* :func:`solve_lp_relaxation` — the LP relaxation via HiGHS; the
  constraint matrix is totally unimodular, so the LP optimum equals the
  ILP optimum and a vertex solution is integral;
* :func:`solve_min_cost_flow` — networkx network simplex on a flow
  formulation with integerized costs (exact on integer-weight
  instances).

These are centralized and polynomial — fine as oracles, useless as P2P
protocols, which is the paper's point in designing the auction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import networkx as nx
import numpy as np
from scipy import optimize, sparse

from .assignment import expand_to_assignment
from .problem import SchedulingProblem
from .result import ScheduleResult, SolverStats

__all__ = [
    "LPSolution",
    "solve_hungarian",
    "solve_lp_relaxation",
    "solve_min_cost_flow",
]


def solve_hungarian(problem: SchedulingProblem) -> ScheduleResult:
    """Exact optimum via linear_sum_assignment on the slot expansion."""
    expansion = expand_to_assignment(problem)
    if expansion.weights.size == 0:
        return ScheduleResult.from_assignment_ids(
            np.full(problem.n_requests, -1, dtype=np.int64),
            stats=SolverStats(converged=True),
        )
    rows, cols = optimize.linear_sum_assignment(expansion.weights, maximize=True)
    return expansion.to_result(rows, cols)


@dataclass
class LPSolution:
    """LP relaxation outcome: optimum value, solution and integrality."""

    value: float
    x: np.ndarray  # flat edge variables, ordered by (request, candidate)
    integral: bool
    result: ScheduleResult

    @property
    def max_fractionality(self) -> float:
        """Distance of the most fractional variable from {0, 1}."""
        if self.x.size == 0:
            return 0.0
        return float(np.minimum(self.x, 1.0 - self.x).max())


def solve_lp_relaxation(
    problem: SchedulingProblem, integrality_tol: float = 1e-6
) -> LPSolution:
    """Solve the LP relaxation (paper eq. (1) without integrality) with HiGHS.

    Variables are the edges ``a_{u→d}^{(c)} ∈ [0, 1]``; the two
    constraint families are uploader capacity and one-source-per-request.
    """
    edges = []  # (request index, uploader id, value)
    for r in range(problem.n_requests):
        for u, value in zip(problem.candidates_of(r), problem.edge_values_of(r)):
            edges.append((r, int(u), float(value)))
    n_edges = len(edges)
    n_requests = problem.n_requests
    uploaders = problem.uploaders()
    uploader_row = {u: i for i, u in enumerate(uploaders)}

    if n_edges == 0:
        empty = ScheduleResult.from_assignment_ids(
            np.full(n_requests, -1, dtype=np.int64),
            stats=SolverStats(converged=True),
        )
        return LPSolution(value=0.0, x=np.zeros(0), integral=True, result=empty)

    c = -np.array([value for _, __, value in edges])  # linprog minimizes
    data, row_idx, col_idx = [], [], []
    for j, (r, u, _) in enumerate(edges):
        row_idx.append(uploader_row[u])
        col_idx.append(j)
        data.append(1.0)
        row_idx.append(len(uploaders) + r)
        col_idx.append(j)
        data.append(1.0)
    a_ub = sparse.csr_matrix(
        (data, (row_idx, col_idx)),
        shape=(len(uploaders) + n_requests, n_edges),
    )
    b_ub = np.concatenate(
        [
            np.array([problem.capacity_of(u) for u in uploaders], dtype=float),
            np.ones(n_requests),
        ]
    )
    lp = optimize.linprog(
        c, A_ub=a_ub, b_ub=b_ub, bounds=(0.0, 1.0), method="highs"
    )
    if not lp.success:
        raise RuntimeError(f"LP relaxation failed: {lp.message}")
    x = lp.x
    integral = bool(np.all(np.minimum(x, 1.0 - x) <= integrality_tol))

    assigned = np.full(n_requests, -1, dtype=np.int64)
    for j, (r, u, _) in enumerate(edges):
        if x[j] > 0.5:
            assigned[r] = u
    result = ScheduleResult.from_assignment_ids(
        assigned, stats=SolverStats(converged=True)
    )
    return LPSolution(value=float(-lp.fun), x=x, integral=integral, result=result)


def solve_min_cost_flow(
    problem: SchedulingProblem, scale: float = 10**6
) -> ScheduleResult:
    """Exact optimum via network simplex on integerized costs.

    Each request pushes one flow unit either through a candidate edge
    (cost ``−round(value·scale)``) or through a zero-cost bypass (the
    outside option).  Edges with non-positive value are pruned: the ILP
    never gains from them.  Exact when ``value·scale`` is integral;
    otherwise accurate to ``1/scale`` per edge.
    """
    graph = nx.DiGraph()
    n_requests = problem.n_requests
    source, sink = "S", "T"
    graph.add_node(source, demand=-n_requests)
    graph.add_node(sink, demand=n_requests)
    for r in range(n_requests):
        rnode = ("r", r)
        graph.add_edge(source, rnode, capacity=1, weight=0)
        graph.add_edge(rnode, sink, capacity=1, weight=0)  # bypass: stay unserved
        for u, value in zip(problem.candidates_of(r), problem.edge_values_of(r)):
            if value <= 0:
                continue
            graph.add_edge(
                rnode, ("u", int(u)), capacity=1, weight=-int(round(value * scale))
            )
    for u in problem.uploaders():
        unode = ("u", u)
        if unode in graph:
            graph.add_edge(unode, sink, capacity=problem.capacity_of(u), weight=0)

    _, flow = nx.network_simplex(graph)
    assigned = np.full(n_requests, -1, dtype=np.int64)
    for r in range(n_requests):
        for dst, units in flow.get(("r", r), {}).items():
            if units > 0 and isinstance(dst, tuple) and dst[0] == "u":
                assigned[r] = dst[1]
    return ScheduleResult.from_assignment_ids(
        assigned, stats=SolverStats(converged=True)
    )
