"""Message types for the distributed auction protocol.

Section IV-B of the paper describes the auction as an exchange of bids,
rejections/evictions and price updates between bidder peers and
auctioneer peers; Section V's emulator adds buffer-map exchange.  These
dataclasses are the wire format of our simulated protocol
(:mod:`repro.core.distributed` and :mod:`repro.p2p.peer`).

Peer ids are plain ints; chunk ids are ``(video_id, chunk_index)`` pairs
in the full system, or bare ints in the standalone auction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Tuple

__all__ = [
    "AcceptMessage",
    "BidMessage",
    "BufferMapMessage",
    "EvictMessage",
    "Message",
    "PriceUpdateMessage",
    "RejectMessage",
    "RequestKey",
]

# A request is identified by (downstream peer id, chunk id), the paper's (I_d, c).
RequestKey = Tuple[int, Hashable]


@dataclass(frozen=True)
class Message:
    """Base envelope: every protocol message names its source and destination."""

    src: int
    dst: int

    @property
    def kind(self) -> str:
        """Short lowercase name used by the network statistics."""
        return type(self).__name__.replace("Message", "").lower()


@dataclass(frozen=True)
class BufferMapMessage(Message):
    """Advertises which chunks ``src`` caches (paper: bitmap exchange)."""

    chunks: frozenset = field(default_factory=frozenset)


@dataclass(frozen=True)
class BidMessage(Message):
    """Bid ``b(d, c, u)`` from bidder ``src`` = d to auctioneer ``dst`` = u."""

    chunk: Hashable = None
    bid: float = 0.0

    @property
    def request(self) -> RequestKey:
        return (self.src, self.chunk)


@dataclass(frozen=True)
class AcceptMessage(Message):
    """Auctioneer ``src`` provisionally accepted ``dst``'s bid for ``chunk``."""

    chunk: Hashable = None


@dataclass(frozen=True)
class RejectMessage(Message):
    """Auctioneer ``src`` rejected ``dst``'s bid (bid ≤ current price).

    Carries the price so the bidder can immediately recompute without
    waiting for a separate price-update message.
    """

    chunk: Hashable = None
    price: float = 0.0


@dataclass(frozen=True)
class EvictMessage(Message):
    """A previously accepted bid of ``dst`` was displaced by a higher bid."""

    chunk: Hashable = None
    price: float = 0.0


@dataclass(frozen=True)
class PriceUpdateMessage(Message):
    """Auctioneer ``src`` announces its new unit-bandwidth price λ_u."""

    price: float = 0.0
