"""Discrete-event simulation substrate (engine, RNG streams, message network)."""

from .engine import EventHandle, SimulationError, Simulator, Timer
from .messages import (
    AcceptMessage,
    BidMessage,
    BufferMapMessage,
    EvictMessage,
    Message,
    PriceUpdateMessage,
    RejectMessage,
)
from .network import ConstantLatency, CostLatency, SimNetwork
from .rng import RngRegistry, derive_seed

__all__ = [
    "AcceptMessage",
    "BidMessage",
    "BufferMapMessage",
    "ConstantLatency",
    "CostLatency",
    "EvictMessage",
    "EventHandle",
    "Message",
    "PriceUpdateMessage",
    "RejectMessage",
    "RngRegistry",
    "SimNetwork",
    "SimulationError",
    "Simulator",
    "Timer",
    "derive_seed",
]
