"""Simulated message network with latency, jitter and loss.

The paper's emulator sends real packets between peer processes; here a
:class:`SimNetwork` delivers :class:`~repro.sim.messages.Message` objects
through the discrete-event engine with a configurable latency model.
The latency model is typically derived from the same ISP cost matrix the
auction uses (one cost unit ≈ ``seconds_per_cost_unit`` seconds), so the
within-slot convergence timeline of Fig. 2 is meaningful.

Loss and partition injection exist for failure testing: the distributed
auction must converge (possibly to a poorer assignment) when bids or
price updates are dropped, mirroring Section IV-C's robustness claims.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional, Set, Tuple

import numpy as np

from .engine import Simulator
from .messages import Message

__all__ = ["ConstantLatency", "CostLatency", "SimNetwork"]

LatencyModel = Callable[[int, int], float]


class ConstantLatency:
    """Latency model returning a fixed delay for every pair."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        self.delay = float(delay)

    def __call__(self, src: int, dst: int) -> float:
        return self.delay


class CostLatency:
    """Latency proportional to a pairwise network-cost function.

    ``cost_fn(src, dst)`` is the same ``w_{u→d}`` the auction charges
    (see :mod:`repro.net.costs`), scaled by ``seconds_per_cost_unit``.
    A floor keeps zero-cost intra-ISP pairs from delivering instantly.
    """

    def __init__(
        self,
        cost_fn: Callable[[int, int], float],
        seconds_per_cost_unit: float = 0.1,
        floor: float = 0.005,
    ) -> None:
        self.cost_fn = cost_fn
        self.seconds_per_cost_unit = float(seconds_per_cost_unit)
        self.floor = float(floor)

    def __call__(self, src: int, dst: int) -> float:
        return max(self.floor, self.cost_fn(src, dst) * self.seconds_per_cost_unit)


class SimNetwork:
    """Delivers messages between registered handlers via the event engine.

    Parameters
    ----------
    sim:
        The discrete-event simulator supplying the clock.
    latency:
        Callable ``(src, dst) -> seconds``.
    loss_probability:
        Independent drop probability per message (failure injection).
    jitter:
        Uniform multiplicative jitter half-width; the effective delay is
        ``latency * uniform(1 - jitter, 1 + jitter)``.
    rng:
        Generator used for loss and jitter draws.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(f"loss_probability must be in [0, 1], got {loss_probability!r}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self.sim = sim
        self.latency: LatencyModel = latency or ConstantLatency()
        self.loss_probability = float(loss_probability)
        self.jitter = float(jitter)
        self.rng = rng or np.random.default_rng(0)
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._partitioned: Set[Tuple[int, int]] = set()
        self.sent = Counter()
        self.delivered = Counter()
        self.dropped = Counter()

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Attach ``handler`` to receive messages addressed to ``node_id``."""
        self._handlers[node_id] = handler

    def unregister(self, node_id: int) -> None:
        """Detach a node; in-flight messages to it are dropped on arrival."""
        self._handlers.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._handlers

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def partition(self, a: int, b: int) -> None:
        """Block both directions between ``a`` and ``b``."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: int, b: int) -> None:
        """Remove a partition between ``a`` and ``b``."""
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Enqueue ``message`` for delivery.

        Returns ``True`` if the message was scheduled, ``False`` when it
        was dropped (loss, partition, or unknown destination at send
        time).  Delivery may still silently fail later if the receiver
        unregisters while the message is in flight — exactly the peer-
        departure race Section IV-C discusses.
        """
        kind = message.kind
        self.sent[kind] += 1
        if message.dst not in self._handlers:
            self.dropped[kind] += 1
            return False
        if (message.src, message.dst) in self._partitioned:
            self.dropped[kind] += 1
            return False
        if self.loss_probability > 0.0 and self.rng.random() < self.loss_probability:
            self.dropped[kind] += 1
            return False
        delay = self.latency(message.src, message.dst)
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        self.sim.schedule(max(0.0, delay), lambda: self._deliver(message))
        return True

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            self.dropped[message.kind] += 1
            return
        self.delivered[message.kind] += 1
        handler(message)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Counts of sent/delivered/dropped messages by message kind."""
        return {
            "sent": dict(self.sent),
            "delivered": dict(self.delivered),
            "dropped": dict(self.dropped),
        }
