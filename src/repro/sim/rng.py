"""Deterministic random-stream management.

Every stochastic component of the reproduction (arrivals, video choice,
link costs, upload capacities, message latencies, ...) draws from its own
named stream derived from a single root seed.  This keeps experiments
reproducible and lets one component's draw count change without
perturbing the others — essential when comparing schedulers on identical
workloads, as the paper does.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``root_seed`` and ``name``.

    Uses CRC32 over the name mixed with the root seed via SeedSequence so
    the mapping is stable across processes and Python versions (unlike
    ``hash``).
    """
    name_key = zlib.crc32(name.encode("utf-8"))
    seq = np.random.SeedSequence(entropy=[int(root_seed) & (2**63 - 1), name_key])
    return int(seq.generate_state(1, np.uint64)[0])


class RngRegistry:
    """Registry of named, independently-seeded numpy random generators.

    Example
    -------
    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.stream("arrivals").integers(0, 100)
    >>> b = RngRegistry(seed=7).stream("arrivals").integers(0, 100)
    >>> int(a) == int(b)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._seed, name))
        return self._streams[name]

    def streams(self, names: Iterable[str]) -> list[np.random.Generator]:
        """Return generators for several names at once."""
        return [self.stream(name) for name in names]

    def fork(self, suffix: str) -> "RngRegistry":
        """Return a registry whose streams are all independent of this one.

        Useful to give each simulated peer its own namespace:
        ``registry.fork(f"peer-{pid}")``.
        """
        return RngRegistry(derive_seed(self._seed, f"fork:{suffix}"))

    def reset(self) -> None:
        """Drop all materialized streams; they are recreated from the seed."""
        self._streams.clear()
