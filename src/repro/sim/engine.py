"""Discrete-event simulation engine.

The paper evaluates its auction protocol on a Java emulator running real
traffic between peer processes.  We replace that testbed with a
single-process discrete-event simulator: callbacks are scheduled at
simulated timestamps and executed in timestamp order.  Everything that
the emulator measured (prices over time, per-slot welfare, traffic,
misses) is a function of the ordering of protocol events, which this
engine reproduces deterministically.

The engine is deliberately small: an event is ``(time, priority, seq,
callback)``.  Ties on ``time`` break first on ``priority`` (lower runs
first) and then on insertion order, which makes runs reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Timer",
]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g., scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation.

    Cancellation is lazy: the event stays in the heap but is skipped when
    popped.  ``active`` is ``True`` until the event has either run or been
    cancelled.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not run, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        self._event.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, current time is {self._now!r}"
            )
        event = _Event(float(time), priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_soon(self, callback: Callable[[], None], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, callback, priority)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order until the queue drains.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is then advanced to ``until``.  ``None`` runs to queue
            exhaustion.
        max_events:
            Optional safety valve on the number of events to execute.

        Returns
        -------
        int
            Number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                self._drop_cancelled_head()
                if not self._heap:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.cancelled = True  # consumed: handle becomes inactive
                event.callback()
                self._events_processed += 1
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return executed

    def step(self) -> bool:
        """Execute exactly one event.  Returns ``False`` when none remain."""
        return self.run(max_events=1) == 1

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)


class Timer:
    """A recurring timer bound to a :class:`Simulator`.

    Fires ``callback`` every ``interval`` simulated seconds until
    :meth:`stop` is called.  Used by the P2P system for slot boundaries.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        start_delay: float = 0.0,
        priority: int = 0,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive, got {interval!r}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._priority = priority
        self._stopped = False
        self._fires = 0
        self._handle: Optional[EventHandle] = sim.schedule(
            start_delay, self._fire, priority
        )

    @property
    def fires(self) -> int:
        """Number of times the timer has fired."""
        return self._fires

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        """Stop the timer; pending fire is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._fires += 1
        self._handle = self._sim.schedule(self._interval, self._fire, self._priority)
        self._callback()


def run_callbacks_in_order(sim: Simulator, items: list[tuple[float, Any]]) -> list[Any]:
    """Test helper: schedule ``items`` as (time, value) and return values in fire order."""
    out: list[Any] = []
    for time, value in items:
        sim.schedule_at(time, (lambda v: (lambda: out.append(v)))(value))
    sim.run()
    return out
