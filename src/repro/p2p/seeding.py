"""Seed-peer placement.

Section V: "In each ISP, for each video, there are 2 seed peers with a
upload bandwidth that is 8 times of the streaming rate, which cache the
complete video."  Seeds guarantee every chunk exists somewhere in every
ISP, making the auction's sufficiency assumption (Theorem 1) realistic.
"""

from __future__ import annotations

from typing import Iterator, List

from ..vod.buffer import ChunkBuffer
from ..vod.video import VideoCatalog
from .config import SystemConfig
from .peer import Peer

__all__ = ["create_seeds"]


def create_seeds(
    config: SystemConfig,
    catalog: VideoCatalog,
    id_source: Iterator[int],
) -> List[Peer]:
    """Build all seed peers: per ISP × video × ``seeds_per_isp_per_video``.

    ``id_source`` yields fresh peer ids.  The caller registers the seeds
    with the topology/tracker/overlay.
    """
    seeds: List[Peer] = []
    capacity = config.peer_capacity_chunks(config.seed_upload_multiple)
    for isp in range(config.n_isps):
        for video in catalog:
            for _ in range(config.seeds_per_isp_per_video):
                buffer = ChunkBuffer(video)
                buffer.fill_range(0, video.n_chunks)
                seeds.append(
                    Peer(
                        peer_id=next(id_source),
                        isp=isp,
                        video=video,
                        upload_capacity_chunks=capacity,
                        buffer=buffer,
                        session=None,
                        is_seed=True,
                    )
                )
    return seeds
