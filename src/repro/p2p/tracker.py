"""The tracker server.

Section V: "There is a track server which keeps track of online peers
and bootstraps new joining peers with a list of neighbors with close
playback positions."  The tracker indexes online peers by video and
ranks bootstrap candidates by playback proximity (seeds rank first:
they serve every position).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from ..net.topology import rank_candidates
from .peer import Peer

__all__ = ["Tracker"]


class Tracker:
    """Online-peer registry and bootstrap neighbor selection.

    ``seed_rank`` ("first" or "random") controls whether seeds are
    guaranteed top-ranked in bootstrap lists or compete at a random
    position rank; see :func:`repro.net.topology.rank_candidates`.
    """

    _NO_MEMBERS: frozenset = frozenset()

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        seed_rank: str = "first",
    ) -> None:
        self._peers: Dict[int, Peer] = {}
        self._by_video: Dict[int, Set[int]] = {}
        self.rng = rng
        self.seed_rank = seed_rank
        #: Monotone counter bumped on every register/unregister; lets
        #: membership-derived caches (the peer-state store's tables, the
        #: staleness tests) key on tracker state without copying it.
        self.version = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, peer: Peer) -> None:
        if peer.peer_id in self._peers:
            raise ValueError(f"peer {peer.peer_id} already registered")
        self._peers[peer.peer_id] = peer
        self._by_video.setdefault(peer.video.video_id, set()).add(peer.peer_id)
        self.version += 1

    def unregister(self, peer_id: int) -> None:
        peer = self._peers.pop(peer_id, None)
        if peer is None:
            raise KeyError(f"peer {peer_id} not registered")
        members = self._by_video.get(peer.video.video_id)
        if members is not None:
            members.discard(peer_id)
            if not members:
                del self._by_video[peer.video.video_id]
        self.version += 1

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def online_peers(self) -> List[int]:
        return list(self._peers)

    def peers_watching(self, video_id: int) -> Set[int]:
        """Online peers (incl. seeds) holding content of ``video_id``."""
        return set(self._by_video.get(video_id, set()))

    def members_view(self, video_id: int):
        """Zero-copy view of ``video_id``'s member set (do not mutate).

        The peer-state store's consistency checks compare their member
        tables against this on every mutation path; returning the live
        set keeps that comparison O(members) with no allocation.
        """
        return self._by_video.get(video_id, self._NO_MEMBERS)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def bootstrap_candidates(self, joiner: Peer) -> List[int]:
        """Candidates for a joining peer, ranked by playback proximity.

        Seeds of the video are always eligible and rank first (they
        cover any playback position).
        """
        video_id = joiner.video.video_id
        candidates = [
            pid for pid in self._by_video.get(video_id, set()) if pid != joiner.peer_id
        ]
        joiner_pos = float(joiner.playback_position() or 0)

        def position_of(pid: int) -> Optional[float]:
            peer = self._peers[pid]
            if peer.is_seed:
                return None  # ranks first
            pos = peer.playback_position()
            return float(pos) if pos is not None else None

        return rank_candidates(
            position_of,
            joiner_pos,
            candidates,
            rng=self.rng,
            seed_rank=self.seed_rank,
        )
