"""P2P system emulator: peers, tracker, churn, seeding, slot loop."""

from .churn import ArrivalPlan, ChurnModel
from .config import SystemConfig
from .peer import Peer
from .seeding import create_seeds
from .system import P2PSystem
from .tracker import Tracker

__all__ = [
    "ArrivalPlan",
    "ChurnModel",
    "P2PSystem",
    "Peer",
    "SystemConfig",
    "Tracker",
    "create_seeds",
]
