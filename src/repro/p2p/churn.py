"""Peer churn: Poisson arrivals, Zipf video choice, early departures.

Section V's dynamic model: "Peers join the system as a Poisson process
with rate 1 peer per second, and are distributed in the 5 ISPs evenly.
When a peer joins the system, it will select video i ... according to
the Zipf-Mandelbrot distribution"; peers "stay until they finish
watching the respective video" (Fig. 3) or "depart at any time with
probability 0.6" (Fig. 6) — we realize the latter by flagging each
arrival with probability ``early_departure_prob`` and drawing its
departure time uniformly within its viewing interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..vod.popularity import ZipfMandelbrot

__all__ = ["ArrivalPlan", "ChurnModel"]


@dataclass(frozen=True)
class ArrivalPlan:
    """One planned peer arrival."""

    time: float
    video_id: int
    upload_multiple: float
    departure_time: Optional[float]  # None = watches to the end


class ChurnModel:
    """Generates the arrival/departure schedule of dynamic experiments.

    Parameters
    ----------
    rng:
        Random stream (dedicated, so churn is identical across scheduler
        comparisons — the paper compares algorithms on the same arrival
        pattern).
    popularity:
        Video selector.
    arrival_rate_per_s:
        Poisson intensity λ of the arrival process.
    upload_range:
        Uniform range of upload-bandwidth multiples ([1, 4] × bitrate).
    early_departure_prob:
        Probability that a peer departs before finishing its video.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        popularity: ZipfMandelbrot,
        arrival_rate_per_s: float = 1.0,
        upload_range: tuple[float, float] = (1.0, 4.0),
        early_departure_prob: float = 0.0,
    ) -> None:
        if arrival_rate_per_s <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {arrival_rate_per_s!r}"
            )
        if not 0.0 <= early_departure_prob <= 1.0:
            raise ValueError("early_departure_prob must be in [0, 1]")
        self.rng = rng
        self.popularity = popularity
        self.arrival_rate_per_s = float(arrival_rate_per_s)
        self.upload_range = upload_range
        self.early_departure_prob = float(early_departure_prob)

    def set_arrival_rate(self, rate_per_s: float) -> None:
        """Change the Poisson intensity λ mid-run (scenario engine hook).

        Takes effect from the *next* inter-arrival draw; the gap already
        sampled at the old rate stands, which is the standard piecewise
        approximation of a non-homogeneous Poisson process at slot
        granularity (diurnal waves, flash-crowd ramps).
        """
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s!r}")
        self.arrival_rate_per_s = float(rate_per_s)

    def set_popularity(self, popularity: ZipfMandelbrot) -> None:
        """Swap the video selector mid-run (popularity drift / new release).

        Future arrivals sample from the new law; each draw still consumes
        exactly one uniform from the churn stream, so the arrival *times*
        of a run are unchanged by the swap.
        """
        self.popularity = popularity

    def next_interarrival(self) -> float:
        """Exponential gap to the next arrival."""
        return float(self.rng.exponential(1.0 / self.arrival_rate_per_s))

    def plan_arrival(self, time: float, video_duration_of) -> ArrivalPlan:
        """Plan the peer arriving at ``time``.

        ``video_duration_of`` maps a video id to its playback duration in
        seconds (used to place the early-departure instant).
        """
        video_id = self.popularity.sample(self.rng)
        lo, hi = self.upload_range
        multiple = float(self.rng.uniform(lo, hi))
        departure: Optional[float] = None
        if self.early_departure_prob and self.rng.random() < self.early_departure_prob:
            duration = float(video_duration_of(video_id))
            departure = time + float(self.rng.uniform(0.0, duration))
        return ArrivalPlan(
            time=time,
            video_id=video_id,
            upload_multiple=multiple,
            departure_time=departure,
        )

    def arrivals_until(self, start: float, end: float, video_duration_of) -> list:
        """All arrivals planned in ``[start, end)`` (convenience for batch setup)."""
        plans = []
        t = start + self.next_interarrival()
        while t < end:
            plans.append(self.plan_arrival(t, video_duration_of))
            t += self.next_interarrival()
        return plans
