"""Persistent columnar (SoA) peer-state store behind the slot pipeline.

Before this module, every :meth:`~repro.p2p.system.P2PSystem.build_problem`
call re-derived its columnar inputs from the Python object graph: it
re-stacked every peer's buffer bitmap into per-video matrices, re-read
every playback position, and walked a per-peer loop to assemble the
candidate CSR — ~0.2 s of the ~0.23 s slot at 2 000 peers.  The store
keeps those columns *alive across slots* and updates them incrementally
at the few places state actually changes:

* **Buffer bitmaps** are not copies at all: each online peer's
  :class:`~repro.vod.buffer.ChunkBuffer` is *rebound* so its backing
  storage is a row of a shared bitmap matrix
  (:meth:`ChunkBuffer.rebind_storage`).  Chunk deliveries in
  ``_apply_transfers`` therefore update the matrix in place — there is
  one storage, so the matrix can never drift from the buffers.
* **Layout**: rows live in :class:`StateBucket` matrices keyed by chunk
  count, so every video of the paper's uniform catalog shares one
  matrix and the batched playback pass is a *single* vectorized sweep,
  not one per video.  :class:`VideoGroup` keeps the per-video sorted
  member-id tables the candidate lookups binary-search; its rows index
  into the bucket.
* **Membership** (member tables, row assignments, capacity / ISP
  columns in peer-dict order) is updated in :meth:`PeerStateStore.admit`
  / :meth:`PeerStateStore.remove`, guarded by
  :attr:`PeerStateStore.membership_version`.
* **Candidate tables** (same-video neighbor rows/ids/costs per peer)
  are invalidated per peer from the overlay's dirty set
  (:meth:`OverlayGraph.consume_dirty`) instead of being version-swept
  wholesale.  Missing entries are built in peer-dict order so the cost
  model samples never-seen pairs in exactly the order the pre-store
  pipeline did (trajectory preservation).
* **Playback** columns (start time/position, last-advance, a
  ``missed``-chunk bitmap matrix mirroring each session's ``missed``
  set) feed both the batched :meth:`PeerStateStore.advance_playback`
  and the window/valuation assembly in
  :meth:`PeerStateStore.assemble_requests`.  Positions are cheaply
  re-validated against the session objects every call (one ``fromiter``
  per bucket), so state mutated outside the store — tests, benchmark
  snapshot/restore — is detected and the affected rows resynced rather
  than silently trusted.

The assembly matches :meth:`P2PSystem.build_problem_reference` bit for
bit (request order, valuations, candidate sets, costs) and the batched
advance matches the per-session ``advance_to`` /
``advance_to_reference`` pins; the property suite under
``tests/properties/`` fuzzes whole scenarios against all three.

Window gathers use :func:`numpy.lib.stride_tricks.sliding_window_view`
over the matrices, which are padded with ``window`` always-False columns
so a window starting at any playback position stays in bounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..net.costs import CostModel
from ..net.topology import OverlayGraph
from ..vod.valuation import DeadlineValuation
from ..vod.video import Video
from .peer import Peer

__all__ = ["PeerStateStore", "StateBucket", "VideoGroup"]

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=float)

#: Sessions this many chunks behind their due position are advanced
#: individually (their catch-up window would blow up the batch gather).
_BATCH_ADVANCE_LIMIT = 1024


class StateBucket:
    """Row storage shared by every video with the same chunk count.

    Rows are assigned on admission and stay stable until the peer
    departs (freed rows are zeroed and recycled — possibly by a peer of
    a *different* video with the same chunk count).  Holding all
    same-shape videos in one matrix lets the batched playback advance
    run as one vectorized sweep regardless of catalog size.
    """

    def __init__(self, n_chunks: int, window: int) -> None:
        self.n_chunks = int(n_chunks)
        self.window = max(1, int(window))
        #: Matrix width: chunk columns plus ``window`` always-False pad
        #: columns so window gathers starting at any position ≤ n_chunks
        #: stay in bounds.
        self.padded = self.n_chunks + self.window
        cap = 8
        self.masks = np.zeros((cap, self.padded), dtype=bool)
        self.missed = np.zeros((cap, self.padded), dtype=bool)
        self.free_rows: List[int] = []
        self.n_rows = 0  # high-water mark of allocated rows
        # Row-indexed columns (valid where a peer occupies the row).
        self.peer_by_row: List[Optional[Peer]] = [None] * cap
        self.start_time = np.zeros(cap, dtype=float)
        self.start_pos = np.zeros(cap, dtype=np.int64)
        self.position = np.zeros(cap, dtype=np.int64)
        self.last_advance = np.zeros(cap, dtype=float)
        self.cps = np.zeros(cap, dtype=float)  # chunks per second
        self.has_session = np.zeros(cap, dtype=bool)
        # Bucket-wide watcher view (rows with sessions, row order).
        self._watchers_stale = True
        self._watcher_rows = _EMPTY_INT
        self._watcher_sessions: List = []

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old_cap = self.masks.shape[0]
        new_cap = old_cap * 2
        masks = np.zeros((new_cap, self.padded), dtype=bool)
        missed = np.zeros((new_cap, self.padded), dtype=bool)
        masks[:old_cap] = self.masks
        missed[:old_cap] = self.missed
        self.masks = masks
        self.missed = missed
        for arr_name in (
            "start_time", "start_pos", "position", "last_advance",
            "cps", "has_session",
        ):
            old = getattr(self, arr_name)
            new = np.zeros(new_cap, dtype=old.dtype)
            new[:old_cap] = old
            setattr(self, arr_name, new)
        self.peer_by_row.extend([None] * (new_cap - old_cap))
        # Re-point every bound buffer at its (already copied) new row.
        for row, peer in enumerate(self.peer_by_row[:old_cap]):
            if peer is not None:
                peer.buffer.rebind_storage(
                    self.masks[row, : self.n_chunks], copy=False
                )

    def admit_row(self, peer: Peer) -> int:
        """Assign ``peer`` a row, bind its buffer, fill its columns."""
        if self.free_rows:
            row = self.free_rows.pop()
        else:
            if self.n_rows >= self.masks.shape[0]:
                self._grow()
            row = self.n_rows
            self.n_rows += 1
        self.masks[row] = False
        self.missed[row] = False
        peer.buffer.rebind_storage(self.masks[row, : self.n_chunks])
        self.peer_by_row[row] = peer
        self.cps[row] = peer.video.chunks_per_second
        session = peer.session
        if session is not None:
            self.start_time[row] = session.start_time
            self.start_pos[row] = session.start_position
            self.position[row] = session.position
            self.last_advance[row] = session._last_advance
            self.has_session[row] = True
            if session.missed:
                idx = np.fromiter(
                    session.missed, dtype=np.int64, count=len(session.missed)
                )
                self.missed[row, idx] = True
        else:
            self.has_session[row] = False
        self._watchers_stale = True
        return row

    def release_row(self, peer: Peer, row: int) -> None:
        """Free ``row``; the peer's buffer takes back owned storage."""
        peer.buffer.unbind_storage()
        self.masks[row] = False
        self.missed[row] = False
        self.peer_by_row[row] = None
        self.has_session[row] = False
        self.free_rows.append(row)
        self._watchers_stale = True

    def watcher_arrays(self) -> Tuple[np.ndarray, List]:
        """``(rows, sessions)`` of every occupied row with a session."""
        if self._watchers_stale:
            occupied = self.has_session[: self.n_rows]
            rows = np.nonzero(occupied)[0].astype(np.int64)
            self._watcher_rows = rows
            self._watcher_sessions = [
                self.peer_by_row[r].session for r in rows.tolist()
            ]
            self._watchers_stale = False
        return self._watcher_rows, self._watcher_sessions

    def resync_row(self, row: int, session) -> None:
        """Rebuild one row's playback state from the session object."""
        self.position[row] = session.position
        self.last_advance[row] = session._last_advance
        self.missed[row] = False
        if session.missed:
            idx = np.fromiter(
                session.missed, dtype=np.int64, count=len(session.missed)
            )
            self.missed[row, idx] = True


class VideoGroup:
    """Per-video membership tables over a :class:`StateBucket`.

    ``member_ids`` / ``member_rows`` keep the sorted-id view the
    candidate lookups binary-search; rows index into :attr:`bucket`.
    """

    def __init__(self, video: Video, bucket: StateBucket) -> None:
        self.video = video
        self.bucket = bucket
        self.n_chunks = int(video.n_chunks)
        self.window = bucket.window
        self.row_of: Dict[int, int] = {}
        self.member_ids = _EMPTY_INT  # sorted peer ids
        self.member_rows = _EMPTY_INT  # bucket rows aligned with member_ids
        # Watcher view (members with playback sessions), member order.
        self._watchers_stale = True
        self._watcher_rows = _EMPTY_INT
        self._watcher_ids = _EMPTY_INT

    def admit(self, peer: Peer) -> int:
        row = self.bucket.admit_row(peer)
        self.row_of[peer.peer_id] = row
        at = int(np.searchsorted(self.member_ids, peer.peer_id))
        self.member_ids = np.insert(self.member_ids, at, peer.peer_id)
        self.member_rows = np.insert(self.member_rows, at, row)
        self._watchers_stale = True
        return row

    def remove(self, peer: Peer) -> None:
        row = self.row_of.pop(peer.peer_id)
        self.bucket.release_row(peer, row)
        at = int(np.searchsorted(self.member_ids, peer.peer_id))
        self.member_ids = np.delete(self.member_ids, at)
        self.member_rows = np.delete(self.member_rows, at)
        self._watchers_stale = True

    @property
    def n_members(self) -> int:
        return len(self.member_ids)

    def watcher_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, ids)`` of members with sessions, sorted-id order."""
        if self._watchers_stale:
            with_session = self.bucket.has_session[self.member_rows]
            self._watcher_rows = self.member_rows[with_session]
            self._watcher_ids = self.member_ids[with_session]
            self._watchers_stale = False
        return self._watcher_rows, self._watcher_ids


class PeerStateStore:
    """All columnar peer state, maintained incrementally across slots.

    Owned by :class:`~repro.p2p.system.P2PSystem`; mutated only through
    :meth:`admit` / :meth:`remove` plus the batched playback commit.
    Buffer bitmaps need no hook at all — delivery writes go straight
    into the matrices because the buffers are views into them.
    """

    def __init__(
        self, overlay: OverlayGraph, costs: CostModel, window: int
    ) -> None:
        self.overlay = overlay
        self.costs = costs
        self.window = max(1, int(window))
        self.buckets: Dict[int, StateBucket] = {}
        self.groups: Dict[int, VideoGroup] = {}
        #: Bumped on every admit/remove; keys membership-derived caches.
        self.membership_version = 0
        #: Bumped whenever any candidate entry is dropped; lets tests
        #: (and future caches) observe candidate invalidation.
        self.candidate_epoch = 0
        self.seed_ids: Set[int] = set()
        # Peer-dict-order columns (ids ascend because admission ids are
        # monotone; an out-of-order admit flips the fast-path flag).
        cap = 16
        self._order_ids = np.zeros(cap, dtype=np.int64)
        self._order_caps = np.zeros(cap, dtype=np.int64)
        self._order_isps = np.zeros(cap, dtype=np.int64)
        self._order_departure = np.full(cap, np.inf, dtype=float)
        self._order_seed = np.zeros(cap, dtype=bool)
        self._n = 0
        self._ids_monotone = True
        # Peer-id-indexed ISP lookup (−1 = offline).
        self._isp_table = np.full(64, -1, dtype=np.int64)
        # Per-peer candidate entries: pid -> (nb_rows, nb_ids, nb_costs).
        self._cand: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._overlay_version_seen = overlay.version

    # ------------------------------------------------------------------
    # Membership hooks
    # ------------------------------------------------------------------
    _ORDER_COLUMNS = (
        "_order_ids", "_order_caps", "_order_isps",
        "_order_departure", "_order_seed",
    )

    def _ensure_group(self, peer: Peer) -> VideoGroup:
        """The peer's :class:`VideoGroup`, creating group/bucket on demand."""
        vid = peer.video.video_id
        group = self.groups.get(vid)
        if group is None:
            n_chunks = int(peer.video.n_chunks)
            bucket = self.buckets.get(n_chunks)
            if bucket is None:
                bucket = StateBucket(n_chunks, self.window)
                self.buckets[n_chunks] = bucket
            group = VideoGroup(peer.video, bucket)
            self.groups[vid] = group
        return group

    def _append_order(self, peer: Peer) -> None:
        """Append one peer to the dict-order columns and id-indexed tables."""
        if peer.is_seed:
            self.seed_ids.add(peer.peer_id)
        n = self._n
        if n >= len(self._order_ids):
            for name in self._ORDER_COLUMNS:
                old = getattr(self, name)
                new = np.zeros(len(old) * 2, dtype=old.dtype)
                new[:n] = old[:n]
                setattr(self, name, new)
        if n and peer.peer_id <= self._order_ids[n - 1]:
            self._ids_monotone = False
        self._order_ids[n] = peer.peer_id
        self._order_caps[n] = peer.upload_capacity_chunks
        self._order_isps[n] = peer.isp
        self._order_departure[n] = (
            np.inf if peer.departure_time is None else peer.departure_time
        )
        self._order_seed[n] = peer.is_seed
        self._n = n + 1
        if peer.peer_id >= len(self._isp_table):
            new_size = max(len(self._isp_table) * 2, peer.peer_id + 1)
            table = np.full(new_size, -1, dtype=np.int64)
            table[: len(self._isp_table)] = self._isp_table
            self._isp_table = table
        self._isp_table[peer.peer_id] = peer.isp

    def admit(self, peer: Peer) -> None:
        group = self._ensure_group(peer)
        row = group.admit(peer)
        peer.state_group = group
        peer.state_row = row
        self._append_order(peer)
        self.membership_version += 1

    def admit_batch(self, peers: Sequence[Peer]) -> None:
        """Admit many peers at once (batched :meth:`admit`).

        Final store state is identical to admitting the peers one by one
        in order, but each touched video's sorted member table is merged
        once instead of paying one ``np.insert`` rebuild per peer — the
        arrival-burst path of the churn slot boundary.
        """
        if not peers:
            return
        per_group: Dict[int, Tuple[List[int], List[int]]] = {}
        for peer in peers:
            group = self._ensure_group(peer)
            row = group.bucket.admit_row(peer)
            group.row_of[peer.peer_id] = row
            peer.state_group = group
            peer.state_row = row
            ids, rows = per_group.setdefault(peer.video.video_id, ([], []))
            ids.append(peer.peer_id)
            rows.append(row)
            self._append_order(peer)
        for vid, (id_list, row_list) in per_group.items():
            group = self.groups[vid]
            add_ids = np.asarray(id_list, dtype=np.int64)
            add_rows = np.asarray(row_list, dtype=np.int64)
            order = np.argsort(add_ids, kind="stable")  # ids are unique
            add_ids, add_rows = add_ids[order], add_rows[order]
            at = np.searchsorted(group.member_ids, add_ids)
            group.member_ids = np.insert(group.member_ids, at, add_ids)
            group.member_rows = np.insert(group.member_rows, at, add_rows)
            group._watchers_stale = True
        self.membership_version += len(peers)

    def remove(self, peer: Peer) -> None:
        group = peer.state_group
        if group is None:
            raise KeyError(f"peer {peer.peer_id} is not in the store")
        group.remove(peer)
        peer.state_group = None
        peer.state_row = None
        self.seed_ids.discard(peer.peer_id)
        idx = int(np.nonzero(self._order_ids[: self._n] == peer.peer_id)[0][0])
        for name in self._ORDER_COLUMNS:
            arr = getattr(self, name)
            arr[idx : self._n - 1] = arr[idx + 1 : self._n]
        self._n -= 1
        self._isp_table[peer.peer_id] = -1
        if self._cand.pop(peer.peer_id, None) is not None:
            self.candidate_epoch += 1
        self.membership_version += 1

    def remove_batch(self, peers: Sequence[Peer]) -> None:
        """Remove many peers at once (batched :meth:`remove`).

        One mask compaction over the order columns and one per touched
        member table, instead of an O(online) shift per departure — the
        departure path of the churn slot boundary.
        """
        if not peers:
            return
        per_group: Dict[int, List[Peer]] = {}
        for peer in peers:
            if peer.state_group is None:
                raise KeyError(f"peer {peer.peer_id} is not in the store")
            per_group.setdefault(peer.video.video_id, []).append(peer)
        for vid, members in per_group.items():
            group = self.groups[vid]
            for peer in members:
                row = group.row_of.pop(peer.peer_id)
                group.bucket.release_row(peer, row)
                peer.state_group = None
                peer.state_row = None
            gone = np.fromiter(
                (p.peer_id for p in members), dtype=np.int64, count=len(members)
            )
            keep = ~np.isin(group.member_ids, gone)
            group.member_ids = group.member_ids[keep]
            group.member_rows = group.member_rows[keep]
            group._watchers_stale = True
        ids = np.fromiter(
            (p.peer_id for p in peers), dtype=np.int64, count=len(peers)
        )
        n = self._n
        keep_order = ~np.isin(self._order_ids[:n], ids)
        kept = int(keep_order.sum())
        for name in self._ORDER_COLUMNS:
            arr = getattr(self, name)
            arr[:kept] = arr[:n][keep_order]
        self._n = kept
        self._isp_table[ids] = -1
        for peer in peers:
            self.seed_ids.discard(peer.peer_id)
            if self._cand.pop(peer.peer_id, None) is not None:
                self.candidate_epoch += 1
        self.membership_version += len(peers)

    def update_capacity(self, peer: Peer) -> None:
        """Re-read one online peer's upload capacity into the column.

        Scenario-engine hook (capacity ramps, seeder outage/recovery):
        the caller mutates ``peer.upload_capacity_chunks`` and this
        re-syncs the dict-order capacity column so the next
        ``build_problem`` sees the new budget.
        """
        self.update_capacities([peer])

    def update_capacities(self, peers: Sequence[Peer]) -> None:
        """Batched :meth:`update_capacity` (one pass over the column)."""
        if not peers:
            return
        by_id = {p.peer_id: p for p in peers}
        n = self._n
        ids = self._order_ids[:n]
        hit = np.isin(ids, np.fromiter(by_id, dtype=np.int64, count=len(by_id)))
        idx = np.nonzero(hit)[0]
        if len(idx) != len(by_id):
            missing = set(by_id) - set(ids[idx].tolist())
            raise KeyError(f"peers {sorted(missing)} are not in the store")
        self._order_caps[idx] = np.fromiter(
            (by_id[pid].upload_capacity_chunks for pid in ids[idx].tolist()),
            dtype=np.int64,
            count=len(idx),
        )

    def invalidate_costs(self) -> None:
        """Drop every cached candidate-cost table (cost-regime change).

        Scenario-engine hook: after a mid-run ISP price shock the cached
        per-peer ``(rows, ids, costs)`` entries hold stale costs; this
        forces them to be rebuilt from the cost model on next use (reads
        only the model's pair cache — no random draws are consumed, so
        the run's cost trajectory is unperturbed).
        """
        if self._cand:
            self._cand.clear()
            self.candidate_epoch += 1

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------
    def capacity_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(peer_ids, upload capacities)`` in peer-dict order (views)."""
        return self._order_ids[: self._n], self._order_caps[: self._n]

    def isp_table(self) -> np.ndarray:
        """Peer-id-indexed ISP lookup table (−1 = offline; do not mutate)."""
        return self._isp_table

    def departure_scan(self, t: float, remove_finished: bool) -> List[int]:
        """Non-seed peers due to leave at slot boundary ``t``, dict order.

        One mask over the departure-time column (``inf`` = stays), plus
        — when ``remove_finished`` — a per-bucket finished check on the
        synced playback positions.  Matches the reference loop over
        ``peers.values()`` (``departure_time <= t`` or
        ``session.finished``) including its dict iteration order, which
        the batched removal preserves.
        """
        n = self._n
        if not n:
            return []
        ids = self._order_ids[:n]
        doomed = (self._order_departure[:n] <= t) & ~self._order_seed[:n]
        if remove_finished:
            for bucket in self.buckets.values():
                self._sync_bucket(bucket)
            finished: List[np.ndarray] = []
            for group in self.groups.values():
                rows, g_ids = group.watcher_arrays()
                if not len(rows):
                    continue
                done = group.bucket.position[rows] >= group.n_chunks
                if done.any():
                    finished.append(g_ids[done])
            if finished:
                doomed |= np.isin(ids, np.concatenate(finished))
        if not doomed.any():
            return []
        return ids[doomed].tolist()

    # ------------------------------------------------------------------
    # Candidate tables
    # ------------------------------------------------------------------
    def _drain_overlay(self) -> None:
        """Invalidate candidate entries of peers whose links changed."""
        if self.overlay.version == self._overlay_version_seen:
            return
        dirty = self.overlay.consume_dirty()
        if dirty:
            dropped = False
            for pid in dirty:
                if self._cand.pop(pid, None) is not None:
                    dropped = True
            if dropped:
                self.candidate_epoch += 1
        else:
            # Version moved without dirty marks (defensive): full sweep.
            if self._cand:
                self._cand.clear()
                self.candidate_epoch += 1
        self._overlay_version_seen = self.overlay.version

    def _candidate_entry(
        self, pid: int, group: VideoGroup
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Same-video neighbor ``(rows, ids, costs)``, sorted by id."""
        entry = self._cand.get(pid)
        if entry is None:
            members = group.member_ids
            nb = self.overlay.neighbor_array(pid)
            if nb.size and members.size:
                pos = np.searchsorted(members, nb)
                pos[pos >= members.size] = 0
                hit = members[pos] == nb
                mpos = pos[hit]
                nb_ids = members[mpos]
                nb_rows = group.member_rows[mpos]
            else:
                nb_ids = _EMPTY_INT
                nb_rows = _EMPTY_INT
            nb_costs = self.costs.costs_for_pairs(nb_ids, pid)
            entry = (nb_rows, nb_ids, nb_costs)
            self._cand[pid] = entry
        return entry

    def _flat_candidates(
        self, group: VideoGroup, active_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat candidate CSR over ``active_ids`` (entries pre-built)."""
        entries = [
            self._candidate_entry(pid, group) for pid in active_ids.tolist()
        ]
        d = len(entries)
        counts = np.fromiter(
            (len(e[0]) for e in entries), dtype=np.int64, count=d
        )
        indptr = np.zeros(d + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if d and int(indptr[-1]):
            rows = np.concatenate([e[0] for e in entries])
            ids = np.concatenate([e[1] for e in entries])
            costs = np.concatenate([e[2] for e in entries])
        else:
            rows, ids, costs = _EMPTY_INT, _EMPTY_INT, _EMPTY_FLOAT
        return counts, indptr, rows, ids, costs

    # ------------------------------------------------------------------
    # Batched delivery (transfer-apply hot path)
    # ------------------------------------------------------------------
    def deliver_runs(
        self,
        run_peers: Sequence[Peer],
        starts: np.ndarray,
        stops: np.ndarray,
        chunks: np.ndarray,
    ) -> np.ndarray:
        """Write per-peer chunk runs into the bucket matrices; returns
        the number of newly held chunks per run.

        ``chunks[starts[i]:stops[i]]`` is the (unique, in-range) chunk
        batch for ``run_peers[i]`` — the downloader-grouped runs
        ``_apply_transfers`` derives from the served columns.  Instead
        of one small bitmap write per receiving buffer, runs are grouped
        by state bucket and each bucket takes *one* fancy-indexed
        read-then-write over its shared mask matrix (the buffers are
        views into it, so they observe the delivery with no extra sync).
        Caller contract matches :meth:`ChunkBuffer.receive_batch_trusted`:
        every peer is store-bound with an uncapped buffer, and no
        (peer, chunk) pair repeats within the batch.
        """
        n_runs = len(run_peers)
        lens = stops - starts
        added = np.zeros(n_runs, dtype=np.int64)
        per_bucket: Dict[int, List[int]] = {}
        buckets: Dict[int, StateBucket] = {}
        for i, peer in enumerate(run_peers):
            bucket = peer.state_group.bucket
            per_bucket.setdefault(id(bucket), []).append(i)
            buckets[id(bucket)] = bucket
        for key, run_list in per_bucket.items():
            bucket = buckets[key]
            run_idx = np.asarray(run_list, dtype=np.int64)
            s = starts[run_idx]
            l = lens[run_idx]
            total = int(l.sum())
            offs = np.zeros(len(run_idx), dtype=np.int64)
            np.cumsum(l[:-1], out=offs[1:])
            edge_idx = np.repeat(s - offs, l) + np.arange(total, dtype=np.int64)
            rows_e = np.repeat(
                np.fromiter(
                    (run_peers[i].state_row for i in run_list),
                    dtype=np.int64,
                    count=len(run_list),
                ),
                l,
            )
            ch = chunks[edge_idx]
            held = bucket.masks[rows_e, ch]
            bucket.masks[rows_e, ch] = True
            new = ~held
            if bool(new.all()):
                added[run_idx] = l
            else:
                rid = np.repeat(np.arange(len(run_idx), dtype=np.int64), l)
                added[run_idx] = np.bincount(
                    rid, weights=new, minlength=len(run_idx)
                ).astype(np.int64)
        for peer, add in zip(run_peers, added.tolist()):
            if add:
                peer.buffer.note_external_writes(add)
        return added

    # ------------------------------------------------------------------
    # Session sync
    # ------------------------------------------------------------------
    def _sync_bucket(self, bucket: StateBucket) -> np.ndarray:
        """Fresh playback positions; resyncs rows mutated out-of-band.

        Positions are read from the session objects (one ``fromiter``)
        and compared to the stored column: a mismatch means the session
        moved outside the batched path (direct ``advance_to`` calls,
        benchmark snapshot/restore), so its row — position,
        last-advance, the ``missed`` bitmap — is rebuilt from the
        session before anything trusts it.
        """
        rows, sessions = bucket.watcher_arrays()
        n = len(rows)
        if not n:
            return _EMPTY_INT
        fresh = np.fromiter(
            (s.position for s in sessions), dtype=np.int64, count=n
        )
        stored = bucket.position[rows]
        if not np.array_equal(fresh, stored):
            stale = np.nonzero(fresh != stored)[0]
            for i in stale.tolist():
                bucket.resync_row(int(rows[i]), sessions[i])
        return fresh

    # ------------------------------------------------------------------
    # Request assembly (build_problem hot path)
    # ------------------------------------------------------------------
    def assemble_requests(
        self,
        now: float,
        valuation: DeadlineValuation,
        lookahead: float = 0.0,
    ):
        """All slot requests as flat columns in reference request order.

        Returns ``None`` when no peer requests anything, else
        ``(peers, chunk_pairs, valuations, cand_ids, cand_costs,
        indptr)`` where ``chunk_pairs`` is the ``(R, 2)``
        ``(video_id, chunk_index)`` column and the CSR candidate arrays
        are sorted by uploader id within each request — exactly the
        problem :meth:`P2PSystem.build_problem_reference` constructs.
        """
        self._drain_overlay()
        for bucket in self.buckets.values():
            self._sync_bucket(bucket)
        preps = []
        need_entry: List[Tuple[int, VideoGroup]] = []
        for group in self.groups.values():
            prep = self._prepare_group(group, now)
            if prep is None:
                continue
            preps.append(prep)
            for pid in prep[1].tolist():
                if pid not in self._cand:
                    need_entry.append((pid, group))
        if need_entry:
            # Build missing candidate tables in peer-dict order so the
            # cost model samples never-seen pairs in exactly the order
            # the pre-store pipeline did (trajectory preservation).
            need_entry.sort(key=self._dict_order_key())
            for pid, group in need_entry:
                self._candidate_entry(pid, group)
        parts = []
        for prep in preps:
            part = self._finish_group(prep, now, valuation, lookahead)
            if part is not None:
                parts.append((prep[0].video.video_id,) + part)
        if not parts:
            return None
        if len(parts) == 1:
            vid, peers, chunks, vals, counts, cand_ids, cand_costs = parts[0]
            vids = np.full(len(peers), vid, dtype=np.int64)
        else:
            peers = np.concatenate([p[1] for p in parts])
            chunks = np.concatenate([p[2] for p in parts])
            vals = np.concatenate([p[3] for p in parts])
            counts = np.concatenate([p[4] for p in parts])
            cand_ids = np.concatenate([p[5] for p in parts])
            cand_costs = np.concatenate([p[6] for p in parts])
            vids = np.repeat(
                np.fromiter((p[0] for p in parts), dtype=np.int64, count=len(parts)),
                np.fromiter((len(p[1]) for p in parts), dtype=np.int64, count=len(parts)),
            )
        n_req = len(peers)
        # The permutation may only be skipped when ascending id *is*
        # peer-dict order; with out-of-order admissions an incidentally
        # sorted column must still be permuted into dict order.
        if not (self._ids_monotone and np.all(peers[1:] >= peers[:-1])):
            perm = self._request_permutation(peers)
            old_indptr = np.zeros(n_req + 1, dtype=np.int64)
            np.cumsum(counts, out=old_indptr[1:])
            lens = counts[perm]
            indptr = np.zeros(n_req + 1, dtype=np.int64)
            np.cumsum(lens, out=indptr[1:])
            edge_idx = np.repeat(
                old_indptr[:-1][perm] - indptr[:-1], lens
            ) + np.arange(len(cand_ids), dtype=np.int64)
            peers = peers[perm]
            chunks = chunks[perm]
            vals = vals[perm]
            vids = vids[perm]
            cand_ids = cand_ids[edge_idx]
            cand_costs = cand_costs[edge_idx]
        else:
            indptr = np.zeros(n_req + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
        pairs = np.empty((n_req, 2), dtype=np.int64)
        pairs[:, 0] = vids
        pairs[:, 1] = chunks
        return peers, pairs, vals, cand_ids, cand_costs, indptr

    def _request_permutation(self, peers: np.ndarray) -> np.ndarray:
        """Permutation restoring peer-dict request order."""
        if self._ids_monotone:
            # Dict order == ascending id; stable sort keeps each peer's
            # window-ordered block intact.
            return np.argsort(peers, kind="stable")
        rank = {
            pid: i for i, pid in enumerate(self._order_ids[: self._n].tolist())
        }
        key = np.fromiter(
            (rank[pid] for pid in peers.tolist()),
            dtype=np.int64,
            count=len(peers),
        )
        return np.argsort(key, kind="stable")

    def _dict_order_key(self):
        """Sort key putting ``(pid, group)`` items in peer-dict order."""
        if self._ids_monotone:
            return lambda item: item[0]
        rank = {
            pid: i for i, pid in enumerate(self._order_ids[: self._n].tolist())
        }
        return lambda item: rank[item[0]]

    def _prepare_group(self, group: VideoGroup, now: float):
        """Window/availability stage: which watchers can request what.

        Returns ``(group, gated_ids, gated_rows, due, avail)`` for the
        watchers that are unfinished *and* have a non-empty available
        window (the gate the reference applies before touching the cost
        model), or ``None`` when the group cannot produce requests.
        The bucket's positions must already be synced.
        """
        rows, ids = group.watcher_arrays()
        if not len(rows):
            return None
        bucket = group.bucket
        n_chunks = group.n_chunks
        positions = bucket.position[rows]
        active = positions < n_chunks
        if not active.any():
            return None
        act_rows = rows[active]
        st = bucket.start_time[act_rows]
        sp = bucket.start_pos[act_rows]
        cps = group.video.chunks_per_second
        # due_position(now), vectorized with the same float ops.
        due = sp + (np.maximum(0.0, now - st) * cps).astype(np.int64)
        np.minimum(due, n_chunks, out=due)
        W = group.window
        offs = np.arange(W, dtype=np.int64)
        in_range = (due[:, None] + offs[None, :]) < n_chunks
        swv_masks = sliding_window_view(bucket.masks, W, axis=1)
        swv_missed = sliding_window_view(bucket.missed, W, axis=1)
        held = swv_masks[act_rows, due]
        missed_win = swv_missed[act_rows, due]
        avail = in_range & ~held & ~missed_win
        gated = avail.any(axis=1)
        if not gated.any():
            return None
        return (
            group,
            ids[active][gated],
            act_rows[gated],
            due[gated],
            avail[gated],
        )

    def _finish_group(
        self,
        prep,
        now: float,
        valuation: DeadlineValuation,
        lookahead: float,
    ):
        group, act_ids, act_rows, due, avail = prep
        bucket = group.bucket
        n_chunks = group.n_chunks
        W = group.window
        nb_counts, nb_indptr, nb_rows, nb_ids, nb_costs = self._flat_candidates(
            group, act_ids
        )
        sel = nb_counts > 0
        if not sel.any():
            return None
        if not sel.all():
            # Restrict every per-watcher array to watchers with at least
            # one same-video neighbor (the only ones that can request).
            keep_edges = np.repeat(sel, nb_counts)
            nb_rows = nb_rows[keep_edges]
            nb_ids = nb_ids[keep_edges]
            nb_costs = nb_costs[keep_edges]
            nb_counts = nb_counts[sel]
            nb_indptr = np.zeros(len(nb_counts) + 1, dtype=np.int64)
            np.cumsum(nb_counts, out=nb_indptr[1:])
            act_rows = act_rows[sel]
            act_ids = act_ids[sel]
            due = due[sel]
            avail = avail[sel]
        d = len(act_rows)
        st = bucket.start_time[act_rows]
        sp = bucket.start_pos[act_rows]
        cps = group.video.chunks_per_second
        cols = due[:, None] + np.arange(W, dtype=np.int64)[None, :]
        # Valuations: identical formula (and op order) to
        # Peer.build_request_arrays, evaluated on the whole window.
        deadlines = (st[:, None] + (cols - sp[:, None]) / cps) - now
        to_deadline = np.maximum(0.0, deadlines - lookahead)
        values = valuation.values(to_deadline)
        swv_masks = sliding_window_view(bucket.masks, W, axis=1)
        owner = np.repeat(np.arange(d, dtype=np.int64), nb_counts)
        have = swv_masks[nb_rows, due[owner]]
        have &= avail[owner]
        # Candidate counts per (watcher, chunk): segment sums over the
        # neighbor rows.  int8 is safe while no peer has ≥128 same-video
        # neighbors; fall back to a wide dtype otherwise.
        if int(nb_counts.max(initial=0)) < 128:
            counts = np.add.reduceat(have.view(np.int8), nb_indptr[:-1], axis=0)
        else:
            counts = np.add.reduceat(
                have.astype(np.int64), nb_indptr[:-1], axis=0
            )
        requested = counts > 0
        rd, rc = np.nonzero(requested)
        if not len(rd):
            return None
        req_peers = act_ids[rd]
        req_chunks = due[rd] + rc
        req_vals = values[rd, rc]
        req_counts = counts[rd, rc].astype(np.int64)
        # Edges: nonzero of `have` is (neighbor-major, chunk) per
        # watcher; the problem wants (chunk-major, neighbor-sorted), so
        # reorder by the composite (watcher, chunk, neighbor) key.
        nzr, nzc = np.nonzero(have)
        key = (owner[nzr] * np.int64(W) + nzc) * np.int64(len(nb_rows)) + nzr
        order = np.argsort(key, kind="stable")
        cand_ids = nb_ids[nzr[order]]
        cand_costs = nb_costs[nzr[order]]
        return req_peers, req_chunks, req_vals, req_counts, cand_ids, cand_costs

    # ------------------------------------------------------------------
    # Batched playback
    # ------------------------------------------------------------------
    def advance_playback(self, to_time: float) -> Tuple[int, int]:
        """Advance every eligible session; returns ``(due, missed)``.

        One vectorized pass per bucket (a single pass for uniform
        catalogs) replaces the per-session ``advance_to`` loop: targets
        from the immutable session columns, held counts from one window
        gather on the bitmap matrix, miss recording into both the
        ``missed`` matrix and each session's (lazily materialized) set.
        Sessions whose ``start_time >= to_time`` are untouched — they
        have nothing due yet; mid-slot admissions advance from their
        *own* start time on the first boundary after it.  Per-session
        results are committed back to the :class:`PlaybackSession`
        objects, which remain the reference (``advance_to`` /
        ``advance_to_reference`` pin the semantics).  Unlike the
        reference loop, a backwards ``to_time`` raises *before* any
        session (in any bucket) is advanced.
        """
        preps = []
        for bucket in self.buckets.values():
            rows, sessions = bucket.watcher_arrays()
            if not len(rows):
                continue
            st = bucket.start_time[rows]
            eligible = st < to_time
            if not eligible.any():
                continue
            positions = self._sync_bucket(bucket)
            # Backwards-time validation reads the session objects, not
            # the column: a snapshot/restore can rewind _last_advance
            # without moving the position the sync check keys on.
            last = np.fromiter(
                (s._last_advance for s in sessions),
                dtype=float,
                count=len(sessions),
            )
            bucket.last_advance[rows] = last
            bad = eligible & (last > to_time)
            if bad.any():
                first = float(last[np.nonzero(bad)[0][0]])
                raise ValueError(
                    f"time went backwards: {to_time!r} < {first!r}"
                )
            preps.append((bucket, rows, sessions, st, eligible, positions))
        due_total = 0
        missed_total = 0
        for prep in preps:
            due, missed = self._advance_prepared(prep, to_time)
            due_total += due
            missed_total += missed
        return due_total, missed_total

    def _advance_prepared(self, prep, to_time: float) -> Tuple[int, int]:
        bucket, rows, sessions, st, eligible, positions = prep
        n_chunks = bucket.n_chunks
        target = bucket.start_pos[rows] + (
            np.maximum(0.0, to_time - st) * bucket.cps[rows]
        ).astype(np.int64)
        np.minimum(target, n_chunks, out=target)
        width = np.where(eligible, target - positions, 0)
        np.maximum(width, 0, out=width)
        due_total = int(width.sum())
        missed_total = 0
        if int(width.max()) > _BATCH_ADVANCE_LIMIT:
            # Far-behind sessions (fresh joiners catching up a whole
            # video) advance individually; the batch window stays small.
            big = width > _BATCH_ADVANCE_LIMIT
            for i in np.nonzero(big)[0].tolist():
                session = sessions[i]
                stats = session.advance_to(to_time)
                missed_total += stats.missed
                bucket.resync_row(int(rows[i]), session)
            width = np.where(big, 0, width)
        batch = width > 0
        all_move = bool(batch.all())
        if all_move or batch.any():
            b_idx = np.nonzero(batch)[0]
            rows_b = rows[b_idx]
            pos_b = positions[b_idx]
            tgt_b = target[b_idx]
            widths_b = tgt_b - pos_b
            w_max = int(widths_b.max())
            uniform = bool(widths_b.min() == w_max)
            cols = pos_b[:, None] + np.arange(w_max, dtype=np.int64)[None, :]
            if w_max > bucket.window:
                # Catch-up windows can overrun the padded columns.
                cols = np.minimum(cols, n_chunks)
            held = bucket.masks[rows_b[:, None], cols]
            if uniform:
                # Steady state: every session consumes the same number of
                # chunks, so no per-cell validity mask is needed.
                mm = ~held
                played = w_max - mm.sum(axis=1)
            else:
                valid = (
                    np.arange(w_max, dtype=np.int64)[None, :]
                    < widths_b[:, None]
                )
                mm = valid & ~held
                played = widths_b - mm.sum(axis=1)
            batch_missed = int(widths_b.sum() - played.sum())
            missed_total += batch_missed
            if batch_missed:
                mr, mc = np.nonzero(mm)
                missed_chunks = pos_b[mr] + mc
                bucket.missed[rows_b[mr], missed_chunks] = True
                # Per-session miss batches, one deferred run per session.
                run_starts = np.flatnonzero(
                    np.concatenate(([True], mr[1:] != mr[:-1]))
                )
                owners = b_idx[mr[run_starts]]
                bounds = np.append(run_starts, len(mr))
                for oi, s0, e0 in zip(
                    owners.tolist(), bounds[:-1].tolist(), bounds[1:].tolist()
                ):
                    sessions[oi].defer_missed(missed_chunks[s0:e0])
            bucket.position[rows_b] = tgt_b
            bucket.last_advance[rows[eligible]] = to_time
            if all_move and bool(eligible.all()):
                # One fused commit pass over every session.
                for session, tgt, plays in zip(
                    sessions, tgt_b.tolist(), played.tolist()
                ):
                    session.position = tgt
                    session.played += plays
                    session._last_advance = to_time
                return due_total, missed_total
            for i, tgt, plays in zip(
                b_idx.tolist(), tgt_b.tolist(), played.tolist()
            ):
                session = sessions[i]
                session.position = tgt
                session.played += plays
        else:
            bucket.last_advance[rows[eligible]] = to_time
        for session, ok in zip(sessions, eligible.tolist()):
            if ok:
                session._last_advance = to_time
        return due_total, missed_total

    # ------------------------------------------------------------------
    # Introspection / invariants (used by the staleness tests)
    # ------------------------------------------------------------------
    def check_consistency(self, peers: Dict[int, Peer], tracker=None) -> None:
        """Assert the store mirrors the authoritative object graph.

        Cheap enough for tests to call after every mutation: membership
        tables, row bindings, capacity/ISP columns and the missed
        bitmaps must all agree with the ``peers`` dict (and, when a
        ``tracker`` is given, with its per-video registry).
        """
        ids = sorted(peers)
        if tracker is not None:
            for vid, group in self.groups.items():
                assert set(group.member_ids.tolist()) == set(
                    tracker.members_view(vid)
                ), f"store/tracker membership drifted for video {vid}"
        all_members = sorted(
            int(pid) for g in self.groups.values() for pid in g.member_ids.tolist()
        )
        assert all_members == ids, "store membership drifted from peers dict"
        order_ids = self._order_ids[: self._n].tolist()
        assert sorted(order_ids) == ids, "capacity column ids drifted"
        assert order_ids == list(peers), "capacity column order drifted"
        for pid, peer in peers.items():
            group = self.groups[peer.video.video_id]
            bucket = group.bucket
            row = group.row_of[pid]
            assert peer.state_group is group and peer.state_row == row
            assert bucket.peer_by_row[row] is peer
            assert (
                peer.buffer.mask.base is bucket.masks
                or peer.buffer.mask.base is bucket.masks.base
            ), f"buffer of peer {pid} is not bound to the store"
            assert self._isp_table[pid] == peer.isp
            if peer.session is not None:
                missed_row = set(
                    np.nonzero(bucket.missed[row, : group.n_chunks])[0].tolist()
                )
                synced = bucket.position[row] == peer.session.position
                if synced:
                    assert missed_row == peer.session.missed, (
                        f"missed bitmap of peer {pid} drifted"
                    )
        caps = self._order_caps[: self._n]
        expect = np.fromiter(
            (peers[pid].upload_capacity_chunks for pid in order_ids),
            dtype=np.int64,
            count=self._n,
        )
        assert np.array_equal(caps, expect), "capacity column drifted"
        seed_col = self._order_seed[: self._n]
        expect_seed = np.fromiter(
            (peers[pid].is_seed for pid in order_ids),
            dtype=bool,
            count=self._n,
        )
        assert np.array_equal(seed_col, expect_seed), "seed column drifted"
        departures = self._order_departure[: self._n]
        expect_dep = np.fromiter(
            (
                np.inf
                if peers[pid].departure_time is None
                else peers[pid].departure_time
                for pid in order_ids
            ),
            dtype=float,
            count=self._n,
        )
        assert np.array_equal(departures, expect_dep), (
            "departure column drifted"
        )
