"""Persistent columnar (SoA) peer-state store behind the slot pipeline.

Before this module, every :meth:`~repro.p2p.system.P2PSystem.build_problem`
call re-derived its columnar inputs from the Python object graph: it
re-stacked every peer's buffer bitmap into per-video matrices, re-read
every playback position, and walked a per-peer loop to assemble the
candidate CSR — ~0.2 s of the ~0.23 s slot at 2 000 peers.  The store
keeps those columns *alive across slots* and updates them incrementally
at the few places state actually changes:

* **Buffer bitmaps** are not copies at all: each online peer's
  :class:`~repro.vod.buffer.ChunkBuffer` is *rebound* so its backing
  storage is a row of a shared bitmap matrix
  (:meth:`ChunkBuffer.rebind_storage`).  Chunk deliveries in
  ``_apply_transfers`` therefore update the matrix in place — there is
  one storage, so the matrix can never drift from the buffers.
* **Layout**: rows live in :class:`StateBucket` matrices keyed by chunk
  count, so every video of the paper's uniform catalog shares one
  matrix and the batched playback pass is a *single* vectorized sweep,
  not one per video.  :class:`VideoGroup` keeps the per-video sorted
  member-id tables the candidate lookups binary-search; its rows index
  into the bucket.
* **Membership** (member tables, row assignments, capacity / ISP
  columns in peer-dict order) is updated in :meth:`PeerStateStore.admit`
  / :meth:`PeerStateStore.remove`, guarded by
  :attr:`PeerStateStore.membership_version`.
* **Candidate tables** (same-video neighbor rows/ids/costs per peer)
  are invalidated per peer from the overlay's dirty set
  (:meth:`OverlayGraph.consume_dirty`) instead of being version-swept
  wholesale.  Missing entries are built in peer-dict order so the cost
  model samples never-seen pairs in exactly the order the pre-store
  pipeline did (trajectory preservation).
* **Playback** columns (start time/position, last-advance, a
  ``missed``-chunk bitmap matrix mirroring each session's ``missed``
  set) feed both the batched :meth:`PeerStateStore.advance_playback`
  and the window/valuation assembly in
  :meth:`PeerStateStore.assemble_requests`.  Positions are cheaply
  re-validated against the session objects every call (one ``fromiter``
  per bucket), so state mutated outside the store — tests, benchmark
  snapshot/restore — is detected and the affected rows resynced rather
  than silently trusted.

The assembly matches :meth:`P2PSystem.build_problem_reference` bit for
bit (request order, valuations, candidate sets, costs) and the batched
advance matches the per-session ``advance_to`` /
``advance_to_reference`` pins; the property suite under
``tests/properties/`` fuzzes whole scenarios against all three.

Window gathers use :func:`numpy.lib.stride_tricks.sliding_window_view`
over the matrices, which are padded with ``window`` always-False columns
so a window starting at any playback position stays in bounds.
"""

from __future__ import annotations

import weakref

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..net.costs import CostModel
from ..net.topology import OverlayGraph
from ..vod.valuation import DeadlineValuation
from ..vod.video import Video
from .peer import Peer

__all__ = [
    "PeerStateStore", "StateBucket", "VideoGroup", "SlotDelta",
    "DELTA_DELIVERY", "DELTA_PLAYBACK", "DELTA_ADMIT", "DELTA_REMOVE",
    "DELTA_CANDIDATES", "DELTA_CAPACITY", "DELTA_RETRY",
]

_EMPTY_INT = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=float)

#: Reason codes for the per-slot delta set (bitmask per peer id).
DELTA_DELIVERY = 1     # chunks written into the peer's buffer row
DELTA_PLAYBACK = 2     # playback advanced (every watcher, every slot)
DELTA_ADMIT = 4        # peer admitted this slot
DELTA_REMOVE = 8       # peer removed this slot
DELTA_CANDIDATES = 16  # candidate table dropped (overlay/degree change)
DELTA_CAPACITY = 32    # upload budget changed mid-run
DELTA_RETRY = 64       # retry-queue suppression set changed for the peer


class SlotDelta:
    """One slot's mutation record, accumulated by the store.

    The audit trail the incremental build consumes: which peer rows were
    invalidated since the previous ``build_problem`` and why.  Row-level
    marks carry a reason bitmask (``DELTA_*``); coarse flags cover
    mutations that invalidate whole column families — playback moves
    every watcher's window each slot, a cost shock invalidates every
    candidate-cost table (full candidate rebuild), membership changes
    reshape the member tables.

    The delta is *observational* with respect to cache correctness: the
    candidate-CSR caches self-validate against the store's epoch/log
    machinery, so a lost or merged delta can never yield a stale
    problem.  Tests and :meth:`P2PSystem.patch_problem` read it to
    assert/decide what the patch path actually had to redo.
    """

    __slots__ = (
        "delivered_runs", "admitted", "removed", "capacity_touched",
        "retry_added", "retry_removed", "playback_moved",
        "costs_invalidated", "membership_changed", "capacity_changed",
        "candidate_drops",
    )

    def __init__(self) -> None:
        self.delivered_runs: List[Sequence[Peer]] = []
        self.admitted: List[int] = []
        self.removed: List[int] = []
        self.capacity_touched: List[int] = []
        self.retry_added: List[int] = []
        self.retry_removed: List[int] = []
        self.candidate_drops: List[int] = []
        self.playback_moved = False
        self.costs_invalidated = False
        self.membership_changed = False
        self.capacity_changed = False

    def mark_retry(self, added_pids, removed_pids) -> None:
        """Record suppression-set row deletions/additions (system hook)."""
        self.retry_added.extend(int(p) for p in added_pids)
        self.retry_removed.extend(int(p) for p in removed_pids)

    def touched_regions(self, isp_table: np.ndarray) -> Optional[Set[int]]:
        """ISP regions whose rows this delta invalidated.

        Keyed on the store's :meth:`PeerStateStore.isp_table` column
        (−1 for peers already removed, e.g. departures recorded after
        the row left the table).  Coarse flags (``playback_moved``,
        ``costs_invalidated``, …) touch every region, signalled by
        returning ``None`` — per-region consumers must treat that as
        "all".  The sharded solve path uses this to bound which region
        shards of a delta-patched problem can differ from the previous
        slot's.
        """
        if (
            self.playback_moved
            or self.costs_invalidated
            or self.membership_changed
            or self.capacity_changed
        ):
            return None
        pids = set(self.reasons())
        if not pids:
            return set()
        col = np.fromiter(pids, dtype=np.int64, count=len(pids))
        inside = col[col < len(isp_table)]
        return set(int(r) for r in np.unique(isp_table[inside]))

    def reasons(self) -> Dict[int, int]:
        """Peer id → reason bitmask, materialized from the raw marks."""
        out: Dict[int, int] = {}

        def mark(pids, code):
            for pid in pids:
                out[pid] = out.get(pid, 0) | code

        for run_peers in self.delivered_runs:
            mark((p.peer_id for p in run_peers), DELTA_DELIVERY)
        mark(self.admitted, DELTA_ADMIT)
        mark(self.removed, DELTA_REMOVE)
        mark(self.capacity_touched, DELTA_CAPACITY)
        mark(self.candidate_drops, DELTA_CANDIDATES)
        mark(self.retry_added, DELTA_RETRY)
        mark(self.retry_removed, DELTA_RETRY)
        return out

    def reason_histogram(self) -> Dict[str, int]:
        """Peers-per-reason counts, named for the trace schema.

        One peer marked for several reasons counts once under each —
        the histogram answers "what invalidated rows this slot", not
        "how many rows were invalidated".
        """
        names = (
            ("delivery", DELTA_DELIVERY),
            ("playback", DELTA_PLAYBACK),
            ("admit", DELTA_ADMIT),
            ("remove", DELTA_REMOVE),
            ("candidates", DELTA_CANDIDATES),
            ("capacity", DELTA_CAPACITY),
            ("retry", DELTA_RETRY),
        )
        masks = self.reasons().values()
        return {
            name: sum(1 for m in masks if m & code) for name, code in names
        }

#: Sessions this many chunks behind their due position are advanced
#: individually (their catch-up window would blow up the batch gather).
_BATCH_ADVANCE_LIMIT = 1024

#: Candidate drop-log length at which :meth:`PeerStateStore._trim_cand_log`
#: compacts (caches lagging further than this are dropped, not waited for).
_CAND_LOG_LIMIT = 4096

#: Widest request window the packed-word fast path supports: a window
#: starting at any bit offset within a word must fit the two-word read
#: below (63 offset bits + W ≤ 2·64 always holds, but the single right
#: shift needs W ≤ 64 − 7 to stay exact for byte-grained fallbacks).
#: Wider windows use the boolean fused path.
_PACKED_WINDOW_MAX = 57


def _window_words(words_flat, wpr, rows, starts, W):
    """Request windows of word-packed rows, one ``uint64`` each.

    ``words_flat`` is a row-major ``(n_rows, wpr)`` uint64 matrix from
    :meth:`PeerStateStore._packed_matrices`, flattened, holding chunk
    ``64·q + j`` of each row at bit ``63 - j`` of word ``q`` (big-endian
    ``np.packbits`` order).  A window is then two aligned word gathers
    and a shift: bit ``W - 1 - k`` of the result is chunk ``start + k``
    (MSB-first), so word-wise AND/OR over windows is bit-for-bit the
    boolean-matrix computation.  Requires ``wpr`` wide enough that word
    ``(start >> 6) + 1`` stays inside the row.
    """
    q = starts >> np.int64(6)
    r = (starts & np.int64(63)).astype(np.uint64)
    base = rows * np.int64(wpr) + q
    hi = words_flat[base] << r
    lo = words_flat[base + 1] >> ((np.uint64(64) - r) & np.uint64(63))
    np.multiply(lo, r != 0, out=lo)
    return (hi | lo) >> np.uint64(64 - W)


class _CandCache:
    """One video group's cached flat candidate CSR (the reuse path).

    Holds the pooled per-active-watcher segments the previous
    :meth:`PeerStateStore._flat_candidates_cached` call returned, plus
    the validity cursor: the drop-log position and cost-regime epoch the
    copy was taken at.  Segments of peers dropped from the entry dict
    since ``log_pos`` (or the whole cache, after an epoch bump) are
    stale; everything else can be spliced forward verbatim.
    """

    __slots__ = (
        "active_ids", "counts", "indptr", "rows", "ids", "costs",
        "log_pos", "reset_epoch",
    )

    def __init__(
        self, active_ids, counts, indptr, rows, ids, costs,
        log_pos, reset_epoch,
    ) -> None:
        self.active_ids = active_ids
        self.counts = counts
        self.indptr = indptr
        self.rows = rows
        self.ids = ids
        self.costs = costs
        self.log_pos = log_pos
        self.reset_epoch = reset_epoch


class StateBucket:
    """Row storage shared by every video with the same chunk count.

    Rows are assigned on admission and stay stable until the peer
    departs (freed rows are zeroed and recycled — possibly by a peer of
    a *different* video with the same chunk count).  Holding all
    same-shape videos in one matrix lets the batched playback advance
    run as one vectorized sweep regardless of catalog size.
    """

    def __init__(self, n_chunks: int, window: int) -> None:
        self.n_chunks = int(n_chunks)
        self.window = max(1, int(window))
        #: Matrix width: chunk columns plus ``window`` always-False pad
        #: columns so window gathers starting at any position ≤ n_chunks
        #: stay in bounds.
        self.padded = self.n_chunks + self.window
        cap = 8
        self.masks = np.zeros((cap, self.padded), dtype=bool)
        self.missed = np.zeros((cap, self.padded), dtype=bool)
        self.free_rows: List[int] = []
        self.n_rows = 0  # high-water mark of allocated rows
        # Row-indexed columns (valid where a peer occupies the row).
        self.peer_by_row: List[Optional[Peer]] = [None] * cap
        self.start_time = np.zeros(cap, dtype=float)
        self.start_pos = np.zeros(cap, dtype=np.int64)
        self.position = np.zeros(cap, dtype=np.int64)
        self.last_advance = np.zeros(cap, dtype=float)
        self.cps = np.zeros(cap, dtype=float)  # chunks per second
        self.has_session = np.zeros(cap, dtype=bool)
        # Bucket-wide watcher view (rows with sessions, row order).
        self._watchers_stale = True
        self._watcher_rows = _EMPTY_INT
        self._watcher_sessions: List = []
        # Cached sliding-window views (invalid after _grow reallocates).
        self._swv: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def window_views(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(masks, missed)`` sliding-window views, cached.

        Pure views over the live matrices — row writes are visible
        through them — so they stay valid until :meth:`_grow` swaps the
        backing storage.
        """
        if self._swv is None:
            self._swv = (
                sliding_window_view(self.masks, self.window, axis=1),
                sliding_window_view(self.missed, self.window, axis=1),
            )
        return self._swv

    # ------------------------------------------------------------------
    # Rows
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        old_cap = self.masks.shape[0]
        new_cap = old_cap * 2
        masks = np.zeros((new_cap, self.padded), dtype=bool)
        missed = np.zeros((new_cap, self.padded), dtype=bool)
        masks[:old_cap] = self.masks
        missed[:old_cap] = self.missed
        self.masks = masks
        self.missed = missed
        self._swv = None
        for arr_name in (
            "start_time", "start_pos", "position", "last_advance",
            "cps", "has_session",
        ):
            old = getattr(self, arr_name)
            new = np.zeros(new_cap, dtype=old.dtype)
            new[:old_cap] = old
            setattr(self, arr_name, new)
        self.peer_by_row.extend([None] * (new_cap - old_cap))
        # Re-point every bound buffer at its (already copied) new row.
        for row, peer in enumerate(self.peer_by_row[:old_cap]):
            if peer is not None:
                peer.buffer.rebind_storage(
                    self.masks[row, : self.n_chunks], copy=False
                )

    def admit_row(self, peer: Peer) -> int:
        """Assign ``peer`` a row, bind its buffer, fill its columns."""
        if self.free_rows:
            row = self.free_rows.pop()
        else:
            if self.n_rows >= self.masks.shape[0]:
                self._grow()
            row = self.n_rows
            self.n_rows += 1
        self.masks[row] = False
        self.missed[row] = False
        peer.buffer.rebind_storage(self.masks[row, : self.n_chunks])
        self.peer_by_row[row] = peer
        self.cps[row] = peer.video.chunks_per_second
        session = peer.session
        if session is not None:
            self.start_time[row] = session.start_time
            self.start_pos[row] = session.start_position
            self.position[row] = session.position
            self.last_advance[row] = session._last_advance
            self.has_session[row] = True
            if session.missed:
                idx = np.fromiter(
                    session.missed, dtype=np.int64, count=len(session.missed)
                )
                self.missed[row, idx] = True
        else:
            self.has_session[row] = False
        self._watchers_stale = True
        return row

    def release_row(self, peer: Peer, row: int) -> None:
        """Free ``row``; the peer's buffer takes back owned storage."""
        peer.buffer.unbind_storage()
        self.masks[row] = False
        self.missed[row] = False
        self.peer_by_row[row] = None
        self.has_session[row] = False
        self.free_rows.append(row)
        self._watchers_stale = True

    def watcher_arrays(self) -> Tuple[np.ndarray, List]:
        """``(rows, sessions)`` of every occupied row with a session."""
        if self._watchers_stale:
            occupied = self.has_session[: self.n_rows]
            rows = np.nonzero(occupied)[0].astype(np.int64)
            self._watcher_rows = rows
            self._watcher_sessions = [
                self.peer_by_row[r].session for r in rows.tolist()
            ]
            self._watchers_stale = False
        return self._watcher_rows, self._watcher_sessions

    def resync_row(self, row: int, session) -> None:
        """Rebuild one row's playback state from the session object."""
        self.position[row] = session.position
        self.last_advance[row] = session._last_advance
        self.missed[row] = False
        if session.missed:
            idx = np.fromiter(
                session.missed, dtype=np.int64, count=len(session.missed)
            )
            self.missed[row, idx] = True


class VideoGroup:
    """Per-video membership tables over a :class:`StateBucket`.

    ``member_ids`` / ``member_rows`` keep the sorted-id view the
    candidate lookups binary-search; rows index into :attr:`bucket`.
    """

    def __init__(self, video: Video, bucket: StateBucket) -> None:
        self.video = video
        self.bucket = bucket
        self.n_chunks = int(video.n_chunks)
        self.window = bucket.window
        self.row_of: Dict[int, int] = {}
        self.member_ids = _EMPTY_INT  # sorted peer ids
        self.member_rows = _EMPTY_INT  # bucket rows aligned with member_ids
        # Watcher view (members with playback sessions), member order.
        self._watchers_stale = True
        self._watcher_rows = _EMPTY_INT
        self._watcher_ids = _EMPTY_INT
        # Flat candidate CSR from the last reuse-path assemble (or None).
        self._cand_cache: Optional[_CandCache] = None

    def admit(self, peer: Peer) -> int:
        row = self.bucket.admit_row(peer)
        self.row_of[peer.peer_id] = row
        at = int(np.searchsorted(self.member_ids, peer.peer_id))
        self.member_ids = np.insert(self.member_ids, at, peer.peer_id)
        self.member_rows = np.insert(self.member_rows, at, row)
        self._watchers_stale = True
        return row

    def remove(self, peer: Peer) -> None:
        row = self.row_of.pop(peer.peer_id)
        self.bucket.release_row(peer, row)
        at = int(np.searchsorted(self.member_ids, peer.peer_id))
        self.member_ids = np.delete(self.member_ids, at)
        self.member_rows = np.delete(self.member_rows, at)
        self._watchers_stale = True

    @property
    def n_members(self) -> int:
        return len(self.member_ids)

    def watcher_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, ids)`` of members with sessions, sorted-id order."""
        if self._watchers_stale:
            with_session = self.bucket.has_session[self.member_rows]
            self._watcher_rows = self.member_rows[with_session]
            self._watcher_ids = self.member_ids[with_session]
            self._watchers_stale = False
        return self._watcher_rows, self._watcher_ids


class PeerStateStore:
    """All columnar peer state, maintained incrementally across slots.

    Owned by :class:`~repro.p2p.system.P2PSystem`; mutated only through
    :meth:`admit` / :meth:`remove` plus the batched playback commit.
    Buffer bitmaps need no hook at all — delivery writes go straight
    into the matrices because the buffers are views into them.
    """

    def __init__(
        self, overlay: OverlayGraph, costs: CostModel, window: int
    ) -> None:
        self.overlay = overlay
        self.costs = costs
        self.window = max(1, int(window))
        self.buckets: Dict[int, StateBucket] = {}
        self.groups: Dict[int, VideoGroup] = {}
        #: Bumped on every admit/remove; keys membership-derived caches.
        self.membership_version = 0
        #: Bumped whenever any candidate entry is dropped; lets tests
        #: (and future caches) observe candidate invalidation.
        self.candidate_epoch = 0
        self.seed_ids: Set[int] = set()
        # Peer-dict-order columns (ids ascend because admission ids are
        # monotone; an out-of-order admit flips the fast-path flag).
        cap = 16
        self._order_ids = np.zeros(cap, dtype=np.int64)
        self._order_caps = np.zeros(cap, dtype=np.int64)
        self._order_isps = np.zeros(cap, dtype=np.int64)
        self._order_departure = np.full(cap, np.inf, dtype=float)
        self._order_seed = np.zeros(cap, dtype=bool)
        self._n = 0
        self._ids_monotone = True
        # Peer-id-indexed ISP lookup (−1 = offline).
        self._isp_table = np.full(64, -1, dtype=np.int64)
        # Region-column generation: bumped by every _isp_table mutation
        # (admit / remove / remove_batch) so regions_of can revalidate
        # its memo — and downstream plan caches their keys — by
        # (identity, version) instead of an elementwise compare.
        self._region_version = 0
        self._regions_memo: Optional[Tuple[object, int, np.ndarray]] = None
        # Per-peer candidate entries: pid -> (nb_rows, nb_ids, nb_costs),
        # mirrored by a pid-indexed presence column so the fast
        # assembler can find missing entries without a Python probe per
        # watcher.  Every _cand insert/pop/clear updates both.
        self._cand: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._cand_have = np.zeros(64, dtype=bool)
        # Shared iota scratch for segment-expansion index arithmetic.
        self._iota_buf = np.arange(1024, dtype=np.int64)
        self._overlay_version_seen = overlay.version
        # Candidate invalidation stream for the reuse-path CSR caches:
        # every entry popped from _cand is appended here; wholesale
        # clears (cost shocks) bump the epoch instead of logging pids.
        self._cand_log: List[int] = []
        self._cand_reset_epoch = 0
        # Session-sync trust (reuse path may skip the per-build resync).
        self._sessions_trusted = False
        self._sessions_dirty = False
        #: When on, every mutation is recorded into the current
        #: :class:`SlotDelta` (off by default: zero bookkeeping cost).
        self.record_delta = False
        self._delta = SlotDelta()

    # ------------------------------------------------------------------
    # Slot-delta recording (incremental-build mode)
    # ------------------------------------------------------------------
    def enable_delta_recording(self) -> None:
        """Start accumulating mutations into per-slot :class:`SlotDelta`s."""
        self.record_delta = True

    def consume_delta(self) -> SlotDelta:
        """The mutations since the last consume; resets the accumulator."""
        delta = self._delta
        self._delta = SlotDelta()
        return delta

    def trust_sessions(self) -> None:
        """Declare sessions mutated only through store methods.

        Lets reuse-mode :meth:`assemble_requests` skip the per-build
        watcher resync (the playback columns are then authoritative).
        Callers that mutate session objects out-of-band — tests, the
        bench harness's snapshot/restore — must call
        :meth:`mark_sessions_dirty` afterwards to force one resync.
        """
        self._sessions_trusted = True

    def mark_sessions_dirty(self) -> None:
        """Force the next assemble to resync rows from the sessions."""
        self._sessions_dirty = True

    def snapshot_delta_state(self):
        """Capture the reuse-path caches/log for exact replay.

        The bench harness times ``patch_problem`` min-of-N on identical
        state; without restoring the caches between repeats every repeat
        after the first would hit the all-clean fast path and the timing
        would be a lie.  Cache records are captured by reference — a
        later splice installs a *new* record and mutates the old one
        only through ``log_pos``, which is saved and restored here.
        """
        caches = {}
        for vid, group in self.groups.items():
            cache = group._cand_cache
            if cache is not None:
                caches[vid] = (cache, cache.log_pos)
        return (
            caches,
            list(self._cand_log),
            self._cand_reset_epoch,
            self._sessions_dirty,
        )

    def restore_delta_state(self, snap) -> None:
        """Restore state captured by :meth:`snapshot_delta_state`."""
        caches, log, epoch, dirty = snap
        for vid, group in self.groups.items():
            entry = caches.get(vid)
            if entry is None:
                group._cand_cache = None
            else:
                cache, log_pos = entry
                cache.log_pos = log_pos
                group._cand_cache = cache
        self._cand_log = list(log)
        self._cand_reset_epoch = epoch
        self._sessions_dirty = dirty

    # ------------------------------------------------------------------
    # Membership hooks
    # ------------------------------------------------------------------
    _ORDER_COLUMNS = (
        "_order_ids", "_order_caps", "_order_isps",
        "_order_departure", "_order_seed",
    )

    def _ensure_group(self, peer: Peer) -> VideoGroup:
        """The peer's :class:`VideoGroup`, creating group/bucket on demand."""
        vid = peer.video.video_id
        group = self.groups.get(vid)
        if group is None:
            n_chunks = int(peer.video.n_chunks)
            bucket = self.buckets.get(n_chunks)
            if bucket is None:
                bucket = StateBucket(n_chunks, self.window)
                self.buckets[n_chunks] = bucket
            group = VideoGroup(peer.video, bucket)
            self.groups[vid] = group
        return group

    def _append_order(self, peer: Peer) -> None:
        """Append one peer to the dict-order columns and id-indexed tables."""
        if peer.is_seed:
            self.seed_ids.add(peer.peer_id)
        n = self._n
        if n >= len(self._order_ids):
            for name in self._ORDER_COLUMNS:
                old = getattr(self, name)
                new = np.zeros(len(old) * 2, dtype=old.dtype)
                new[:n] = old[:n]
                setattr(self, name, new)
        if n and peer.peer_id <= self._order_ids[n - 1]:
            self._ids_monotone = False
        self._order_ids[n] = peer.peer_id
        self._order_caps[n] = peer.upload_capacity_chunks
        self._order_isps[n] = peer.isp
        self._order_departure[n] = (
            np.inf if peer.departure_time is None else peer.departure_time
        )
        self._order_seed[n] = peer.is_seed
        self._n = n + 1
        if peer.peer_id >= len(self._isp_table):
            new_size = max(len(self._isp_table) * 2, peer.peer_id + 1)
            table = np.full(new_size, -1, dtype=np.int64)
            table[: len(self._isp_table)] = self._isp_table
            self._isp_table = table
        self._isp_table[peer.peer_id] = peer.isp
        self._region_version += 1

    def admit(self, peer: Peer) -> None:
        group = self._ensure_group(peer)
        row = group.admit(peer)
        peer.state_group = group
        peer.state_row = row
        self._append_order(peer)
        self.membership_version += 1
        if self.record_delta:
            self._delta.admitted.append(peer.peer_id)
            self._delta.membership_changed = True

    def admit_batch(self, peers: Sequence[Peer]) -> None:
        """Admit many peers at once (batched :meth:`admit`).

        Final store state is identical to admitting the peers one by one
        in order, but each touched video's sorted member table is merged
        once instead of paying one ``np.insert`` rebuild per peer — the
        arrival-burst path of the churn slot boundary.
        """
        if not peers:
            return
        per_group: Dict[int, Tuple[List[int], List[int]]] = {}
        for peer in peers:
            group = self._ensure_group(peer)
            row = group.bucket.admit_row(peer)
            group.row_of[peer.peer_id] = row
            peer.state_group = group
            peer.state_row = row
            ids, rows = per_group.setdefault(peer.video.video_id, ([], []))
            ids.append(peer.peer_id)
            rows.append(row)
            self._append_order(peer)
        for vid, (id_list, row_list) in per_group.items():
            group = self.groups[vid]
            add_ids = np.asarray(id_list, dtype=np.int64)
            add_rows = np.asarray(row_list, dtype=np.int64)
            order = np.argsort(add_ids, kind="stable")  # ids are unique
            add_ids, add_rows = add_ids[order], add_rows[order]
            at = np.searchsorted(group.member_ids, add_ids)
            group.member_ids = np.insert(group.member_ids, at, add_ids)
            group.member_rows = np.insert(group.member_rows, at, add_rows)
            group._watchers_stale = True
        self.membership_version += len(peers)
        if self.record_delta:
            self._delta.admitted.extend(p.peer_id for p in peers)
            self._delta.membership_changed = True

    def remove(self, peer: Peer) -> None:
        group = peer.state_group
        if group is None:
            raise KeyError(f"peer {peer.peer_id} is not in the store")
        group.remove(peer)
        peer.state_group = None
        peer.state_row = None
        self.seed_ids.discard(peer.peer_id)
        idx = int(np.nonzero(self._order_ids[: self._n] == peer.peer_id)[0][0])
        for name in self._ORDER_COLUMNS:
            arr = getattr(self, name)
            arr[idx : self._n - 1] = arr[idx + 1 : self._n]
        self._n -= 1
        self._isp_table[peer.peer_id] = -1
        self._region_version += 1
        if self._cand.pop(peer.peer_id, None) is not None:
            self._cand_have[peer.peer_id] = False
            self.candidate_epoch += 1
            self._cand_log.append(peer.peer_id)
        self.membership_version += 1
        if self.record_delta:
            self._delta.removed.append(peer.peer_id)
            self._delta.membership_changed = True

    def remove_batch(self, peers: Sequence[Peer]) -> None:
        """Remove many peers at once (batched :meth:`remove`).

        One mask compaction over the order columns and one per touched
        member table, instead of an O(online) shift per departure — the
        departure path of the churn slot boundary.
        """
        if not peers:
            return
        per_group: Dict[int, List[Peer]] = {}
        for peer in peers:
            if peer.state_group is None:
                raise KeyError(f"peer {peer.peer_id} is not in the store")
            per_group.setdefault(peer.video.video_id, []).append(peer)
        for vid, members in per_group.items():
            group = self.groups[vid]
            for peer in members:
                row = group.row_of.pop(peer.peer_id)
                group.bucket.release_row(peer, row)
                peer.state_group = None
                peer.state_row = None
            gone = np.fromiter(
                (p.peer_id for p in members), dtype=np.int64, count=len(members)
            )
            keep = ~np.isin(group.member_ids, gone)
            group.member_ids = group.member_ids[keep]
            group.member_rows = group.member_rows[keep]
            group._watchers_stale = True
        ids = np.fromiter(
            (p.peer_id for p in peers), dtype=np.int64, count=len(peers)
        )
        n = self._n
        keep_order = ~np.isin(self._order_ids[:n], ids)
        kept = int(keep_order.sum())
        for name in self._ORDER_COLUMNS:
            arr = getattr(self, name)
            arr[:kept] = arr[:n][keep_order]
        self._n = kept
        self._isp_table[ids] = -1
        self._region_version += 1
        for peer in peers:
            self.seed_ids.discard(peer.peer_id)
            if self._cand.pop(peer.peer_id, None) is not None:
                self._cand_have[peer.peer_id] = False
                self.candidate_epoch += 1
                self._cand_log.append(peer.peer_id)
        self.membership_version += len(peers)
        if self.record_delta:
            self._delta.removed.extend(p.peer_id for p in peers)
            self._delta.membership_changed = True

    def update_capacity(self, peer: Peer) -> None:
        """Re-read one online peer's upload capacity into the column.

        Scenario-engine hook (capacity ramps, seeder outage/recovery):
        the caller mutates ``peer.upload_capacity_chunks`` and this
        re-syncs the dict-order capacity column so the next
        ``build_problem`` sees the new budget.
        """
        self.update_capacities([peer])

    def update_capacities(self, peers: Sequence[Peer]) -> None:
        """Batched :meth:`update_capacity` (one pass over the column)."""
        if not peers:
            return
        by_id = {p.peer_id: p for p in peers}
        n = self._n
        ids = self._order_ids[:n]
        hit = np.isin(ids, np.fromiter(by_id, dtype=np.int64, count=len(by_id)))
        idx = np.nonzero(hit)[0]
        if len(idx) != len(by_id):
            missing = set(by_id) - set(ids[idx].tolist())
            raise KeyError(f"peers {sorted(missing)} are not in the store")
        self._order_caps[idx] = np.fromiter(
            (by_id[pid].upload_capacity_chunks for pid in ids[idx].tolist()),
            dtype=np.int64,
            count=len(idx),
        )
        if self.record_delta:
            self._delta.capacity_touched.extend(ids[idx].tolist())
            self._delta.capacity_changed = True

    def invalidate_costs(self) -> None:
        """Drop every cached candidate-cost table (cost-regime change).

        Scenario-engine hook: after a mid-run ISP price shock the cached
        per-peer ``(rows, ids, costs)`` entries hold stale costs; this
        forces them to be rebuilt from the cost model on next use (reads
        only the model's pair cache — no random draws are consumed, so
        the run's cost trajectory is unperturbed).
        """
        if self._cand:
            self._cand.clear()
            self._cand_have[:] = False
            self.candidate_epoch += 1
        # The reuse-path CSR caches hold cost *copies*, so they go stale
        # even when the entry dict is already empty: always bump the
        # epoch (wholesale invalidation, no per-pid log entries).
        self._cand_reset_epoch += 1
        if self.record_delta:
            self._delta.costs_invalidated = True

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------
    def capacity_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(peer_ids, upload capacities)`` in peer-dict order (views)."""
        return self._order_ids[: self._n], self._order_caps[: self._n]

    def isp_table(self) -> np.ndarray:
        """Peer-id-indexed ISP lookup table (−1 = offline; do not mutate)."""
        return self._isp_table

    @property
    def region_version(self) -> int:
        """Generation counter of the ISP column (bumps on churn)."""
        return self._region_version

    def regions_of(self, peer_ids: np.ndarray) -> np.ndarray:
        """ISP region per peer id (vectorized ``isp_table`` gather).

        The region column the sharded solve path keys its row partition
        on — request peers are always online, so entries are the actual
        ISP ids (offline ids would read −1).

        Memoized by (``peer_ids`` identity, :attr:`region_version`):
        repeated calls with the same peer array — every re-bid round,
        and every stable-membership slot whose problem carries the
        cached request column forward — return the *same* read-only
        array, which lets the sharded solver revalidate its row
        partition by identity instead of an elementwise compare.
        """
        memo = self._regions_memo
        if memo is not None:
            ref, version, cached = memo
            if version == self._region_version and ref() is peer_ids:
                return cached
        regions = self._isp_table[np.asarray(peer_ids, dtype=np.int64)]
        regions.flags.writeable = False
        try:
            self._regions_memo = (
                weakref.ref(peer_ids),
                self._region_version,
                regions,
            )
        except TypeError:  # plain lists etc. are not weak-referenceable
            self._regions_memo = None
        return regions

    def departure_scan(self, t: float, remove_finished: bool) -> List[int]:
        """Non-seed peers due to leave at slot boundary ``t``, dict order.

        One mask over the departure-time column (``inf`` = stays), plus
        — when ``remove_finished`` — a per-bucket finished check on the
        synced playback positions.  Matches the reference loop over
        ``peers.values()`` (``departure_time <= t`` or
        ``session.finished``) including its dict iteration order, which
        the batched removal preserves.
        """
        n = self._n
        if not n:
            return []
        ids = self._order_ids[:n]
        doomed = (self._order_departure[:n] <= t) & ~self._order_seed[:n]
        if remove_finished:
            for bucket in self.buckets.values():
                self._sync_bucket(bucket)
            finished: List[np.ndarray] = []
            for group in self.groups.values():
                rows, g_ids = group.watcher_arrays()
                if not len(rows):
                    continue
                done = group.bucket.position[rows] >= group.n_chunks
                if done.any():
                    finished.append(g_ids[done])
            if finished:
                doomed |= np.isin(ids, np.concatenate(finished))
        if not doomed.any():
            return []
        return ids[doomed].tolist()

    # ------------------------------------------------------------------
    # Candidate tables
    # ------------------------------------------------------------------
    def _drain_overlay(self) -> None:
        """Invalidate candidate entries of peers whose links changed."""
        if self.overlay.version == self._overlay_version_seen:
            return
        dirty = self.overlay.consume_dirty()
        if dirty:
            dropped = False
            for pid in dirty:
                if self._cand.pop(pid, None) is not None:
                    self._cand_have[pid] = False
                    dropped = True
                    self._cand_log.append(pid)
                    if self.record_delta:
                        self._delta.candidate_drops.append(pid)
            if dropped:
                self.candidate_epoch += 1
        else:
            # Version moved without dirty marks (defensive): full sweep.
            if self._cand:
                self._cand.clear()
                self._cand_have[:] = False
                self.candidate_epoch += 1
            self._cand_reset_epoch += 1
        self._overlay_version_seen = self.overlay.version

    def _candidate_entry(
        self, pid: int, group: VideoGroup
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Same-video neighbor ``(rows, ids, costs)``, sorted by id."""
        entry = self._cand.get(pid)
        if entry is None:
            members = group.member_ids
            nb = self.overlay.neighbor_array(pid)
            if nb.size and members.size:
                pos = np.searchsorted(members, nb)
                pos[pos >= members.size] = 0
                hit = members[pos] == nb
                mpos = pos[hit]
                nb_ids = members[mpos]
                nb_rows = group.member_rows[mpos]
            else:
                nb_ids = _EMPTY_INT
                nb_rows = _EMPTY_INT
            nb_costs = self.costs.costs_for_pairs(nb_ids, pid)
            entry = (nb_rows, nb_ids, nb_costs)
            self._cand[pid] = entry
            have = self._cand_have
            if pid >= len(have):
                grown = np.zeros(max(pid + 1, 2 * len(have)), dtype=bool)
                grown[: len(have)] = have
                self._cand_have = have = grown
            have[pid] = True
        return entry

    def _flat_candidates(
        self, group: VideoGroup, active_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat candidate CSR over ``active_ids`` (entries pre-built)."""
        entries = [
            self._candidate_entry(pid, group) for pid in active_ids.tolist()
        ]
        d = len(entries)
        counts = np.fromiter(
            (len(e[0]) for e in entries), dtype=np.int64, count=d
        )
        indptr = np.zeros(d + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        if d and int(indptr[-1]):
            rows = np.concatenate([e[0] for e in entries])
            ids = np.concatenate([e[1] for e in entries])
            costs = np.concatenate([e[2] for e in entries])
        else:
            rows, ids, costs = _EMPTY_INT, _EMPTY_INT, _EMPTY_FLOAT
        return counts, indptr, rows, ids, costs

    def _flat_candidates_cached(
        self, group: VideoGroup, active_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Cached/spliced :meth:`_flat_candidates` (the reuse path).

        Byte-identical output to the cold build: per-watcher segments
        whose entry survived untouched since the cached copy (not in the
        drop log, no cost-regime epoch bump) are gathered straight out
        of the previous call's pooled arrays; only fresh or invalidated
        segments are re-read from the entry dict.  The common steady
        slot — same active set, nothing dropped — returns the cached
        arrays outright.
        """
        cache = group._cand_cache
        log = self._cand_log
        if cache is None or cache.reset_epoch != self._cand_reset_epoch:
            out = self._flat_candidates(group, active_ids)
            group._cand_cache = _CandCache(
                active_ids, *out, len(log), self._cand_reset_epoch
            )
            self._trim_cand_log()
            return out
        dropped = log[cache.log_pos :]
        stale = (
            np.isin(active_ids, np.asarray(dropped, dtype=np.int64))
            if dropped
            else None
        )
        if (stale is None or not stale.any()) and np.array_equal(
            active_ids, cache.active_ids
        ):
            cache.log_pos = len(log)
            self._trim_cand_log()
            return (
                cache.counts, cache.indptr, cache.rows,
                cache.ids, cache.costs,
            )
        # Splice: cached segments for surviving actives, dict entries
        # (pre-built by assemble_requests) for the rest, one pooled
        # gather in active order.
        d = len(active_ids)
        if len(cache.active_ids):
            pos = np.searchsorted(cache.active_ids, active_ids)
            np.minimum(pos, len(cache.active_ids) - 1, out=pos)
            in_cache = cache.active_ids[pos] == active_ids
        else:
            pos = np.zeros(d, dtype=np.int64)
            in_cache = np.zeros(d, dtype=bool)
        if stale is not None:
            in_cache &= ~stale
        counts = np.empty(d, dtype=np.int64)
        starts = np.empty(d, dtype=np.int64)
        hit_pos = pos[in_cache]
        counts[in_cache] = cache.counts[hit_pos]
        starts[in_cache] = cache.indptr[:-1][hit_pos]
        fresh = ~in_cache
        fresh_ids = active_ids[fresh]
        pool_rows, pool_ids, pool_costs = cache.rows, cache.ids, cache.costs
        if len(fresh_ids):
            entries = [
                self._candidate_entry(pid, group)
                for pid in fresh_ids.tolist()
            ]
            f_counts = np.fromiter(
                (len(e[0]) for e in entries),
                dtype=np.int64,
                count=len(entries),
            )
            f_offs = np.zeros(len(entries), dtype=np.int64)
            np.cumsum(f_counts[:-1], out=f_offs[1:])
            counts[fresh] = f_counts
            starts[fresh] = f_offs + len(pool_rows)
            if int(f_counts[-1] + f_offs[-1]):
                pool_rows = np.concatenate([pool_rows] + [e[0] for e in entries])
                pool_ids = np.concatenate([pool_ids] + [e[1] for e in entries])
                pool_costs = np.concatenate(
                    [pool_costs] + [e[2] for e in entries]
                )
        indptr = np.zeros(d + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        edge_idx = np.repeat(starts - indptr[:-1], counts) + self._iota(total)
        rows = pool_rows[edge_idx]
        ids = pool_ids[edge_idx]
        costs = pool_costs[edge_idx]
        group._cand_cache = _CandCache(
            active_ids, counts, indptr, rows, ids, costs,
            len(log), self._cand_reset_epoch,
        )
        self._trim_cand_log()
        return counts, indptr, rows, ids, costs

    def _iota(self, n: int) -> np.ndarray:
        """First ``n`` int64 naturals from a shared read-only scratch.

        The segment-expansion index arithmetic needs a fresh-looking
        ``arange`` per call; callers only ever use it as an operand (it
        is never written through), so one growing buffer serves all.
        """
        buf = self._iota_buf
        if n > len(buf):
            self._iota_buf = buf = np.arange(
                max(n, 2 * len(buf)), dtype=np.int64
            )
        return buf[:n]

    def _trim_cand_log(self) -> None:
        """Compact the drop log once it outgrows the limit.

        The log prefix every live cache has already consumed is deleted
        and the cursors rebased; a cache lagging more than the limit (a
        group that stopped producing requests) is dropped rather than
        allowed to pin the log forever.  With no caches at all — the
        cold-only pipeline — the whole log clears.
        """
        log = self._cand_log
        if len(log) <= _CAND_LOG_LIMIT:
            return
        floor = len(log) - _CAND_LOG_LIMIT
        cut = len(log)
        for group in self.groups.values():
            cache = group._cand_cache
            if cache is None:
                continue
            if cache.log_pos < floor:
                group._cand_cache = None
            elif cache.log_pos < cut:
                cut = cache.log_pos
        if cut:
            del log[:cut]
            for group in self.groups.values():
                cache = group._cand_cache
                if cache is not None:
                    cache.log_pos -= cut

    # ------------------------------------------------------------------
    # Batched delivery (transfer-apply hot path)
    # ------------------------------------------------------------------
    def deliver_runs(
        self,
        run_peers: Sequence[Peer],
        starts: np.ndarray,
        stops: np.ndarray,
        chunks: np.ndarray,
    ) -> np.ndarray:
        """Write per-peer chunk runs into the bucket matrices; returns
        the number of newly held chunks per run.

        ``chunks[starts[i]:stops[i]]`` is the (unique, in-range) chunk
        batch for ``run_peers[i]`` — the downloader-grouped runs
        ``_apply_transfers`` derives from the served columns.  Instead
        of one small bitmap write per receiving buffer, runs are grouped
        by state bucket and each bucket takes *one* fancy-indexed
        read-then-write over its shared mask matrix (the buffers are
        views into it, so they observe the delivery with no extra sync).
        Caller contract matches :meth:`ChunkBuffer.receive_batch_trusted`:
        every peer is store-bound with an uncapped buffer, and no
        (peer, chunk) pair repeats within the batch.
        """
        if self.record_delta:
            # O(1): keep the run list itself; reasons() resolves lazily.
            self._delta.delivered_runs.append(run_peers)
        n_runs = len(run_peers)
        lens = stops - starts
        added = np.zeros(n_runs, dtype=np.int64)
        per_bucket: Dict[int, List[int]] = {}
        buckets: Dict[int, StateBucket] = {}
        for i, peer in enumerate(run_peers):
            bucket = peer.state_group.bucket
            per_bucket.setdefault(id(bucket), []).append(i)
            buckets[id(bucket)] = bucket
        for key, run_list in per_bucket.items():
            bucket = buckets[key]
            run_idx = np.asarray(run_list, dtype=np.int64)
            s = starts[run_idx]
            l = lens[run_idx]
            total = int(l.sum())
            offs = np.zeros(len(run_idx), dtype=np.int64)
            np.cumsum(l[:-1], out=offs[1:])
            edge_idx = np.repeat(s - offs, l) + np.arange(total, dtype=np.int64)
            rows_e = np.repeat(
                np.fromiter(
                    (run_peers[i].state_row for i in run_list),
                    dtype=np.int64,
                    count=len(run_list),
                ),
                l,
            )
            ch = chunks[edge_idx]
            held = bucket.masks[rows_e, ch]
            bucket.masks[rows_e, ch] = True
            new = ~held
            if bool(new.all()):
                added[run_idx] = l
            else:
                rid = np.repeat(np.arange(len(run_idx), dtype=np.int64), l)
                added[run_idx] = np.bincount(
                    rid, weights=new, minlength=len(run_idx)
                ).astype(np.int64)
        for peer, add in zip(run_peers, added.tolist()):
            if add:
                peer.buffer.note_external_writes(add)
        return added

    # ------------------------------------------------------------------
    # Session sync
    # ------------------------------------------------------------------
    def _sync_bucket(self, bucket: StateBucket) -> np.ndarray:
        """Fresh playback positions; resyncs rows mutated out-of-band.

        Positions are read from the session objects (one ``fromiter``)
        and compared to the stored column: a mismatch means the session
        moved outside the batched path (direct ``advance_to`` calls,
        benchmark snapshot/restore), so its row — position,
        last-advance, the ``missed`` bitmap — is rebuilt from the
        session before anything trusts it.
        """
        rows, sessions = bucket.watcher_arrays()
        n = len(rows)
        if not n:
            return _EMPTY_INT
        fresh = np.fromiter(
            (s.position for s in sessions), dtype=np.int64, count=n
        )
        stored = bucket.position[rows]
        if not np.array_equal(fresh, stored):
            stale = np.nonzero(fresh != stored)[0]
            for i in stale.tolist():
                bucket.resync_row(int(rows[i]), sessions[i])
        return fresh

    # ------------------------------------------------------------------
    # Request assembly (build_problem hot path)
    # ------------------------------------------------------------------
    def assemble_requests(
        self,
        now: float,
        valuation: DeadlineValuation,
        lookahead: float = 0.0,
        reuse: bool = False,
    ):
        """All slot requests as flat columns in reference request order.

        Returns ``None`` when no peer requests anything, else
        ``(peers, chunk_pairs, valuations, cand_ids, cand_costs,
        indptr)`` where ``chunk_pairs`` is the ``(R, 2)``
        ``(video_id, chunk_index)`` column and the CSR candidate arrays
        are sorted by uploader id within each request — exactly the
        problem :meth:`P2PSystem.build_problem_reference` constructs.

        ``reuse=True`` is the incremental-build path: the flat candidate
        CSR is spliced forward from each group's previous assemble
        (:meth:`_flat_candidates_cached`) and — with sessions trusted and
        clean — the per-build watcher resync is skipped.  Output is
        byte-identical either way; windows and valuations are always
        recomputed (playback shifts the deadline fractions every slot).
        """
        self._drain_overlay()
        if not (reuse and self._sessions_trusted and not self._sessions_dirty):
            for bucket in self.buckets.values():
                self._sync_bucket(bucket)
            self._sessions_dirty = False
        if reuse:
            return self._assemble_requests_fast(now, valuation, lookahead)
        preps = []
        need_entry: List[Tuple[int, VideoGroup]] = []
        for group in self.groups.values():
            prep = self._prepare_group(group, now)
            if prep is None:
                continue
            preps.append(prep)
            for pid in prep[1].tolist():
                if pid not in self._cand:
                    need_entry.append((pid, group))
        if need_entry:
            # Build missing candidate tables in peer-dict order so the
            # cost model samples never-seen pairs in exactly the order
            # the pre-store pipeline did (trajectory preservation).
            need_entry.sort(key=self._dict_order_key())
            for pid, group in need_entry:
                self._candidate_entry(pid, group)
        parts = []
        for prep in preps:
            part = self._finish_group(prep, now, valuation, lookahead)
            if part is not None:
                parts.append((prep[0].video.video_id,) + part)
        if not parts:
            return None
        if len(parts) == 1:
            vid, peers, chunks, vals, counts, cand_ids, cand_costs = parts[0]
            vids = np.full(len(peers), vid, dtype=np.int64)
        else:
            peers = np.concatenate([p[1] for p in parts])
            chunks = np.concatenate([p[2] for p in parts])
            vals = np.concatenate([p[3] for p in parts])
            counts = np.concatenate([p[4] for p in parts])
            cand_ids = np.concatenate([p[5] for p in parts])
            cand_costs = np.concatenate([p[6] for p in parts])
            vids = np.repeat(
                np.fromiter((p[0] for p in parts), dtype=np.int64, count=len(parts)),
                np.fromiter((len(p[1]) for p in parts), dtype=np.int64, count=len(parts)),
            )
        return self._pack_requests(
            peers, vids, chunks, vals, counts, cand_ids, cand_costs
        )

    def _pack_requests(self, peers, vids, chunks, vals, counts,
                       cand_ids, cand_costs):
        """Permute concatenated request columns into peer-dict order.

        Shared epilogue of both assemble paths.  Any concatenation
        order is acceptable on entry as long as each peer's requests
        stay window-ordered relative to each other (a peer watches one
        video, so its requests come from a single group): the stable
        dict-order permutation then lands every column on identical
        bytes.
        """
        n_req = len(peers)
        # The permutation may only be skipped when ascending id *is*
        # peer-dict order; with out-of-order admissions an incidentally
        # sorted column must still be permuted into dict order.
        if not (self._ids_monotone and np.all(peers[1:] >= peers[:-1])):
            perm = self._request_permutation(peers)
            old_indptr = np.zeros(n_req + 1, dtype=np.int64)
            np.cumsum(counts, out=old_indptr[1:])
            lens = counts[perm]
            indptr = np.zeros(n_req + 1, dtype=np.int64)
            np.cumsum(lens, out=indptr[1:])
            edge_idx = np.repeat(
                old_indptr[:-1][perm] - indptr[:-1], lens
            ) + np.arange(len(cand_ids), dtype=np.int64)
            peers = peers[perm]
            chunks = chunks[perm]
            vals = vals[perm]
            vids = vids[perm]
            cand_ids = cand_ids[edge_idx]
            cand_costs = cand_costs[edge_idx]
        else:
            indptr = np.zeros(n_req + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
        pairs = np.empty((n_req, 2), dtype=np.int64)
        pairs[:, 0] = vids
        pairs[:, 1] = chunks
        return peers, pairs, vals, cand_ids, cand_costs, indptr

    def _request_permutation(self, peers: np.ndarray) -> np.ndarray:
        """Permutation restoring peer-dict request order."""
        if self._ids_monotone:
            # Dict order == ascending id; stable sort keeps each peer's
            # window-ordered block intact.
            return np.argsort(peers, kind="stable")
        rank = {
            pid: i for i, pid in enumerate(self._order_ids[: self._n].tolist())
        }
        key = np.fromiter(
            (rank[pid] for pid in peers.tolist()),
            dtype=np.int64,
            count=len(peers),
        )
        return np.argsort(key, kind="stable")

    def _dict_order_key(self):
        """Sort key putting ``(pid, group)`` items in peer-dict order."""
        if self._ids_monotone:
            return lambda item: item[0]
        rank = {
            pid: i for i, pid in enumerate(self._order_ids[: self._n].tolist())
        }
        return lambda item: rank[item[0]]

    def _prepare_group(self, group: VideoGroup, now: float):
        """Window/availability stage: which watchers can request what.

        Returns ``(group, gated_ids, gated_rows, due, avail)`` for the
        watchers that are unfinished *and* have a non-empty available
        window (the gate the reference applies before touching the cost
        model), or ``None`` when the group cannot produce requests.
        The bucket's positions must already be synced.
        """
        rows, ids = group.watcher_arrays()
        if not len(rows):
            return None
        bucket = group.bucket
        n_chunks = group.n_chunks
        positions = bucket.position[rows]
        active = positions < n_chunks
        if not active.any():
            return None
        act_rows = rows[active]
        st = bucket.start_time[act_rows]
        sp = bucket.start_pos[act_rows]
        cps = group.video.chunks_per_second
        # due_position(now), vectorized with the same float ops.
        due = sp + (np.maximum(0.0, now - st) * cps).astype(np.int64)
        np.minimum(due, n_chunks, out=due)
        W = group.window
        offs = np.arange(W, dtype=np.int64)
        in_range = (due[:, None] + offs[None, :]) < n_chunks
        swv_masks, swv_missed = bucket.window_views()
        held = swv_masks[act_rows, due]
        missed_win = swv_missed[act_rows, due]
        avail = in_range & ~held & ~missed_win
        gated = avail.any(axis=1)
        if not gated.any():
            return None
        return (
            group,
            ids[active][gated],
            act_rows[gated],
            due[gated],
            avail[gated],
        )

    def _finish_group(
        self,
        prep,
        now: float,
        valuation: DeadlineValuation,
        lookahead: float,
    ):
        group, act_ids, act_rows, due, avail = prep
        bucket = group.bucket
        n_chunks = group.n_chunks
        W = group.window
        flats = self._flat_candidates(group, act_ids)
        nb_counts, nb_indptr, nb_rows, nb_ids, nb_costs = flats
        sel = nb_counts > 0
        if not sel.any():
            return None
        if not sel.all():
            # Restrict every per-watcher array to watchers with at least
            # one same-video neighbor (the only ones that can request).
            keep_edges = np.repeat(sel, nb_counts)
            nb_rows = nb_rows[keep_edges]
            nb_ids = nb_ids[keep_edges]
            nb_costs = nb_costs[keep_edges]
            nb_counts = nb_counts[sel]
            nb_indptr = np.zeros(len(nb_counts) + 1, dtype=np.int64)
            np.cumsum(nb_counts, out=nb_indptr[1:])
            act_rows = act_rows[sel]
            act_ids = act_ids[sel]
            due = due[sel]
            avail = avail[sel]
        d = len(act_rows)
        st = bucket.start_time[act_rows]
        sp = bucket.start_pos[act_rows]
        cps = group.video.chunks_per_second
        cols = due[:, None] + np.arange(W, dtype=np.int64)[None, :]
        # Valuations: identical formula (and op order) to
        # Peer.build_request_arrays, evaluated on the whole window.
        deadlines = (st[:, None] + (cols - sp[:, None]) / cps) - now
        to_deadline = np.maximum(0.0, deadlines - lookahead)
        values = valuation.values(to_deadline)
        swv_masks, _ = bucket.window_views()
        owner = np.repeat(np.arange(d, dtype=np.int64), nb_counts)
        have = swv_masks[nb_rows, due[owner]]
        have &= avail[owner]
        # Candidate counts per (watcher, chunk): segment sums over the
        # neighbor rows.  int8 is safe while no peer has ≥128 same-video
        # neighbors; fall back to a wide dtype otherwise.
        if int(nb_counts.max(initial=0)) < 128:
            counts = np.add.reduceat(have.view(np.int8), nb_indptr[:-1], axis=0)
        else:
            counts = np.add.reduceat(
                have.astype(np.int64), nb_indptr[:-1], axis=0
            )
        requested = counts > 0
        rd, rc = np.nonzero(requested)
        if not len(rd):
            return None
        req_peers = act_ids[rd]
        req_chunks = due[rd] + rc
        req_vals = values[rd, rc]
        req_counts = counts[rd, rc].astype(np.int64)
        # Edges: nonzero of `have` is (neighbor-major, chunk) per
        # watcher; the problem wants (chunk-major, neighbor-sorted), so
        # reorder by the composite (watcher, chunk, neighbor) key.
        nzr, nzc = np.nonzero(have)
        key = (owner[nzr] * np.int64(W) + nzc) * np.int64(len(nb_rows)) + nzr
        order = np.argsort(key, kind="stable")
        cand_ids = nb_ids[nzr[order]]
        cand_costs = nb_costs[nzr[order]]
        return req_peers, req_chunks, req_vals, req_counts, cand_ids, cand_costs

    def _assemble_requests_fast(
        self, now: float, valuation: DeadlineValuation, lookahead: float
    ):
        """Reuse-path assembler: one fused pass per bucket.

        Byte-identical output to the cold per-group loop, pinned by the
        property suite, but with three structural shortcuts the pinned
        reference doesn't take:

        * every group sharing a :class:`StateBucket` (same chunk count,
          same window) is prepared and finished in a single batched
          pass, so the per-group numpy fixed costs stop dominating at
          small scale;
        * ``avail`` gates the per-cell request counts instead of being
          broadcast over the edge matrix, and valuations are evaluated
          only at requested cells (both are elementwise, so restricting
          them changes no bytes);
        * candidate edges come from expanding each requested cell's
          neighbor segment — already (watcher, chunk, neighbor) order —
          so the cold path's full-matrix ``nonzero`` and edge-key
          argsort disappear.

        Candidate tables themselves still come from the per-group
        :meth:`_flat_candidates_cached` splice.  Group concatenation
        order is free here: each peer watches one video, so the
        dict-order permutation in :meth:`_pack_requests` lands on
        identical bytes regardless.
        """
        staged = []
        need_entry: List[Tuple[int, VideoGroup]] = []
        per_bucket: Dict[int, list] = {}
        bucket_order: List[StateBucket] = []
        for group in self.groups.values():
            rows, ids = group.watcher_arrays()
            if not len(rows):
                continue
            key = id(group.bucket)
            if key not in per_bucket:
                per_bucket[key] = []
                bucket_order.append(group.bucket)
            per_bucket[key].append((group, rows, ids))
        for bucket in bucket_order:
            entries = per_bucket[id(bucket)]
            n_chunks = bucket.n_chunks
            if len(entries) == 1:
                rows_all, ids_all = entries[0][1], entries[0][2]
                gidx = np.zeros(len(rows_all), dtype=np.int64)
            else:
                rows_all = np.concatenate([e[1] for e in entries])
                ids_all = np.concatenate([e[2] for e in entries])
                gidx = np.repeat(
                    np.arange(len(entries), dtype=np.int64),
                    np.fromiter(
                        (len(e[1]) for e in entries),
                        dtype=np.int64, count=len(entries),
                    ),
                )
            positions = bucket.position[rows_all]
            active = positions < n_chunks
            if not active.any():
                continue
            act_rows = rows_all[active]
            st = bucket.start_time[act_rows]
            sp = bucket.start_pos[act_rows]
            cps = bucket.cps[act_rows]
            due = sp + (np.maximum(0.0, now - st) * cps).astype(np.int64)
            np.minimum(due, n_chunks, out=due)
            W = bucket.window
            if W <= _PACKED_WINDOW_MAX:
                # Packed windows: availability as one word per watcher.
                # Bit W-1-k of each word is window offset k, so the
                # word ops below mirror the boolean branch bit-for-bit.
                pw, mw, wpr = self._packed_matrices(bucket)
                held_w = _window_words(pw, wpr, act_rows, due, W)
                miss_w = _window_words(mw, wpr, act_rows, due, W)
                full = np.uint64((1 << W) - 1)
                dead = np.uint64(W) - np.clip(
                    n_chunks - due, 0, W
                ).astype(np.uint64)
                in_range_w = (full >> dead) << dead
                avail = in_range_w & ~held_w & ~miss_w
                gated = avail != 0
                packed = (pw, wpr)
            else:
                offs = np.arange(W, dtype=np.int64)
                in_range = (due[:, None] + offs[None, :]) < n_chunks
                swv_masks, swv_missed = bucket.window_views()
                held = swv_masks[act_rows, due]
                missed_win = swv_missed[act_rows, due]
                avail = in_range & ~held & ~missed_win
                gated = avail.any(axis=1)
                packed = None
            if not gated.any():
                continue
            act_rows = act_rows[gated]
            act_ids = ids_all[active][gated]
            agidx = gidx[active][gated]
            due = due[gated]
            avail = avail[gated]
            staged.append(
                (bucket, entries, act_rows, act_ids, due, avail, agidx, packed)
            )
            have = self._cand_have
            in_tab = act_ids < len(have)
            hit = np.zeros(len(act_ids), dtype=bool)
            hit[in_tab] = have[act_ids[in_tab]]
            if not hit.all():
                for i in np.nonzero(~hit)[0].tolist():
                    need_entry.append(
                        (int(act_ids[i]), entries[int(agidx[i])][0])
                    )
        if need_entry:
            # Same dict-order discipline as the cold path: never-seen
            # pairs must hit the cost model in reference order.
            need_entry.sort(key=self._dict_order_key())
            for pid, group in need_entry:
                self._candidate_entry(pid, group)
        outputs = []
        for stage in staged:
            part = self._finish_bucket_fast(stage, now, valuation, lookahead)
            if part is not None:
                outputs.append(part)
        if not outputs:
            return None
        if len(outputs) == 1:
            peers, vids, chunks, vals, counts, cand_ids, cand_costs = outputs[0]
        else:
            peers = np.concatenate([o[0] for o in outputs])
            vids = np.concatenate([o[1] for o in outputs])
            chunks = np.concatenate([o[2] for o in outputs])
            vals = np.concatenate([o[3] for o in outputs])
            counts = np.concatenate([o[4] for o in outputs])
            cand_ids = np.concatenate([o[5] for o in outputs])
            cand_costs = np.concatenate([o[6] for o in outputs])
        return self._pack_requests(
            peers, vids, chunks, vals, counts, cand_ids, cand_costs
        )

    def _packed_matrices(self, bucket: StateBucket):
        """Word-packed ``(masks, missed)`` rows plus words-per-row.

        Each row becomes ``wpr`` native uint64 words in big-endian
        packbits bit order (chunk ``64q + j`` at bit ``63 - j`` of word
        ``q``), padded so the two-word read in :func:`_window_words`
        stays inside the row for any window start up to ``n_chunks``.
        Packed fresh on every fast assemble — the matrices mutate
        between builds and packing is linear in the bitmap size.
        """
        n = bucket.n_rows
        width = max((bucket.padded + 7) >> 3, (bucket.n_chunks >> 3) + 16)
        width = (width + 7) & ~7
        pm = np.zeros((n, width), dtype=np.uint8)
        mm = np.zeros((n, width), dtype=np.uint8)
        pb = np.packbits(bucket.masks[:n], axis=1)
        pm[:, : pb.shape[1]] = pb
        mb = np.packbits(bucket.missed[:n], axis=1)
        mm[:, : mb.shape[1]] = mb
        wpr = width >> 3
        pw = pm.reshape(-1).view(">u8").astype(np.uint64)
        mw = mm.reshape(-1).view(">u8").astype(np.uint64)
        return pw, mw, wpr

    def _finish_bucket_fast(self, stage, now, valuation, lookahead):
        """Finish one bucket's fused prep; see :meth:`_assemble_requests_fast`."""
        bucket, entries, act_rows, act_ids, due, avail, agidx, packed = stage
        W = bucket.window
        # Per-group candidate splices, sliced out of the fused watcher
        # columns (agidx ascends with the group concatenation).
        bounds = np.searchsorted(agidx, np.arange(len(entries) + 1))
        flats = []
        vids_of = np.empty(len(entries), dtype=np.int64)
        for gi, (group, _, _) in enumerate(entries):
            vids_of[gi] = group.video.video_id
            lo, hi = int(bounds[gi]), int(bounds[gi + 1])
            if hi > lo:
                flats.append(self._flat_candidates_cached(group, act_ids[lo:hi]))
        if len(flats) == 1:
            nb_counts, _, nb_rows, nb_ids, nb_costs = flats[0]
        else:
            nb_counts = np.concatenate([f[0] for f in flats])
            nb_rows = np.concatenate([f[2] for f in flats])
            nb_ids = np.concatenate([f[3] for f in flats])
            nb_costs = np.concatenate([f[4] for f in flats])
        sel = nb_counts > 0
        if not sel.any():
            return None
        if not sel.all():
            keep_edges = np.repeat(sel, nb_counts)
            nb_rows = nb_rows[keep_edges]
            nb_ids = nb_ids[keep_edges]
            nb_costs = nb_costs[keep_edges]
            nb_counts = nb_counts[sel]
            act_rows = act_rows[sel]
            act_ids = act_ids[sel]
            agidx = agidx[sel]
            due = due[sel]
            avail = avail[sel]
        d = len(act_rows)
        if self._ids_monotone and len(entries) > 1:
            # Pre-sort watchers by peer id so the emitted request column
            # is already in dict order and :meth:`_pack_requests` can
            # skip its request+edge permutation (requests outnumber
            # watchers many times over).  Candidate segments are
            # permuted alongside.  Stable, and each peer watches one
            # video, so per-peer window order is untouched — identical
            # bytes to permuting after the fact.
            order = np.argsort(act_ids, kind="stable")
            act_ids = act_ids[order]
            act_rows = act_rows[order]
            agidx = agidx[order]
            due = due[order]
            avail = avail[order]
            new_counts = nb_counts[order]
            old_indptr = np.zeros(d + 1, dtype=np.int64)
            np.cumsum(nb_counts, out=old_indptr[1:])
            nb_indptr = np.zeros(d + 1, dtype=np.int64)
            np.cumsum(new_counts, out=nb_indptr[1:])
            seg_idx = np.repeat(
                old_indptr[:-1][order] - nb_indptr[:-1], new_counts
            ) + self._iota(len(nb_rows))
            nb_rows = nb_rows[seg_idx]
            nb_ids = nb_ids[seg_idx]
            nb_costs = nb_costs[seg_idx]
            nb_counts = new_counts
        else:
            nb_indptr = np.zeros(d + 1, dtype=np.int64)
            np.cumsum(nb_counts, out=nb_indptr[1:])
        owner = np.repeat(np.arange(d, dtype=np.int64), nb_counts)
        counts = None
        if packed is not None:
            # Word pipeline: one uint64 window per candidate edge, OR'd
            # per watcher.  A cell is requested iff some neighbor holds
            # it and it is available — the same predicate the boolean
            # branch evaluates as (counts > 0) & avail.
            pw, wpr = packed
            words = _window_words(pw, wpr, nb_rows, due[owner], W)
            any_w = np.bitwise_or.reduceat(words, nb_indptr[:-1])
            req_w = any_w & avail
            # Big-endian byte view + unpackbits puts bit 63-c in column
            # c, so columns 64-W.. are window offsets 0..W-1.
            req_bytes = req_w.astype(">u8").view(np.uint8).reshape(d, 8)
            req_mat = np.unpackbits(req_bytes, axis=1)[:, 64 - W:]
            rd, rc = np.nonzero(req_mat)
        else:
            swv_masks, _ = bucket.window_views()
            have = swv_masks[nb_rows, due[owner]]
            if int(nb_counts.max(initial=0)) < 128:
                counts = np.add.reduceat(
                    have.view(np.int8), nb_indptr[:-1], axis=0
                )
            else:
                counts = np.add.reduceat(
                    have.astype(np.int64), nb_indptr[:-1], axis=0
                )
            # An unavailable cell would have been zeroed inside `have`
            # before the segment sum; masking the requested set instead
            # leaves available cells' counts untouched.
            requested = (counts > 0) & avail
            rd, rc = np.nonzero(requested)
        if not len(rd):
            return None
        req_rows = act_rows[rd]
        req_peers = act_ids[rd]
        req_chunks = due[rd] + rc
        st = bucket.start_time[req_rows]
        sp = bucket.start_pos[req_rows]
        cps = bucket.cps[req_rows]
        # Same elementwise expression (and op order) as the reference's
        # full-window matrix, evaluated at the requested cells only.
        deadlines = (st + (req_chunks - sp) / cps) - now
        req_vals = valuation.values(np.maximum(0.0, deadlines - lookahead))
        # Edges: expand each requested cell's neighbor segment and keep
        # the holders.  Segments ascend by uploader id (the candidate
        # tables are sorted), so the concatenation is already the
        # (watcher, chunk, neighbor) order the problem wants.
        lens = nb_counts[rd]
        offs = np.zeros(len(rd) + 1, dtype=np.int64)
        np.cumsum(lens, out=offs[1:])
        edge_idx = np.repeat(
            nb_indptr[:-1][rd] - offs[:-1], lens
        ) + self._iota(int(offs[-1]))
        hold = bucket.masks[nb_rows[edge_idx], np.repeat(req_chunks, lens)]
        picked = edge_idx[hold]
        cand_ids = nb_ids[picked]
        cand_costs = nb_costs[picked]
        if counts is not None:
            req_counts = counts[rd, rc].astype(np.int64)
        elif int(nb_counts.max(initial=0)) < 128:
            req_counts = np.add.reduceat(
                hold.view(np.int8), offs[:-1]
            ).astype(np.int64)
        else:
            req_counts = np.add.reduceat(hold.astype(np.int64), offs[:-1])
        vids = vids_of[agidx[rd]]
        return req_peers, vids, req_chunks, req_vals, req_counts, cand_ids, cand_costs

    # ------------------------------------------------------------------
    # Batched playback
    # ------------------------------------------------------------------
    def advance_playback(self, to_time: float, rollup=None) -> Tuple[int, int]:
        """Advance every eligible session; returns ``(due, missed)``.

        ``rollup`` (an :class:`~repro.obs.rollup.IspRollup`, when the
        run has one attached) receives the same due/missed counts
        broken down by the watcher's home ISP — computed from the
        per-row arrays the batch pass already holds, so the disabled
        path pays nothing.

        One vectorized pass per bucket (a single pass for uniform
        catalogs) replaces the per-session ``advance_to`` loop: targets
        from the immutable session columns, held counts from one window
        gather on the bitmap matrix, miss recording into both the
        ``missed`` matrix and each session's (lazily materialized) set.
        Sessions whose ``start_time >= to_time`` are untouched — they
        have nothing due yet; mid-slot admissions advance from their
        *own* start time on the first boundary after it.  Per-session
        results are committed back to the :class:`PlaybackSession`
        objects, which remain the reference (``advance_to`` /
        ``advance_to_reference`` pin the semantics).  Unlike the
        reference loop, a backwards ``to_time`` raises *before* any
        session (in any bucket) is advanced.
        """
        preps = []
        for bucket in self.buckets.values():
            rows, sessions = bucket.watcher_arrays()
            if not len(rows):
                continue
            st = bucket.start_time[rows]
            eligible = st < to_time
            if not eligible.any():
                continue
            positions = self._sync_bucket(bucket)
            # Backwards-time validation reads the session objects, not
            # the column: a snapshot/restore can rewind _last_advance
            # without moving the position the sync check keys on.
            last = np.fromiter(
                (s._last_advance for s in sessions),
                dtype=float,
                count=len(sessions),
            )
            bucket.last_advance[rows] = last
            bad = eligible & (last > to_time)
            if bad.any():
                first = float(last[np.nonzero(bad)[0][0]])
                raise ValueError(
                    f"time went backwards: {to_time!r} < {first!r}"
                )
            preps.append((bucket, rows, sessions, st, eligible, positions))
        if self.record_delta and preps:
            self._delta.playback_moved = True
        due_total = 0
        missed_total = 0
        for prep in preps:
            due, missed = self._advance_prepared(prep, to_time, rollup)
            due_total += due
            missed_total += missed
        return due_total, missed_total

    def _advance_prepared(
        self, prep, to_time: float, rollup=None
    ) -> Tuple[int, int]:
        bucket, rows, sessions, st, eligible, positions = prep
        n_chunks = bucket.n_chunks
        target = bucket.start_pos[rows] + (
            np.maximum(0.0, to_time - st) * bucket.cps[rows]
        ).astype(np.int64)
        np.minimum(target, n_chunks, out=target)
        width = np.where(eligible, target - positions, 0)
        np.maximum(width, 0, out=width)
        due_total = int(width.sum())
        missed_total = 0
        row_missed = None
        if rollup is not None:
            # Per-row due snapshot before the big-session zeroing below.
            row_due = width.copy()
            row_missed = np.zeros(len(rows), dtype=np.int64)
        if int(width.max()) > _BATCH_ADVANCE_LIMIT:
            # Far-behind sessions (fresh joiners catching up a whole
            # video) advance individually; the batch window stays small.
            big = width > _BATCH_ADVANCE_LIMIT
            for i in np.nonzero(big)[0].tolist():
                session = sessions[i]
                stats = session.advance_to(to_time)
                missed_total += stats.missed
                if row_missed is not None:
                    row_missed[i] += stats.missed
                bucket.resync_row(int(rows[i]), session)
            width = np.where(big, 0, width)
        batch = width > 0
        all_move = bool(batch.all())
        if all_move or batch.any():
            b_idx = np.nonzero(batch)[0]
            rows_b = rows[b_idx]
            pos_b = positions[b_idx]
            tgt_b = target[b_idx]
            widths_b = tgt_b - pos_b
            w_max = int(widths_b.max())
            uniform = bool(widths_b.min() == w_max)
            cols = pos_b[:, None] + np.arange(w_max, dtype=np.int64)[None, :]
            if w_max > bucket.window:
                # Catch-up windows can overrun the padded columns.
                cols = np.minimum(cols, n_chunks)
            held = bucket.masks[rows_b[:, None], cols]
            if uniform:
                # Steady state: every session consumes the same number of
                # chunks, so no per-cell validity mask is needed.
                mm = ~held
                played = w_max - mm.sum(axis=1)
            else:
                valid = (
                    np.arange(w_max, dtype=np.int64)[None, :]
                    < widths_b[:, None]
                )
                mm = valid & ~held
                played = widths_b - mm.sum(axis=1)
            batch_missed = int(widths_b.sum() - played.sum())
            missed_total += batch_missed
            if row_missed is not None:
                row_missed[b_idx] += widths_b - played
            if batch_missed:
                mr, mc = np.nonzero(mm)
                missed_chunks = pos_b[mr] + mc
                bucket.missed[rows_b[mr], missed_chunks] = True
                # Per-session miss batches, one deferred run per session.
                run_starts = np.flatnonzero(
                    np.concatenate(([True], mr[1:] != mr[:-1]))
                )
                owners = b_idx[mr[run_starts]]
                bounds = np.append(run_starts, len(mr))
                for oi, s0, e0 in zip(
                    owners.tolist(), bounds[:-1].tolist(), bounds[1:].tolist()
                ):
                    sessions[oi].defer_missed(missed_chunks[s0:e0])
            bucket.position[rows_b] = tgt_b
            bucket.last_advance[rows[eligible]] = to_time
            if all_move and bool(eligible.all()):
                # One fused commit pass over every session.
                for session, tgt, plays in zip(
                    sessions, tgt_b.tolist(), played.tolist()
                ):
                    session.position = tgt
                    session.played += plays
                    session._last_advance = to_time
                if row_missed is not None:
                    self._deposit_playback_rollup(
                        bucket, rows, row_due, row_missed, rollup
                    )
                return due_total, missed_total
            for i, tgt, plays in zip(
                b_idx.tolist(), tgt_b.tolist(), played.tolist()
            ):
                session = sessions[i]
                session.position = tgt
                session.played += plays
        else:
            bucket.last_advance[rows[eligible]] = to_time
        for session, ok in zip(sessions, eligible.tolist()):
            if ok:
                session._last_advance = to_time
        if row_missed is not None:
            self._deposit_playback_rollup(
                bucket, rows, row_due, row_missed, rollup
            )
        return due_total, missed_total

    def _deposit_playback_rollup(
        self, bucket, rows, row_due, row_missed, rollup
    ) -> None:
        """Deposit one bucket's per-row due/missed into the ISP rollup."""
        ids = np.fromiter(
            (bucket.peer_by_row[int(r)].peer_id for r in rows),
            dtype=np.int64,
            count=len(rows),
        )
        rollup.record_playback(self._isp_table[ids], row_due, row_missed)

    # ------------------------------------------------------------------
    # Introspection / invariants (used by the staleness tests)
    # ------------------------------------------------------------------
    def check_consistency(self, peers: Dict[int, Peer], tracker=None) -> None:
        """Assert the store mirrors the authoritative object graph.

        Cheap enough for tests to call after every mutation: membership
        tables, row bindings, capacity/ISP columns and the missed
        bitmaps must all agree with the ``peers`` dict (and, when a
        ``tracker`` is given, with its per-video registry).
        """
        ids = sorted(peers)
        if tracker is not None:
            for vid, group in self.groups.items():
                assert set(group.member_ids.tolist()) == set(
                    tracker.members_view(vid)
                ), f"store/tracker membership drifted for video {vid}"
        all_members = sorted(
            int(pid) for g in self.groups.values() for pid in g.member_ids.tolist()
        )
        assert all_members == ids, "store membership drifted from peers dict"
        order_ids = self._order_ids[: self._n].tolist()
        assert sorted(order_ids) == ids, "capacity column ids drifted"
        assert order_ids == list(peers), "capacity column order drifted"
        for pid, peer in peers.items():
            group = self.groups[peer.video.video_id]
            bucket = group.bucket
            row = group.row_of[pid]
            assert peer.state_group is group and peer.state_row == row
            assert bucket.peer_by_row[row] is peer
            assert (
                peer.buffer.mask.base is bucket.masks
                or peer.buffer.mask.base is bucket.masks.base
            ), f"buffer of peer {pid} is not bound to the store"
            assert self._isp_table[pid] == peer.isp
            if peer.session is not None:
                missed_row = set(
                    np.nonzero(bucket.missed[row, : group.n_chunks])[0].tolist()
                )
                synced = bucket.position[row] == peer.session.position
                if synced:
                    assert missed_row == peer.session.missed, (
                        f"missed bitmap of peer {pid} drifted"
                    )
        caps = self._order_caps[: self._n]
        expect = np.fromiter(
            (peers[pid].upload_capacity_chunks for pid in order_ids),
            dtype=np.int64,
            count=self._n,
        )
        assert np.array_equal(caps, expect), "capacity column drifted"
        seed_col = self._order_seed[: self._n]
        expect_seed = np.fromiter(
            (peers[pid].is_seed for pid in order_ids),
            dtype=bool,
            count=self._n,
        )
        assert np.array_equal(seed_col, expect_seed), "seed column drifted"
        departures = self._order_departure[: self._n]
        expect_dep = np.fromiter(
            (
                np.inf
                if peers[pid].departure_time is None
                else peers[pid].departure_time
                for pid in order_ids
            ),
            dtype=float,
            count=self._n,
        )
        assert np.array_equal(departures, expect_dep), (
            "departure column drifted"
        )
