"""The peer: buffer, playback session, request generation, upload capacity.

Mirrors the paper's emulator peer, whose components are a neighbor
manager (kept in :mod:`repro.net.topology` / :mod:`repro.p2p.tracker`),
a buffer manager (:mod:`repro.vod.buffer`), a bidding module and an
allocator module (both realized by the scheduler —
:mod:`repro.core.auction` centrally or :mod:`repro.core.distributed` at
message level), and a transmission manager (the system applies the
winning transfers, :mod:`repro.p2p.system`).

Seed peers cache a complete video, never watch, and contribute 8× the
streaming rate of upload bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..vod.buffer import ChunkBuffer
from ..vod.playback import PlaybackSession
from ..vod.valuation import DeadlineValuation
from ..vod.video import Video

__all__ = ["Peer"]

_NO_CHUNKS = np.empty(0, dtype=np.int64)
_NO_VALUES = np.empty(0, dtype=float)


class Peer:
    """One peer in the emulated system.

    Parameters
    ----------
    peer_id:
        Globally unique id.
    isp:
        ISP index the peer lives in.
    video:
        The video it watches (seeds: the video it serves).
    upload_capacity_chunks:
        ``B(u)`` in chunks per slot.
    is_seed:
        Seeds hold the full video and never issue requests.
    session:
        Playback state; ``None`` for seeds.
    departure_time:
        Early-departure instant (Fig. 6 dynamics), ``None`` otherwise.
    """

    def __init__(
        self,
        peer_id: int,
        isp: int,
        video: Video,
        upload_capacity_chunks: int,
        buffer: ChunkBuffer,
        session: Optional[PlaybackSession] = None,
        is_seed: bool = False,
        joined_at: float = 0.0,
        departure_time: Optional[float] = None,
    ) -> None:
        if upload_capacity_chunks < 0:
            raise ValueError(
                f"upload capacity must be >= 0, got {upload_capacity_chunks!r}"
            )
        if is_seed and session is not None:
            raise ValueError("seed peers do not play back")
        self.peer_id = peer_id
        self.isp = isp
        self.video = video
        self.upload_capacity_chunks = int(upload_capacity_chunks)
        self.buffer = buffer
        self.session = session
        self.is_seed = is_seed
        self.joined_at = float(joined_at)
        self.departure_time = departure_time
        self.chunks_uploaded = 0
        self.chunks_downloaded = 0
        #: Slot time of the first chunk delivered to this peer (``None``
        #: until then) — startup delay in the QoE report is
        #: ``first_delivery_time - joined_at``.
        self.first_delivery_time: Optional[float] = None
        #: Set by the peer-state store on admission: the per-video
        #: :class:`~repro.p2p.state.VideoGroup` this peer occupies and
        #: its row in the group's bitmap matrices (``None`` while the
        #: peer is not registered with a store).
        self.state_group = None
        self.state_row: Optional[int] = None

    # ------------------------------------------------------------------
    # Content queries
    # ------------------------------------------------------------------
    def holds_chunk(self, video_id: int, index: int) -> bool:
        """Whether this peer caches chunk ``index`` of ``video_id``."""
        return self.video.video_id == video_id and self.buffer.holds(index)

    def bitmap(self) -> frozenset:
        """Buffer-map snapshot (chunk indices of :attr:`video`)."""
        return self.buffer.bitmap()

    @property
    def watching(self) -> bool:
        """Has an unfinished playback session."""
        return self.session is not None and not self.session.finished

    def playback_position(self) -> Optional[int]:
        """Current playback position; ``None`` for seeds."""
        if self.session is None:
            return None
        return self.session.position

    # ------------------------------------------------------------------
    # Bidding-side inputs (the window of interest R_t(d))
    # ------------------------------------------------------------------
    def build_requests(
        self,
        now: float,
        prefetch_chunks: int,
        valuation: DeadlineValuation,
        lookahead: float = 0.0,
    ) -> List[Tuple[int, float]]:
        """Chunks this peer wants this slot with their valuations.

        Returns ``[(chunk_index, v), ...]`` for the next
        ``prefetch_chunks`` chunks beyond the playback position that are
        neither held nor already missed, valued by time-to-deadline.

        ``lookahead`` implements *anticipative valuation* for sub-slot
        bidding: a chunk is valued at the urgency it will reach by the
        end of the bidding interval, ``v(max(0, d − lookahead))``.  The
        paper's peers "keep bidding" continuously, so a chunk's bid
        approaches ``v(0)`` (= 11 > the costliest link, by the paper's
        own parameter choice) right before its deadline; the lookahead
        reproduces that within a discrete bidding round.
        """
        wanted, values = self.build_request_arrays(
            now, prefetch_chunks, valuation, lookahead=lookahead
        )
        return list(zip(wanted.tolist(), values.tolist()))

    def build_request_arrays(
        self,
        now: float,
        prefetch_chunks: int,
        valuation: DeadlineValuation,
        lookahead: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`build_requests`: ``(chunk_indices, valuations)``.

        One window scan over the buffer bitmap and one vectorized
        valuation evaluation; this is the form the slot pipeline
        consumes directly, and :meth:`build_requests` is a thin wrapper
        over it so the two can never drift apart.
        """
        if self.is_seed or self.session is None or self.session.finished:
            return _NO_CHUNKS, _NO_VALUES
        position = self.session.due_position(now)
        wanted = self.buffer.window_array(
            position, prefetch_chunks, exclude=self.session.missed
        )
        if not wanted.size:
            return wanted, _NO_VALUES
        to_deadline = np.maximum(
            0.0, self.session.seconds_to_deadlines(wanted, now) - lookahead
        )
        return wanted, valuation.values(to_deadline)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def receive_chunk(self, index: int) -> bool:
        """Store a downloaded chunk; returns ``False`` if it was duplicate."""
        position = self.session.position if self.session is not None else 0
        added = self.buffer.add(index, protect_from=position)
        if added:
            self.chunks_downloaded += 1
        return added

    def receive_chunks(self, indices) -> int:
        """Batch :meth:`receive_chunk` over an index array; returns how many were new."""
        position = self.session.position if self.session is not None else 0
        added = self.buffer.add_batch(indices, protect_from=position)
        self.chunks_downloaded += added
        return added

    def record_upload(self, n: int = 1) -> None:
        self.chunks_uploaded += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "seed" if self.is_seed else "peer"
        return (
            f"<{role} {self.peer_id} isp={self.isp} video={self.video.video_id} "
            f"B={self.upload_capacity_chunks}>"
        )
