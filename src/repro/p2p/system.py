"""The emulated P2P VoD system: slot loop, churn, transfers, metrics.

This is the Python replacement for the paper's Java emulator (Section
V).  Time advances in 10-second slots.  At each slot boundary the
system:

1. admits peers that arrived during the previous slot (the paper delays
   mid-slot joiners to the next slot so running auctions are not
   disturbed) and removes departed/finished peers;
2. tops up neighbor lists via the tracker;
3. builds the slot's :class:`~repro.core.problem.SchedulingProblem` from
   every watching peer's window of interest, neighbor buffer maps and
   pairwise network costs;
4. runs the configured scheduler (the auction, the locality baseline, or
   any registry entry);
5. applies the winning transfers to the buffers, tallying welfare and
   intra/inter-ISP traffic;
6. advances playback over the slot, tallying due/missed chunks;
7. records a :class:`~repro.metrics.collectors.SlotMetrics`.

Chunks scheduled in a slot count as delivered within it ("the actual
chunk transfers happen as soon as the auction algorithm converges"), so
a chunk due 3 s into the slot can still make its deadline if scheduled
at the boundary.
"""

from __future__ import annotations

import itertools
import os
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.problem import SchedulingProblem
from ..core.result import ScheduleResult, decay_prices
from ..core.scheduler import (
    AuctionScheduler,
    ChunkScheduler,
    ShardedAuctionScheduler,
    make_scheduler,
)
from ..metrics.collectors import MetricsCollector, SlotMetrics
from ..metrics.traffic_matrix import TrafficMatrix
from ..net.costs import CostModel
from ..net.isp import ISPTopology
from ..net.linkmodel import LinkConditions, LinkParams
from ..net.topology import OverlayGraph
from ..net.trunc_normal import TruncatedNormal
from ..obs.rollup import IspRollup
from ..obs.trace import TRACE_SCHEMA_VERSION, SlotTracer
from ..sim.rng import RngRegistry
from ..vod.buffer import ChunkBuffer
from ..vod.playback import PlaybackSession
from ..vod.popularity import ZipfMandelbrot
from ..vod.valuation import DeadlineValuation
from ..vod.video import VideoCatalog
from .churn import ArrivalPlan, ChurnModel
from .config import SystemConfig
from .peer import Peer
from .retry import RetryQueue
from .seeding import create_seeds
from .state import PeerStateStore, SlotDelta
from .tracker import Tracker

__all__ = ["P2PSystem"]


class P2PSystem:
    """The whole emulated system for one scheduler configuration.

    Example
    -------
    >>> config = SystemConfig.tiny(seed=1)
    >>> system = P2PSystem(config)
    >>> system.populate_static(20)
    >>> collector = system.run(duration_seconds=50)
    >>> len(collector.slots)
    5
    """

    def __init__(
        self,
        config: SystemConfig,
        scheduler: Optional[ChunkScheduler] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.topology = ISPTopology(config.n_isps)
        self.costs = CostModel(
            self.topology,
            self.rngs.stream("costs"),
            inter=TruncatedNormal(
                config.inter_cost_mean,
                config.inter_cost_std,
                config.inter_cost_low,
                config.inter_cost_high,
            ),
            intra=TruncatedNormal(
                config.intra_cost_mean,
                config.intra_cost_std,
                config.intra_cost_low,
                config.intra_cost_high,
            ),
        )
        self.catalog = VideoCatalog.paper_default(
            n_videos=config.n_videos,
            size_bytes=config.video_size_bytes,
            chunk_size_bytes=config.chunk_size_bytes,
            bitrate_bps=config.bitrate_bps,
        )
        self.popularity = ZipfMandelbrot(
            config.n_videos, alpha=config.zipf_alpha, q=config.zipf_q
        )
        self.valuation = DeadlineValuation(
            alpha=config.valuation_alpha, beta=config.valuation_beta
        )
        self.overlay = OverlayGraph(degree_target=config.neighbor_target)
        self.tracker = Tracker(
            rng=self.rngs.stream("tracker"),
            seed_rank=config.tracker_seed_rank,
        )
        self.churn = ChurnModel(
            self.rngs.stream("churn"),
            self.popularity,
            arrival_rate_per_s=config.arrival_rate_per_s,
            upload_range=(
                config.peer_upload_min_multiple,
                config.peer_upload_max_multiple,
            ),
            early_departure_prob=config.early_departure_prob,
        )
        self.scheduler = scheduler or self._default_scheduler()
        self.collector = MetricsCollector()
        self.traffic_matrix = TrafficMatrix(config.n_isps)
        self.peers: Dict[int, Peer] = {}
        # Persistent columnar peer state: per-video member tables,
        # buffer-bitmap matrices (the buffers' actual storage), playback
        # and capacity/ISP columns, candidate tables — maintained
        # incrementally at admit/remove/transfer/refresh instead of
        # being rebuilt from the object graph every build_problem call.
        self.store = PeerStateStore(
            self.overlay, self.costs, window=config.prefetch_chunks
        )
        # Lossy-network layer: the per-ISP-pair link-condition table
        # (ideal by default — never evaluated, no RNG draws) and the
        # cross-slot retry queue for failed/truncated transfers.  The
        # dedicated "link-conditions" stream keeps loss/jitter draws out
        # of every other stream, so enabling the subsystem cannot
        # perturb existing trajectories.
        self.links = LinkConditions(config.n_isps)
        self.retry_queue = RetryQueue(
            backoff_base_slots=config.retry_backoff_base_slots,
            backoff_cap_slots=config.retry_backoff_cap_slots,
            ttl_slots=config.retry_ttl_slots,
        )
        self._link_rng = self.rngs.stream("link-conditions")
        # Per-slot accumulators filled by _apply_transfers while the
        # link table is active (run_slot resets and reads them).
        self._slot_transfers_failed = 0
        self._slot_link_delay_ms = 0.0
        self._ids = itertools.count(1)
        self.now = 0.0
        self.slot_index = 0
        # Final λ of the last warm-started bid round, carried across the
        # slot boundary when ``warm_start_across_slots`` is on.
        self._carry_prices = None
        # Incremental-build state: the previous build's problem (the
        # patch baseline), plus the retry-queue snapshot the last
        # suppression diff was taken against.
        self._prev_problem: Optional[SchedulingProblem] = None
        self._retry_version_seen = self.retry_queue.version
        self._pending_keys_prev = np.empty(0, dtype=np.int64)
        if config.incremental_build:
            # Record every store mutation into per-slot deltas, and
            # trust the playback columns (sessions are only mutated
            # through store methods inside the slot loop) so the reuse
            # path can skip the per-build watcher resync.
            self.store.enable_delta_recording()
            self.store.trust_sessions()
        self._pending_arrivals: List[ArrivalPlan] = []
        self._next_arrival_time: Optional[float] = None
        self.departures = 0
        self.arrivals = 0
        # Observability (repro.obs): the slot-span tracer is attached
        # explicitly (attach_tracer); None — the default — costs one
        # attribute check per slot.  The per-ISP rollup accumulates only
        # when the config opts in.
        self.tracer: Optional[SlotTracer] = None
        self.isp_rollup: Optional[IspRollup] = (
            IspRollup(config.n_isps) if config.isp_rollup else None
        )

        for seed_peer in create_seeds(config, self.catalog, self._ids):
            self._admit(seed_peer)

    def _default_scheduler(self) -> ChunkScheduler:
        if self.config.scheduler == "auction":
            if self.config.sharded_solve:
                # Region-sharded solve path: rows partition by the
                # store's ISP column (one shard per region by default),
                # the jacobi frontier runs per shard, and boundary
                # uploader prices coordinate (core/sharding.py).  The
                # scheduler persists so the row partition cache
                # composes with the delta-patched problems of
                # incremental_build.
                # Late-bound: the store is created after the scheduler.
                # REPRO_WORKERS overrides the configured worker count
                # (0 forces in-process; results are identical).
                workers = self.config.shard_workers
                env = os.environ.get("REPRO_WORKERS")
                if env is not None and env.strip():
                    try:
                        workers = int(env)
                    except ValueError:
                        raise ValueError(
                            f"REPRO_WORKERS must be an integer, got {env!r}"
                        ) from None
                return ShardedAuctionScheduler(
                    epsilon=self.config.epsilon,
                    n_shards=self.config.shard_count or self.config.n_isps,
                    region_fn=lambda peers: self.store.regions_of(peers),
                    n_workers=max(0, workers),
                )
            return AuctionScheduler(epsilon=self.config.epsilon)
        return make_scheduler(
            self.config.scheduler, rng=self.rngs.stream("scheduler")
        )

    def close(self) -> None:
        """Release external resources (the sharded scheduler's workers).

        Idempotent; a no-op for every in-process scheduler.  Long-lived
        drivers (benches, property trajectories) should call it so
        worker processes and shared-memory blocks never outlive the
        system they serve — ``atexit`` covers everyone else.
        """
        close = getattr(self.scheduler, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------
    def populate_static(self, n_peers: int, stagger: bool = True) -> None:
        """Create ``n_peers`` at time 0 for the static-network experiments.

        ``stagger=True``: each peer picks a uniform playback position
        within its video and starts with everything before the position
        already buffered (it "has been watching" up to there).
        ``stagger=False``: a synchronized audience — everyone starts at
        chunk 0 with an empty buffer after the configured startup delay,
        supplied by the seeds and (pipelined within slots) by each other;
        nobody finishes before ``video_duration_seconds``, which keeps
        the per-slot series steady like the paper's Figs. 4–5.
        """
        rng = self.rngs.stream("static-population")
        startup = self.config.startup_delay_slots * self.config.slot_seconds
        for _ in range(n_peers):
            video = self.catalog[self.popularity.sample(rng)]
            position = int(rng.integers(0, video.n_chunks)) if stagger else 0
            multiple = float(
                rng.uniform(
                    self.config.peer_upload_min_multiple,
                    self.config.peer_upload_max_multiple,
                )
            )
            self.add_watching_peer(
                video_id=video.video_id,
                upload_multiple=multiple,
                start_position=position,
                start_time=self.now if stagger else self.now + startup,
                prefill_history=stagger,
            )

    def add_watching_peer(
        self,
        video_id: int,
        upload_multiple: float,
        start_position: int = 0,
        start_time: Optional[float] = None,
        departure_time: Optional[float] = None,
        prefill_history: bool = False,
        defer_store: bool = False,
    ) -> Peer:
        """Create, register and wire a watching peer; returns it.

        ``defer_store=True`` skips the peer-state-store registration —
        the caller takes responsibility for a subsequent
        :meth:`PeerStateStore.admit_batch` covering the peer (the
        arrival-burst path).
        """
        video = self.catalog[video_id]
        buffer = ChunkBuffer(video)
        if prefill_history and start_position > 0:
            buffer.fill_range(0, start_position)
        session = PlaybackSession(
            video=video,
            buffer=buffer,
            start_time=self.now if start_time is None else start_time,
            start_position=start_position,
        )
        peer = Peer(
            peer_id=next(self._ids),
            isp=-1,  # assigned by _admit
            video=video,
            upload_capacity_chunks=self.config.peer_capacity_chunks(upload_multiple),
            buffer=buffer,
            session=session,
            joined_at=self.now,
            departure_time=departure_time,
        )
        self._admit(peer, defer_store=defer_store)
        return peer

    def _admit(self, peer: Peer, defer_store: bool = False) -> None:
        # Seeds come with a fixed ISP (the paper places 2 per ISP per
        # video); watchers (isp < 0) go to the least-populated ISP,
        # realizing "distributed in the 5 ISPs evenly".
        wanted_isp = None if peer.isp < 0 else peer.isp
        isp = self.topology.add_peer(peer.peer_id, isp=wanted_isp)
        peer.isp = isp
        self.overlay.add_node(peer.peer_id)
        candidates = self.tracker.bootstrap_candidates(peer)
        self.tracker.register(peer)
        self.overlay.bootstrap(peer.peer_id, candidates)
        self.peers[peer.peer_id] = peer
        if not defer_store:
            self.store.admit(peer)

    def remove_peer(self, peer_id: int) -> None:
        """Depart a peer: drop from overlay, tracker, topology and store."""
        peer = self.peers.get(peer_id)
        if peer is None:
            raise KeyError(f"peer {peer_id} is not online")
        del self.peers[peer_id]
        self.store.remove(peer)
        self.tracker.unregister(peer_id)
        self.overlay.remove_node(peer_id)
        self.topology.remove_peer(peer_id)
        self.costs.forget_peer(peer_id)
        self.departures += 1

    # ------------------------------------------------------------------
    # Slot loop
    # ------------------------------------------------------------------
    def run(
        self,
        duration_seconds: float,
        churn: bool = False,
        remove_finished: Optional[bool] = None,
    ) -> MetricsCollector:
        """Advance the system ``duration_seconds``; returns the collector.

        ``churn`` enables Poisson arrivals and departures; by default
        finished sessions leave only in churn mode (static networks keep
        all peers online as uploaders, matching the paper's "static
        network of 500 peers").
        """
        if remove_finished is None:
            remove_finished = churn
        end = self.now + duration_seconds
        while self.now < end - 1e-9:
            self.run_slot(churn=churn, remove_finished=remove_finished)
        return self.collector

    def run_slot(self, churn: bool = False, remove_finished: bool = False) -> SlotMetrics:
        """Execute one full time slot; returns its metrics.

        With ``bid_rounds_per_slot = R > 1`` the slot is divided into R
        re-bid rounds: each round re-evaluates the window with refreshed
        deadlines (urgency grows, as in the paper's within-slot bidding)
        and gives every uploader a 1/R share of its slot bandwidth.

        With ``config.warm_start_prices`` each re-bid round's auction is
        warm-started from the previous round's final λ (the paper's
        peers bid against *posted* prices, which persist between
        rounds); ``config.warm_start_across_slots`` additionally carries
        λ over the slot boundary.  Both default off, reproducing the
        cold-start trajectories of every archived experiment.
        """
        t = self.now
        slot = self.config.slot_seconds
        rounds = self.config.bid_rounds_per_slot
        # Tracing is branch-cheap: one enabled check per slot; every
        # perf_counter call and counter gather below sits behind it.
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        if tracing:
            t_slot0 = perf_counter()
            arrivals0 = self.arrivals
            departures0 = self.departures
            build_s = solve_s = apply_s = playback_s = 0.0
            bids_sub = bids_rej = evictions = price_updates = rows_eval = 0
            delta_reasons: Dict[str, int] = {}
            worker_wall: Dict[str, float] = {}
            build_kind = "none"

        if churn:
            self._process_departures(t, remove_finished)
            self._admit_arrivals(t)
            self._collect_arrivals_during(t, t + slot)
        self._refill_neighbors()

        if self.isp_rollup is not None:
            self.isp_rollup.begin_slot()
        welfare = 0.0
        inter = intra = 0
        n_requests = n_served = sched_rounds = 0
        due = missed = 0
        # Sharded-solve diagnostics, summed over bid rounds (zero/empty
        # for flat schedulers — one getattr per round).
        coord = boundary = contested = sharded_fb = 0
        sharded_fb_reason = ""
        worker_fb0 = sum(
            getattr(self.scheduler, "worker_fallbacks", {}).values()
        )
        sharded_trace = None
        # Slot-boundary retry sweep: evict churned endpoints, surrender
        # expired edges, re-attempt due ones.  A no-op (and no RNG
        # draws) while the queue is empty — i.e. always, under ideal
        # link conditions.
        self._slot_transfers_failed = 0
        self._slot_link_delay_ms = 0.0
        if tracing:
            t_retry0 = perf_counter()
        retry = self._process_retries(t)
        if tracing:
            retry_s = perf_counter() - t_retry0
        inter += retry["inter"]
        intra += retry["intra"]
        # The peer population is stable within a slot (churn is handled
        # at the boundary above), so the store's capacity columns cover
        # the whole slot; the per-round share array is passed straight
        # to build_problem — no per-peer budget dict.
        _, slot_caps = self._capacity_arrays()
        warm = self.config.warm_start_prices and getattr(
            self.scheduler, "supports_warm_start", False
        )
        prices = self._carry_prices if warm else None
        incremental = self.config.incremental_build
        for r in range(rounds):
            now_r = t + r * slot / rounds
            shares = (
                slot_caps
                if rounds == 1
                else slot_caps * (r + 1) // rounds - slot_caps * r // rounds
            )
            if tracing:
                t0 = perf_counter()
            if incremental:
                delta = self.store.consume_delta()
                if tracing:
                    for name, count in delta.reason_histogram().items():
                        if count:
                            delta_reasons[name] = (
                                delta_reasons.get(name, 0) + count
                            )
                if self._prev_problem is None:
                    # First build of the run: cold, establishes the
                    # patch baseline.
                    problem, _ = self.build_problem(
                        now_r, capacity_array=shares
                    )
                    if tracing and r == 0:
                        build_kind = "cold"
                else:
                    problem = self.patch_problem(
                        self._prev_problem, delta, now_r,
                        capacity_array=shares,
                    )
                    if tracing and r == 0:
                        build_kind = "patch"
                self._prev_problem = problem
            else:
                problem, _ = self.build_problem(now_r, capacity_array=shares)
                if tracing and r == 0:
                    build_kind = "cold"
            if tracing:
                t1 = perf_counter()
                build_s += t1 - t0
            if warm:
                result = self.scheduler.schedule(problem, initial_prices=prices)
                prices = result.price_arrays()
            else:
                result = self.scheduler.schedule(problem)
            report = getattr(self.scheduler, "last_report", None)
            if report is not None:
                coord += report.coordination_rounds
                boundary += report.n_boundary_uploaders
                contested += report.contested_rows
                if report.fallback:
                    sharded_fb += 1
                    sharded_fb_reason = report.fallback
            if tracing:
                t2 = perf_counter()
                solve_s += t2 - t1
                s = result.stats
                bids_sub += s.bids_submitted
                bids_rej += s.bids_rejected
                evictions += s.evictions
                price_updates += s.price_updates
                rows_eval += getattr(self.scheduler, "last_rows_evaluated", 0)
                if report is not None:
                    if sharded_trace is None:
                        sharded_trace = {
                            "coordination_rounds": 0,
                            "boundary_uploaders": 0,
                            "contested_rows": 0,
                            "fallbacks": 0,
                            "fallback_reason": "",
                            "procs": 0,
                            "par_shards": 0,
                            "worker_fallbacks": 0,
                            "blocks_republished": -1,
                        }
                    sharded_trace["coordination_rounds"] += report.coordination_rounds
                    sharded_trace["boundary_uploaders"] += report.n_boundary_uploaders
                    sharded_trace["contested_rows"] += report.contested_rows
                    if report.fallback:
                        sharded_trace["fallbacks"] += 1
                        sharded_trace["fallback_reason"] = report.fallback
                    sharded_trace["procs"] = max(
                        sharded_trace["procs"], report.procs
                    )
                    sharded_trace["par_shards"] += report.par_shards
                    if report.blocks_republished >= 0:
                        if sharded_trace["blocks_republished"] < 0:
                            sharded_trace["blocks_republished"] = 0
                        sharded_trace["blocks_republished"] += (
                            report.blocks_republished
                        )
                pool = getattr(
                    getattr(self.scheduler, "solver", None), "_pool", None
                )
                if pool is not None and pool.last_wall_s:
                    for w, wall in pool.last_wall_s.items():
                        key = str(w)
                        worker_wall[key] = worker_wall.get(key, 0.0) + wall
            welfare += result.welfare(problem)
            round_inter, round_intra = self._apply_transfers(problem, result)
            inter += round_inter
            intra += round_intra
            n_requests += problem.n_requests
            n_served += result.n_served()
            sched_rounds += result.stats.rounds
            if tracing:
                t3 = perf_counter()
                apply_s += t3 - t2
            round_due, round_missed = self._advance_playback(t + (r + 1) * slot / rounds)
            due += round_due
            missed += round_missed
            if tracing:
                playback_s += perf_counter() - t3

        if self.isp_rollup is not None:
            self.isp_rollup.end_slot()
        metrics = SlotMetrics(
            time=t,
            n_peers=len(self.peers),
            n_requests=n_requests,
            n_served=n_served,
            welfare=welfare,
            inter_isp_chunks=inter,
            intra_isp_chunks=intra,
            chunks_due=due,
            chunks_missed=missed,
            auction_rounds=sched_rounds,
            transfers_failed=self._slot_transfers_failed,
            retry_attempts=retry["attempts"],
            retry_succeeded=retry["succeeded"],
            retry_surrendered=retry["surrendered"],
            retry_evicted=retry["evicted"],
            retry_pending=len(self.retry_queue),
            link_delay_ms=self._slot_link_delay_ms + retry["delay_ms"],
            link_regime=self.links.regime,
            coordination_rounds=coord,
            boundary_uploaders=boundary,
            contested_rows=contested,
            sharded_fallbacks=sharded_fb,
            sharded_fallback_reason=sharded_fb_reason,
            worker_fallbacks=sum(
                getattr(self.scheduler, "worker_fallbacks", {}).values()
            )
            - worker_fb0,
        )
        self.collector.record(metrics)
        if tracing:
            if sharded_trace is not None:
                sharded_trace["worker_fallbacks"] = metrics.worker_fallbacks
            timing = {
                "build_s": build_s,
                "solve_s": solve_s,
                "apply_s": apply_s,
                "playback_s": playback_s,
                "retry_s": retry_s,
                "slot_s": perf_counter() - t_slot0,
            }
            if worker_wall:
                timing["workers"] = worker_wall
            tracer.emit(
                {
                    "v": TRACE_SCHEMA_VERSION,
                    "slot": self.slot_index,
                    "time": t,
                    "n_peers": len(self.peers),
                    "arrivals": self.arrivals - arrivals0,
                    "departures": self.departures - departures0,
                    "n_requests": n_requests,
                    "n_served": n_served,
                    "welfare": welfare,
                    "build": build_kind,
                    "delta_reasons": delta_reasons,
                    "solver": {
                        "rounds": sched_rounds,
                        "bids_submitted": bids_sub,
                        "bids_rejected": bids_rej,
                        "evictions": evictions,
                        "price_updates": price_updates,
                        "rows_evaluated": rows_eval,
                    },
                    "retry": {
                        "attempts": retry["attempts"],
                        "succeeded": retry["succeeded"],
                        "surrendered": retry["surrendered"],
                        "evicted": retry["evicted"],
                        "pending": len(self.retry_queue),
                    },
                    "traffic": {"inter": inter, "intra": intra},
                    "playback": {"due": due, "missed": missed},
                    "link": {
                        "regime": self.links.regime,
                        "transfers_failed": self._slot_transfers_failed,
                        "delay_ms": self._slot_link_delay_ms
                        + retry["delay_ms"],
                    },
                    "sharded": sharded_trace,
                    "timing": timing,
                }
            )
        if warm and self.config.warm_start_across_slots and prices is not None:
            # Decay the carried λ at the boundary: transient scarcity
            # prices fade (sub-ε entries flush to an exact cold 0) while
            # the persistent component survives.  decay=1.0 is the
            # legacy raw carry.
            decay = self.config.warm_price_decay
            self._carry_prices = (
                prices
                if decay == 1.0
                else decay_prices(
                    prices[0], prices[1], decay, self.config.epsilon
                )
            )
        else:
            self._carry_prices = None
        self.now = t + slot
        self.slot_index += 1
        return metrics

    @staticmethod
    def _round_budget(capacity: int, round_index: int, rounds: int) -> int:
        """Integer share of ``capacity`` for one sub-round (shares sum exactly)."""
        return capacity * (round_index + 1) // rounds - capacity * round_index // rounds

    # ------------------------------------------------------------------
    # Churn handling
    # ------------------------------------------------------------------
    def _collect_arrivals_during(self, start: float, end: float) -> None:
        """Sample Poisson arrivals in [start, end); admitted next slot."""
        if self._next_arrival_time is None:
            self._next_arrival_time = start + self.churn.next_interarrival()
        while self._next_arrival_time < end:
            plan = self.churn.plan_arrival(
                self._next_arrival_time,
                lambda vid: self.catalog[vid].duration_seconds,
            )
            self._pending_arrivals.append(plan)
            self._next_arrival_time += self.churn.next_interarrival()

    def _admit_arrivals(self, t: float) -> None:
        """Admit peers that arrived before ``t`` (paper: delayed to slot start).

        Tracker/overlay wiring stays per-peer (the bootstrap RNG must be
        consumed in arrival order), but the store registration of the
        whole burst is one :meth:`PeerStateStore.admit_batch` call.
        """
        ready = [p for p in self._pending_arrivals if p.time < t]
        self._pending_arrivals = [p for p in self._pending_arrivals if p.time >= t]
        startup = self.config.startup_delay_slots * self.config.slot_seconds
        batch: List[Peer] = []
        for plan in ready:
            departure = plan.departure_time
            batch.append(
                self.add_watching_peer(
                    video_id=plan.video_id,
                    upload_multiple=plan.upload_multiple,
                    start_position=0,
                    start_time=t + startup,
                    departure_time=departure,
                    defer_store=True,
                )
            )
            self.arrivals += 1
        self.store.admit_batch(batch)

    def _process_departures(self, t: float, remove_finished: bool) -> None:
        """Depart due/finished peers — columnar scan + batched removal.

        The doomed set comes from one mask over the store's departure
        and playback columns instead of a Python pass over every online
        peer; :meth:`_process_departures_reference` keeps the per-peer
        loop this is pinned against.
        """
        doomed = self.store.departure_scan(t, remove_finished)
        if not doomed:
            return
        peers = [self.peers.pop(pid) for pid in doomed]
        self.store.remove_batch(peers)
        for peer in peers:
            self.tracker.unregister(peer.peer_id)
            self.overlay.remove_node(peer.peer_id)
            self.topology.remove_peer(peer.peer_id)
            self.costs.forget_peer(peer.peer_id)
        self.departures += len(peers)

    def _process_departures_reference(self, t: float, remove_finished: bool) -> None:
        """Per-peer loop implementation of :meth:`_process_departures` (pin)."""
        doomed = []
        for peer in self.peers.values():
            if peer.is_seed:
                continue
            if peer.departure_time is not None and peer.departure_time <= t:
                doomed.append(peer.peer_id)
            elif remove_finished and peer.session is not None and peer.session.finished:
                doomed.append(peer.peer_id)
        for peer_id in doomed:
            self.remove_peer(peer_id)

    def _refill_neighbors(self) -> None:
        """Top up peers that fell below their neighbor target (churn losses).

        The overlay's incrementally maintained deficient set makes the
        common static case O(1): when no non-seed peer is below target,
        the whole pass (and its per-peer tracker queries) is skipped.
        When someone is, only the deficient peers are visited — ordered
        by one mask over the store's dict-order id column, so the
        tracker's ranking RNG is consumed exactly as the historical
        full-dict walk did.
        """
        deficient = self.overlay.deficient_nodes()
        needy = deficient - self.store.seed_ids
        if not needy:
            return
        ids, _ = self._capacity_arrays()
        needy_arr = np.fromiter(needy, dtype=np.int64, count=len(needy))
        for pid in ids[np.isin(ids, needy_arr)].tolist():
            if pid not in deficient:
                # Refilled as a side effect of an earlier bootstrap in
                # this very pass (links are undirected and `deficient`
                # is the overlay's live set) — the historical full-dict
                # walk skipped these, so the tracker RNG must too.
                continue
            peer = self.peers[pid]
            candidates = [
                nb
                for nb in self.tracker.bootstrap_candidates(peer)
                if nb not in self.overlay.neighbors(pid)
            ]
            self.overlay.bootstrap(pid, candidates)

    # ------------------------------------------------------------------
    # Scenario hooks (mid-run regime changes, driven by the scenario
    # engine in repro.scenarios — each keeps the columnar store in sync)
    # ------------------------------------------------------------------
    def set_arrival_rate(self, rate_per_s: float) -> None:
        """Change the Poisson arrival intensity from the next draw on."""
        self.churn.set_arrival_rate(rate_per_s)

    def set_popularity(self, popularity) -> None:
        """Swap the video-popularity law for future arrivals.

        Existing peers keep watching what they chose; only the churn
        model's video selection changes (popularity drift / new-release
        events).  Any object with ``sample(rng)`` qualifies.
        """
        self.popularity = popularity
        self.churn.set_popularity(popularity)

    def set_upload_capacities(self, updates: Dict[int, int]) -> int:
        """Set per-peer upload budgets mid-run; returns peers updated.

        ``updates`` maps peer id → new capacity in chunks/slot (0 takes
        an uploader offline without departing it — a seeder outage).
        Offline ids are ignored, so a scenario can target peers that may
        have churned away.  Both the peer objects and the store's
        capacity column are updated.
        """
        for pid, chunks in updates.items():
            if chunks < 0:
                raise ValueError(
                    f"upload capacity must be >= 0, got {chunks!r} for peer {pid}"
                )
        touched = []
        for pid, chunks in updates.items():
            peer = self.peers.get(pid)
            if peer is None:
                continue
            peer.upload_capacity_chunks = int(chunks)
            touched.append(peer)
        self.store.update_capacities(touched)
        return len(touched)

    def scale_upload_capacities(
        self, factor: float, peer_ids: Optional[List[int]] = None
    ) -> int:
        """Multiply upload budgets by ``factor`` (capacity heterogeneity ramp).

        ``peer_ids=None`` targets every online peer.  Capacities round to
        int and floor at 1 chunk/slot for factors > 0 (matching
        ``SystemConfig.peer_capacity_chunks``); ``factor=0`` zeroes them.
        Peers already at zero stay at zero — a seeder outage survives a
        concurrent ramp instead of being resurrected by the floor.
        Returns the number of peers updated.
        """
        if factor < 0:
            raise ValueError(f"capacity factor must be >= 0, got {factor!r}")
        ids = list(self.peers) if peer_ids is None else peer_ids
        updates = {}
        for pid in ids:
            peer = self.peers.get(pid)
            if peer is None:
                continue
            current = peer.upload_capacity_chunks
            if factor > 0 and current > 0:
                updates[pid] = max(1, int(round(current * factor)))
            else:
                updates[pid] = 0
        return self.set_upload_capacities(updates)

    def scale_inter_isp_costs(self, factor: float) -> None:
        """Multiply every cross-ISP link cost by ``factor`` (price shock).

        Cached pair costs jump in place and future samples are scaled —
        no random draws are consumed — and the store's candidate-cost
        tables are invalidated so the next ``build_problem`` prices
        candidate edges under the new regime.
        """
        self.costs.scale_inter_costs(factor)
        self.store.invalidate_costs()

    def set_isp_pair_cost_scale(self, isp_a: int, isp_b: int, scale: float) -> None:
        """Set the cost multiplier between two ISPs (``a == b``: intra)."""
        self.costs.set_isp_pair_scale(isp_a, isp_b, scale)
        self.store.invalidate_costs()

    def set_neighbor_target(self, target: int) -> None:
        """Change the overlay's soft degree target (locality-cap change)."""
        self.overlay.set_degree_target(target)

    def apply_link_preset(
        self,
        name: str,
        isp_a: Optional[int] = None,
        isp_b: Optional[int] = None,
    ) -> int:
        """Degrade link conditions with a named regime preset.

        ``isp_a``/``isp_b`` select the pairs as in
        :meth:`LinkConditions.degrade` (default: every inter-ISP pair —
        a degraded backbone).  ``name="ideal"`` restores instead.
        Returns the number of pairs touched.
        """
        return self.links.apply_preset(name, isp_a, isp_b)

    def set_link_conditions(
        self,
        params: LinkParams,
        isp_a: Optional[int] = None,
        isp_b: Optional[int] = None,
    ) -> int:
        """Install explicit :class:`LinkParams` on a pair selection."""
        touched = self.links.degrade(params, isp_a, isp_b)
        self.links.regime = "custom" if self.links.active else "ideal"
        return touched

    def reset_link_conditions(
        self,
        isp_a: Optional[int] = None,
        isp_b: Optional[int] = None,
    ) -> int:
        """Restore a pair selection (default: everything) to ideal."""
        return self.links.restore(isp_a, isp_b)

    def startup_delay_stats(self) -> Tuple[float, int]:
        """Mean startup delay over online watchers, in seconds.

        Startup delay is ``first_delivery_time - joined_at`` for every
        online non-seed peer that has received at least one chunk.
        Returns ``(mean_seconds, n_peers_counted)`` — ``(0.0, 0)`` when
        nobody has been delivered to yet.
        """
        delays = [
            p.first_delivery_time - p.joined_at
            for p in self.peers.values()
            if not p.is_seed and p.first_delivery_time is not None
        ]
        if not delays:
            return 0.0, 0
        return sum(delays) / len(delays), len(delays)

    def startup_delay_by_isp(self) -> Dict[int, Tuple[float, int]]:
        """Per-home-ISP startup delay: ``{isp: (mean_seconds, n_peers)}``.

        Same population as :meth:`startup_delay_stats` (online non-seed
        peers with at least one delivery), broken down by the
        *requesting* peer's home ISP — the attribution the per-ISP QoE
        rollup reports.  ISPs with no counted peers are omitted.
        """
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for p in self.peers.values():
            if p.is_seed or p.first_delivery_time is None:
                continue
            isp = int(p.isp)
            sums[isp] = sums.get(isp, 0.0) + (p.first_delivery_time - p.joined_at)
            counts[isp] = counts.get(isp, 0) + 1
        return {isp: (sums[isp] / counts[isp], counts[isp]) for isp in sums}

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_tracer(self, sink) -> SlotTracer:
        """Attach a :class:`~repro.obs.trace.SlotTracer` over ``sink``.

        From the next slot on, ``run_slot`` emits one span record per
        slot through the sink (when it is enabled).  Returns the tracer
        so callers can read ``emitted`` / in-memory records.
        """
        self.tracer = SlotTracer(sink)
        return self.tracer

    # ------------------------------------------------------------------
    # Problem construction / transfer application
    # ------------------------------------------------------------------
    def build_problem(
        self,
        now: float,
        capacities: Optional[Dict[int, int]] = None,
        capacity_array: Optional[np.ndarray] = None,
    ) -> Tuple[SchedulingProblem, Dict[int, int]]:
        """One (sub-)round's assignment problem from the peer-state store.

        Fully vectorized construction on the persistent columnar store:
        window availability and valuations come from sliding-window
        gathers over the per-video bitmap matrices, candidate edges from
        the cached per-video neighbor CSR, and the whole request block is
        handed to :meth:`SchedulingProblem.add_requests_batch` in one
        call — no per-peer Python loop, no per-slot re-stacking.
        Produces the same problem (same request order, same candidate
        edges and costs; candidates sorted by uploader id) as the
        per-request :meth:`build_problem_reference`, which the property
        suite pins byte-for-byte.

        ``capacities`` overrides per-peer upload budgets as a dict
        (missing entries mean 0); ``capacity_array`` is the loop-free
        variant aligned with the store's peer-dict-order id column (used
        by ``run_slot``'s sub-round split).  Returns the problem plus a
        map request-index → downstream peer id.
        """
        store = self.store
        ids, caps = store.capacity_columns()
        if capacity_array is not None:
            caps = np.ascontiguousarray(capacity_array, dtype=np.int64)
            if len(caps) != len(ids):
                raise ValueError(
                    f"capacity_array must align with the {len(ids)} online "
                    f"peers, got {len(caps)} entries"
                )
        elif capacities is not None:
            caps = np.fromiter(
                (capacities.get(pid, 0) for pid in ids.tolist()),
                dtype=np.int64,
                count=len(ids),
            )
        rounds = self.config.bid_rounds_per_slot
        lookahead = self.config.slot_seconds / rounds if rounds > 1 else 0.0
        problem = SchedulingProblem()
        problem.set_capacities_batch(ids, caps)
        parts = store.assemble_requests(now, self.valuation, lookahead)
        if parts is None:
            return problem, {}
        if len(self.retry_queue):
            # Chunks parked in the retry pipeline stay out of the
            # auction until delivered, evicted or surrendered — a
            # pending edge must not be double-assigned.
            parts = self._suppress_pending_requests(parts)
            if parts is None:
                return problem, {}
        req_peers, pairs, vals, cand_ids, cand_costs, indptr = parts
        # validate=False: this producer is pinned against the per-request
        # reference by the construction-equivalence/property tests.
        problem.add_requests_batch(
            req_peers, pairs, vals, cand_ids, cand_costs, indptr,
            validate=False,
        )
        request_owner = dict(enumerate(req_peers.tolist()))
        return problem, request_owner

    def patch_problem(
        self,
        prev_problem: SchedulingProblem,
        delta: SlotDelta,
        now: float,
        capacities: Optional[Dict[int, int]] = None,
        capacity_array: Optional[np.ndarray] = None,
    ) -> SchedulingProblem:
        """Incremental :meth:`build_problem`: splice the previous build
        forward instead of reassembling from scratch.

        ``prev_problem`` is the problem the last build produced (its
        candidate CSR lives on in the store's per-group caches) and
        ``delta`` the :meth:`PeerStateStore.consume_delta` record of the
        mutations since — deliveries, playback, churn batches, capacity
        and cost shocks, plus the retry-suppression changes this method
        surfaces into it.  Only row segments those mutations invalidated
        are rebuilt; valuations and window availability are recomputed
        wholesale either way (playback shifts every deadline fraction
        each round), and capacity columns are primed from the store's
        arrays without the per-peer dict.

        The returned problem is byte-identical to what a cold
        :meth:`build_problem` would produce on the same state — the
        caches self-validate against the store's drop log and cost
        epoch, so a stale ``delta`` can degrade only performance, never
        correctness.  The property suite pins this across churn, lossy
        links, retries and regime events.
        """
        if prev_problem is None:
            raise ValueError("patch_problem requires a previous problem")
        self._surface_retry_delta(delta)
        store = self.store
        ids, caps = store.capacity_columns()
        if capacity_array is not None:
            caps = np.ascontiguousarray(capacity_array, dtype=np.int64)
            if len(caps) != len(ids):
                raise ValueError(
                    f"capacity_array must align with the {len(ids)} online "
                    f"peers, got {len(caps)} entries"
                )
        elif capacities is not None:
            caps = np.fromiter(
                (capacities.get(pid, 0) for pid in ids.tolist()),
                dtype=np.int64,
                count=len(ids),
            )
        rounds = self.config.bid_rounds_per_slot
        lookahead = self.config.slot_seconds / rounds if rounds > 1 else 0.0
        problem = SchedulingProblem()
        problem.prime_capacities(ids, caps)
        parts = store.assemble_requests(
            now, self.valuation, lookahead, reuse=True
        )
        if parts is None:
            return problem
        if len(self.retry_queue):
            parts = self._suppress_pending_requests(parts)
            if parts is None:
                return problem
        req_peers, pairs, vals, cand_ids, cand_costs, indptr = parts
        problem.add_requests_batch(
            req_peers, pairs, vals, cand_ids, cand_costs, indptr,
            validate=False,
        )
        return problem

    def _surface_retry_delta(self, delta: SlotDelta) -> None:
        """Record suppression-set changes since the last diff into ``delta``.

        A triple entering the retry queue deletes its request row from
        the next problem; a triple leaving (delivered, surrendered,
        evicted) re-exposes one.  Keyed on the queue's version counter,
        so the steady empty-queue case is one int compare.  Marks are
        conservative: after a cold rebuild the first diff may re-report
        triples that were already suppressed.
        """
        from .retry import _triple_key

        queue = self.retry_queue
        if queue.version == self._retry_version_seen:
            return
        down, video, chunk = queue.pending_triples()
        keys = _triple_key(down, video, chunk)
        prev = self._pending_keys_prev
        added = np.setdiff1d(keys, prev)
        removed = np.setdiff1d(prev, keys)
        if len(added) or len(removed):
            # The downstream peer id is the top 32 bits of the key.
            delta.mark_retry(
                (added >> np.int64(32)).tolist(),
                (removed >> np.int64(32)).tolist(),
            )
        self._pending_keys_prev = keys
        self._retry_version_seen = queue.version

    def build_problem_reference(
        self,
        now: float,
        capacities: Optional[Dict[int, int]] = None,
    ) -> Tuple[SchedulingProblem, Dict[int, int]]:
        """Per-request (dict/loop) construction of the same slot problem.

        This is the pre-columnar hot path, kept as the semantics
        reference: equivalence tests assert :meth:`build_problem`
        produces the identical problem, and the benchmark harness times
        the two against each other.
        """
        problem = SchedulingProblem()
        for peer in self.peers.values():
            capacity = (
                peer.upload_capacity_chunks
                if capacities is None
                else capacities.get(peer.peer_id, 0)
            )
            problem.set_capacity(peer.peer_id, capacity)
        request_owner: Dict[int, int] = {}
        for peer in self.peers.values():
            if peer.session is None:
                continue  # seeds never request
            # Peers in their startup delay do bid: they are pre-fetching
            # ahead of the (future) playback start.  With sub-slot
            # re-bidding, valuations anticipate the urgency reached by
            # the end of the bid interval (see Peer.build_requests).
            rounds = self.config.bid_rounds_per_slot
            lookahead = self.config.slot_seconds / rounds if rounds > 1 else 0.0
            wanted = peer.build_requests(
                now, self.config.prefetch_chunks, self.valuation, lookahead=lookahead
            )
            if not wanted:
                continue
            video_id = peer.video.video_id
            window = {index for index, _ in wanted}
            # One set intersection per neighbor instead of one membership
            # test per (chunk, neighbor) pair — the paper-scale problem
            # has ~100-chunk windows × 30 neighbors per peer.
            per_chunk: Dict[int, Dict[int, float]] = {}
            for nb in self.overlay.neighbors(peer.peer_id):
                other = self.peers.get(nb)
                if other is None or other.video.video_id != video_id:
                    continue
                hits = other.buffer.held_among(window)
                if not hits:
                    continue
                cost = self.costs.cost(nb, peer.peer_id)
                for index in hits:
                    per_chunk.setdefault(index, {})[nb] = cost
            for index, value in wanted:
                candidates = per_chunk.get(index)
                if not candidates:
                    continue  # nobody caches it: cannot even be requested
                r = problem.add_request(
                    peer=peer.peer_id,
                    chunk=(video_id, index),
                    valuation=value,
                    candidates=candidates,
                )
                request_owner[r] = peer.peer_id
        return problem, request_owner

    def _suppress_pending_requests(self, parts):
        """Drop requests already parked in the retry queue from ``parts``.

        ``parts`` is the tuple :meth:`PeerStateStore.assemble_requests`
        returns; rows whose (peer, video, chunk) triple matches a
        pending retry are removed, with the candidate CSR re-packed to
        match.  Returns ``None`` when nothing survives.  Only called
        with a non-empty queue, i.e. never under ideal link conditions
        (``build_problem_reference`` intentionally has no counterpart —
        the construction-equivalence pins run with an empty queue).
        """
        from .retry import _triple_key

        req_peers, pairs, vals, cand_ids, cand_costs, indptr = parts
        down, video, chunk = self.retry_queue.pending_triples()
        req_keys = _triple_key(req_peers, pairs[:, 0], pairs[:, 1])
        pending = _triple_key(down, video, chunk)
        keep = ~np.isin(req_keys, pending)
        if keep.all():
            return parts
        if not keep.any():
            return None
        counts = np.diff(indptr)
        edge_keep = np.repeat(keep, counts)
        new_counts = counts[keep]
        new_indptr = np.zeros(len(new_counts) + 1, dtype=indptr.dtype)
        np.cumsum(new_counts, out=new_indptr[1:])
        return (
            req_peers[keep],
            pairs[keep],
            vals[keep],
            cand_ids[edge_keep],
            cand_costs[edge_keep],
            new_indptr,
        )

    def _process_retries(self, t: float) -> Dict[str, int]:
        """Slot-boundary sweep of the retry queue; returns its counters.

        Order: evict edges with a departed endpoint (churn safety),
        surrender expired edges back to the auction, then re-attempt the
        due ones against the live link table — deliveries go through the
        store's grouped ``deliver_runs`` path exactly like first-pass
        transfers, failures re-park with doubled backoff and their
        original expiry.  Returns counters plus the (inter, intra)
        traffic the completed retries produced.
        """
        zero = {
            "attempts": 0, "succeeded": 0, "surrendered": 0,
            "evicted": 0, "inter": 0, "intra": 0, "delay_ms": 0.0,
        }
        queue = self.retry_queue
        if not len(queue):
            return zero
        isp_of = self._isp_id_array()
        evicted = queue.evict_departed(isp_of >= 0)
        surrendered = len(queue.pop_surrendered(self.slot_index)[0])
        batch, expire = queue.pop_due(self.slot_index)
        if not len(batch):
            zero.update(evicted=evicted, surrendered=surrendered)
            return zero
        peers = self.peers
        # Uncapped buffers only grow, but capped ones can evict the
        # chunk from the uploader, and suppression should keep the
        # downstream from obtaining it elsewhere — guard both anyway:
        # a non-viable edge can never complete, so it evicts.
        viable = np.fromiter(
            (
                peers[int(u)].buffer.holds(int(c))
                and not peers[int(d)].buffer.holds(int(c))
                for u, d, c in zip(batch.up, batch.down, batch.chunk)
            ),
            dtype=bool,
            count=len(batch),
        )
        evicted += int(len(viable) - viable.sum())
        delivered_mask = viable.copy()
        delay_ms = 0.0
        if self.links.active and viable.any():
            up_isps = isp_of[batch.up]
            down_isps = isp_of[batch.down]
            outcome = self.links.evaluate(
                up_isps[viable], down_isps[viable], self._link_rng
            )
            delivered_mask[np.nonzero(viable)[0]] = outcome.delivered
            delay_ms = float(outcome.delay_ms.sum())
        failed = viable & ~delivered_mask
        queue.requeue(batch, failed, self.slot_index, expire)
        inter = intra = 0
        sel = np.nonzero(delivered_mask)[0]
        if len(sel):
            order = np.argsort(batch.down[sel], kind="stable")
            sel = sel[order]
            down = batch.down[sel]
            up = batch.up[sel]
            chunks = batch.chunk[sel]
            up_isps = isp_of[up]
            down_isps = isp_of[down]
            inter = int((up_isps != down_isps).sum())
            intra = len(down) - inter
            self.traffic_matrix.record_batch(up_isps, down_isps)
            if self.isp_rollup is not None:
                # Retry deliveries count as traffic (no per-edge cost in
                # hand here — transit chunk counts still accumulate).
                self.isp_rollup.record_transfers(up_isps, down_isps)
            starts = np.concatenate(([0], np.nonzero(np.diff(down))[0] + 1))
            stops = np.concatenate((starts[1:], [len(down)]))
            run_peers = [peers[int(down[s])] for s in starts.tolist()]
            if all(
                p.state_row is not None and p.buffer.capacity_chunks is None
                for p in run_peers
            ):
                added = self.store.deliver_runs(run_peers, starts, stops, chunks)
                for peer, add in zip(run_peers, added.tolist()):
                    peer.chunks_downloaded += add
                    if peer.first_delivery_time is None:
                        peer.first_delivery_time = t
            else:
                for peer, s, e in zip(run_peers, starts.tolist(), stops.tolist()):
                    peer.receive_chunks(chunks[s:e])
                    if peer.first_delivery_time is None:
                        peer.first_delivery_time = t
            upload_counts = np.bincount(up)
            for u in np.nonzero(upload_counts)[0].tolist():
                peers[u].record_upload(int(upload_counts[u]))
        if self.isp_rollup is not None and viable.any():
            self.isp_rollup.record_retries(
                isp_of[batch.down[viable]], isp_of[batch.down[sel]]
            )
        return {
            "attempts": int(viable.sum()),
            "succeeded": int(len(sel)),
            "surrendered": surrendered,
            "evicted": evicted,
            "inter": inter,
            "intra": intra,
            "delay_ms": delay_ms,
        }

    def _capacity_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(peer_ids, upload capacities)`` columns (do not mutate).

        Maintained incrementally by the peer-state store in ``peers``
        dict order — reading them is O(1), no rebuild on access.
        """
        return self.store.capacity_columns()

    def _isp_id_array(self) -> np.ndarray:
        """Peer-id-indexed ISP lookup table (do not mutate).

        ``arr[peer_id]`` is the peer's ISP index (−1 for ids not online);
        maintained incrementally by the peer-state store — a flat table
        beats a dict probe per transfer by orders of magnitude.
        """
        return self.store.isp_table()

    def _apply_transfers(
        self, problem: SchedulingProblem, result: ScheduleResult
    ) -> Tuple[int, int]:
        """Deliver scheduled chunks; returns (inter-ISP, intra-ISP) counts.

        Vectorized epilogue over the result's served columns: inter- vs
        intra-ISP classification via the cached ISP lookup table, the
        traffic matrix as one bincount, deliveries as one grouped bitmap
        write per receiving peer, and upload counters from one unique
        pass over the uploader column.  Produces exactly the state
        changes of :meth:`_apply_transfers_reference` (equivalence-
        tested), which also remains the fallback for problems whose
        chunk keys are not ``(video, index)`` pairs.
        """
        indices, uploaders = result.served_pairs()
        if not len(indices):
            return 0, 0
        try:
            pair_array = problem.chunk_pair_array()
            chunk_indices = pair_array[:, 1]
        except (TypeError, ValueError):
            if self.links.active:
                raise ValueError(
                    "lossy link conditions require (video, index) chunk "
                    "keys; the reference apply path has no link model"
                )
            return self._apply_transfers_reference(problem, result)
        downstream = problem.request_peer_array()[indices]
        chunks = chunk_indices[indices]
        isp_of = self._isp_id_array()
        up_isps = isp_of[uploaders]
        down_isps = isp_of[downstream]
        if self.links.active:
            # Lossy regime: classify each assigned edge under the link
            # table.  Failed/truncated edges park in the retry queue;
            # only survivors are delivered and counted as traffic.
            outcome = self.links.evaluate(up_isps, down_isps, self._link_rng)
            self._slot_link_delay_ms += float(outcome.delay_ms.sum())
            if outcome.n_failed:
                failed = ~outcome.delivered
                self._slot_transfers_failed += int(failed.sum())
                videos = pair_array[:, 0][indices]
                self.retry_queue.push_failed(
                    downstream[failed],
                    uploaders[failed],
                    videos[failed],
                    chunks[failed],
                    self.slot_index,
                )
                keep = outcome.delivered
                uploaders = uploaders[keep]
                downstream = downstream[keep]
                chunks = chunks[keep]
                up_isps = up_isps[keep]
                down_isps = down_isps[keep]
                if not len(downstream):
                    return 0, 0
                indices = indices[keep]
        inter = int((up_isps != down_isps).sum())
        intra = len(indices) - inter
        self.traffic_matrix.record_batch(up_isps, down_isps)
        if self.isp_rollup is not None:
            self.isp_rollup.record_transfers(
                up_isps,
                down_isps,
                problem.edge_cost_pairs(indices, uploaders),
            )
        # Requests arrive grouped by downloader (one builder block per
        # peer), so run boundaries are one diff — no sort.  A problem
        # that interleaves owners just yields more (still correct) runs.
        starts = np.concatenate(([0], np.nonzero(np.diff(downstream))[0] + 1))
        stops = np.concatenate((starts[1:], [len(downstream)]))
        peers = self.peers
        run_peers = [peers[int(downstream[s])] for s in starts.tolist()]
        if all(
            p.state_row is not None and p.buffer.capacity_chunks is None
            for p in run_peers
        ):
            # Grouped per-bucket column writes on the store matrices:
            # one fancy-indexed read/write per bucket instead of one
            # small bitmap write per receiving buffer.
            delivered = self.store.deliver_runs(run_peers, starts, stops, chunks)
            for peer, add in zip(run_peers, delivered.tolist()):
                peer.chunks_downloaded += add
                if peer.first_delivery_time is None:
                    peer.first_delivery_time = self.now
        else:
            # Capped or store-unbound buffers (tests, ad-hoc systems):
            # the original per-peer path.
            for peer, s, e in zip(run_peers, starts.tolist(), stops.tolist()):
                idx = chunks[s:e]
                if peer.buffer.capacity_chunks is None:
                    # Served chunks are unique and validated per request,
                    # so the trusted write skips add_batch's guards.
                    peer.chunks_downloaded += peer.buffer.receive_batch_trusted(idx)
                else:
                    peer.receive_chunks(idx)
                if peer.first_delivery_time is None:
                    peer.first_delivery_time = self.now
        upload_counts = np.bincount(uploaders)
        for u in np.nonzero(upload_counts)[0].tolist():
            peers[u].record_upload(int(upload_counts[u]))
        return inter, intra

    def _apply_transfers_reference(
        self, problem: SchedulingProblem, result: ScheduleResult
    ) -> Tuple[int, int]:
        """Per-edge loop implementation of :meth:`_apply_transfers` (pin)."""
        inter = 0
        intra = 0
        for _, downstream, chunk, uploader, _ in result.served_edges(problem):
            peer = self.peers[downstream]
            _, index = chunk
            peer.receive_chunk(index)
            if peer.first_delivery_time is None:
                peer.first_delivery_time = self.now
            up = self.peers[uploader]
            up.record_upload()
            self.traffic_matrix.record(up.isp, peer.isp)
            if self.costs.is_inter_isp(uploader, downstream):
                inter += 1
            else:
                intra += 1
        return inter, intra

    def _advance_playback(self, to_time: float) -> Tuple[int, int]:
        """Advance every session; returns (due, missed) chunk totals.

        One batched pass over the store's position/bitmap columns per
        video instead of a per-session loop; sessions whose
        ``start_time >= to_time`` are skipped (nothing due yet), and
        sessions admitted mid-slot advance from their own start time.
        Equivalent to :meth:`_advance_playback_reference`, which the
        property suite pins it against.
        """
        return self.store.advance_playback(to_time, self.isp_rollup)

    def _advance_playback_reference(self, to_time: float) -> Tuple[int, int]:
        """Per-session/per-chunk loop implementation (semantics pin)."""
        due = 0
        missed = 0
        for peer in self.peers.values():
            if peer.session is None or peer.session.start_time >= to_time:
                continue
            stats = peer.session.advance_to_reference(to_time)
            due += stats.due
            missed += stats.missed
        return due, missed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def online_watching(self) -> List[Peer]:
        """Non-seed peers with unfinished sessions."""
        return [p for p in self.peers.values() if p.watching]

    def n_seeds(self) -> int:
        return sum(1 for p in self.peers.values() if p.is_seed)

    def describe(self) -> str:
        return (
            f"P2PSystem(t={self.now:.0f}s, peers={len(self.peers)} "
            f"(seeds={self.n_seeds()}), scheduler={self.scheduler.name}, "
            f"isps={self.config.n_isps})"
        )
