"""Cross-slot retry pipeline for failed and truncated transfers.

When the link-condition layer (:mod:`repro.net.linkmodel`) drops or
truncates an assigned transfer, the chunk is not re-auctioned
immediately: the (downstream, uploader, video, chunk) edge parks in the
system's :class:`RetryQueue` and is re-attempted against the *same*
uploader after an exponential backoff measured in slots.  While an edge
is pending, the downstream's request for that chunk is suppressed from
:meth:`repro.p2p.system.P2PSystem.build_problem` so the auction does not
double-assign it.  An edge that outlives its TTL is surrendered — it
simply leaves the queue, and the still-missing chunk re-enters the next
slot's window of interest like any other request.  Churn is handled by
eviction: an edge whose uploader or downstream departed can never
complete and is dropped during the slot-boundary sweep.

Storage is columnar (parallel int64 arrays) so the per-slot sweep —
evict offline endpoints, pop surrendered edges, pop due edges — is a
handful of boolean masks regardless of queue depth, matching the rest of
the slot pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["RetryQueue", "RetryBatch"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class RetryBatch:
    """One slot's due retry attempts, popped from the queue.

    Parallel arrays in queue (insertion) order: downstream peer,
    uploader peer, video id, chunk index, and the attempt number this
    batch is about to make (first failure enqueued with attempts=1, so
    the first retry is attempt 2).
    """

    down: np.ndarray
    up: np.ndarray
    video: np.ndarray
    chunk: np.ndarray
    attempts: np.ndarray

    def __len__(self) -> int:
        return len(self.down)


class RetryQueue:
    """Pending lossy-transfer deliveries awaiting their next attempt.

    Parameters
    ----------
    backoff_base_slots:
        Wait before the first retry; attempt ``k`` waits
        ``backoff_base_slots * 2**(k-1)`` slots, capped at
        ``backoff_cap_slots``.
    backoff_cap_slots:
        Upper bound on the per-attempt backoff.
    ttl_slots:
        Lifetime of an edge in the queue, in slots since the original
        failure.  An edge whose next due time falls beyond its expiry is
        surrendered back to the auction at the sweep.
    """

    def __init__(
        self,
        backoff_base_slots: int = 1,
        backoff_cap_slots: int = 4,
        ttl_slots: int = 6,
    ) -> None:
        if backoff_base_slots < 1 or backoff_cap_slots < 1:
            raise ValueError("backoff slots must be >= 1")
        if ttl_slots < 1:
            raise ValueError("ttl_slots must be >= 1")
        self.backoff_base_slots = int(backoff_base_slots)
        self.backoff_cap_slots = int(backoff_cap_slots)
        self.ttl_slots = int(ttl_slots)
        self._down = _EMPTY
        self._up = _EMPTY
        self._video = _EMPTY
        self._chunk = _EMPTY
        self._attempts = _EMPTY
        self._due = _EMPTY
        self._expire = _EMPTY
        #: Bumped on every queue mutation (append / filter / restore).
        #: The incremental build keys its suppression-set diff on it: an
        #: unchanged version means the pending triples — and therefore
        #: the rows ``build_problem`` suppresses — are unchanged.
        self.version = 0

    def __len__(self) -> int:
        return len(self._down)

    def backoff_slots(self, attempt: int) -> int:
        """Slots to wait after failed attempt number ``attempt`` (>= 1)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt!r}")
        shift = min(attempt - 1, 62)
        return min(self.backoff_base_slots << shift, self.backoff_cap_slots)

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def push_failed(
        self,
        down: np.ndarray,
        up: np.ndarray,
        video: np.ndarray,
        chunk: np.ndarray,
        slot: int,
        attempts: np.ndarray = None,
    ) -> None:
        """Park a batch of failed transfers observed at slot ``slot``.

        Fresh failures (``attempts=None``) enter with attempt count 1
        and expiry ``slot + ttl_slots``; re-queued retries pass their
        prior attempt counts and keep their original expiry by being
        re-pushed via :meth:`requeue` instead.
        """
        n = len(down)
        if n == 0:
            return
        if attempts is None:
            attempts = np.ones(n, dtype=np.int64)
        due = slot + np.fromiter(
            (self.backoff_slots(int(a)) for a in attempts),
            dtype=np.int64,
            count=n,
        )
        expire = np.full(n, slot + self.ttl_slots, dtype=np.int64)
        self._append(down, up, video, chunk, attempts, due, expire)

    def requeue(self, batch: RetryBatch, failed: np.ndarray, slot: int,
                expire: np.ndarray) -> None:
        """Re-park the ``failed`` subset of a popped batch after a miss.

        Attempt counts advance by one; the original expiry is preserved
        so the TTL clock keeps running from the first failure.
        """
        if not failed.any():
            return
        attempts = batch.attempts[failed] + 1
        due = slot + np.fromiter(
            (self.backoff_slots(int(a)) for a in attempts),
            dtype=np.int64,
            count=len(attempts),
        )
        self._append(
            batch.down[failed],
            batch.up[failed],
            batch.video[failed],
            batch.chunk[failed],
            attempts,
            due,
            expire[failed],
        )

    def _append(self, down, up, video, chunk, attempts, due, expire) -> None:
        as64 = lambda a: np.asarray(a, dtype=np.int64)
        self._down = np.concatenate((self._down, as64(down)))
        self._up = np.concatenate((self._up, as64(up)))
        self._video = np.concatenate((self._video, as64(video)))
        self._chunk = np.concatenate((self._chunk, as64(chunk)))
        self._attempts = np.concatenate((self._attempts, as64(attempts)))
        self._due = np.concatenate((self._due, as64(due)))
        self._expire = np.concatenate((self._expire, as64(expire)))
        self.version += 1

    # ------------------------------------------------------------------
    # Slot-boundary sweep
    # ------------------------------------------------------------------
    def evict_departed(self, online_mask_of: np.ndarray) -> int:
        """Drop edges whose uploader or downstream is offline.

        ``online_mask_of`` is a peer-id-indexed bool array (ids at or
        beyond its length count as offline).  Returns edges evicted.
        """
        if not len(self._down):
            return 0
        limit = len(online_mask_of)

        def online(ids: np.ndarray) -> np.ndarray:
            ok = ids < limit
            out = np.zeros(len(ids), dtype=bool)
            out[ok] = online_mask_of[ids[ok]]
            return out

        keep = online(self._down) & online(self._up)
        evicted = int(len(keep) - keep.sum())
        if evicted:
            self._filter(keep)
        return evicted

    def pop_surrendered(self, slot: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Remove expired edges; returns their (down, video, chunk).

        An edge expires once ``slot`` reaches its expiry — the chunk is
        handed back to the auction (its request is no longer suppressed,
        so the next ``build_problem`` re-exposes it).
        """
        if not len(self._down):
            return _EMPTY, _EMPTY, _EMPTY
        expired = self._expire <= slot
        if not expired.any():
            return _EMPTY, _EMPTY, _EMPTY
        down = self._down[expired]
        video = self._video[expired]
        chunk = self._chunk[expired]
        self._filter(~expired)
        return down, video, chunk

    def pop_due(self, slot: int) -> Tuple[RetryBatch, np.ndarray]:
        """Remove edges due at ``slot``; returns (batch, their expiries)."""
        if not len(self._down):
            return RetryBatch(_EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY), _EMPTY
        due = self._due <= slot
        if not due.any():
            return RetryBatch(_EMPTY, _EMPTY, _EMPTY, _EMPTY, _EMPTY), _EMPTY
        batch = RetryBatch(
            down=self._down[due],
            up=self._up[due],
            video=self._video[due],
            chunk=self._chunk[due],
            attempts=self._attempts[due],
        )
        expire = self._expire[due]
        self._filter(~due)
        return batch, expire

    def _filter(self, keep: np.ndarray) -> None:
        self._down = self._down[keep]
        self._up = self._up[keep]
        self._video = self._video[keep]
        self._chunk = self._chunk[keep]
        self._attempts = self._attempts[keep]
        self._due = self._due[keep]
        self._expire = self._expire[keep]
        self.version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def pending_triples(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(downstream, video, chunk) of every pending edge — the
        suppression set ``build_problem`` subtracts from its requests."""
        return self._down, self._video, self._chunk

    def drop_downstream_chunks(self, down: np.ndarray, video: np.ndarray,
                               chunk: np.ndarray) -> int:
        """Remove any pending edges matching the given triples.

        Used when a chunk reaches the downstream by another path (e.g. a
        surrendered edge's auction reassignment succeeds while a
        duplicate is still parked).  Returns edges dropped.
        """
        if not len(self._down) or not len(down):
            return 0
        keys = _triple_key(self._down, self._video, self._chunk)
        gone = _triple_key(np.asarray(down, dtype=np.int64),
                           np.asarray(video, dtype=np.int64),
                           np.asarray(chunk, dtype=np.int64))
        keep = ~np.isin(keys, gone)
        dropped = int(len(keep) - keep.sum())
        if dropped:
            self._filter(keep)
        return dropped

    # ------------------------------------------------------------------
    # Snapshot/restore (bench harness: timing runs must not leak state)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, np.ndarray]:
        """Copy of the full queue state, for exact restoration."""
        return {
            "down": self._down.copy(),
            "up": self._up.copy(),
            "video": self._video.copy(),
            "chunk": self._chunk.copy(),
            "attempts": self._attempts.copy(),
            "due": self._due.copy(),
            "expire": self._expire.copy(),
        }

    def restore(self, snap: Dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._down = snap["down"].copy()
        self._up = snap["up"].copy()
        self._video = snap["video"].copy()
        self._chunk = snap["chunk"].copy()
        self._attempts = snap["attempts"].copy()
        self._due = snap["due"].copy()
        self._expire = snap["expire"].copy()
        self.version += 1


def _triple_key(peer: np.ndarray, video: np.ndarray, chunk: np.ndarray) -> np.ndarray:
    """Pack (peer, video, chunk) into one int64 key for set operations.

    Safe while peer ids stay below 2**31 and video/chunk below 2**16 —
    comfortably true for every configuration in this repo (videos ≤ 100,
    chunks/video ≤ 2560, peers well under a billion).
    """
    return (
        (peer.astype(np.int64) << np.int64(32))
        | (video.astype(np.int64) << np.int64(16))
        | chunk.astype(np.int64)
    )
