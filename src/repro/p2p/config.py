"""System configuration with the paper's Section V defaults.

Three presets:

* :meth:`SystemConfig.paper` — the full experimental setting (500 peers,
  100 videos of 2560 × 8 KB chunks, 100-chunk windows).  Faithful but
  heavy: one slot's auction is a ~50 000-request assignment problem.
* :meth:`SystemConfig.bench` — the scaled setting the benchmark harness
  uses by default (laptop-friendly; documented in EXPERIMENTS.md).  The
  scale-free quantities (5 ISPs, cost distributions, valuation, Zipf
  parameters, [1,4]× upload, 8× seeds, slot length) are unchanged, so
  within-config comparisons preserve the paper's shapes.
* :meth:`SystemConfig.tiny` — unit-test sized.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """All knobs of the emulated P2P VoD system."""

    # Randomness
    seed: int = 0

    # ISPs and overlay.  tracker_seed_rank: "first" guarantees seeds in
    # every bootstrap list; "random" has them compete at a random
    # position rank (tracker ranks by advertised playback position and
    # seeds advertise none) — the scarce-supply regime where ISP
    # awareness matters, used by the figure benches.
    n_isps: int = 5
    neighbor_target: int = 30
    tracker_seed_rank: str = "first"

    # Catalog
    n_videos: int = 100
    video_size_bytes: int = 20 * 1024 * 1024
    chunk_size_bytes: int = 8 * 1024
    bitrate_bps: int = 640 * 1000

    # Timing
    slot_seconds: float = 10.0
    startup_delay_slots: float = 1.0  # prefetch lead before playback starts
    # Sub-slot bidding rounds.  The paper's peers "keep bidding" within a
    # slot (Fig. 2 shows λ_u evolving over ~5 s inside each slot) with
    # valuations that grow as deadlines near; R > 1 splits each slot into
    # R re-bid rounds with refreshed deadlines and a 1/R share of each
    # uploader's bandwidth.  R = 1 is the pure one-shot ILP of Sec. III.
    bid_rounds_per_slot: int = 1

    # Windows and bandwidth
    prefetch_chunks: int = 100
    peer_upload_min_multiple: float = 1.0
    peer_upload_max_multiple: float = 4.0
    seed_upload_multiple: float = 8.0
    seeds_per_isp_per_video: int = 2

    # Churn
    arrival_rate_per_s: float = 1.0
    early_departure_prob: float = 0.0  # Fig. 6 uses 0.6

    # Popularity (Zipf-Mandelbrot)
    zipf_alpha: float = 0.78
    zipf_q: float = 4.0

    # Valuation
    valuation_alpha: float = 2.0
    valuation_beta: float = 1.2

    # Network costs (truncated normals)
    inter_cost_mean: float = 5.0
    inter_cost_std: float = 1.0
    inter_cost_low: float = 1.0
    inter_cost_high: float = 10.0
    intra_cost_mean: float = 1.0
    intra_cost_std: float = 1.0
    intra_cost_low: float = 0.0
    intra_cost_high: float = 2.0

    # Scheduling.  ε is sized against the valuation scale [0.8, 11]: large
    # enough to resolve the exact bid ties that same-peer chunk families
    # create (the paper's bid is valuation-independent), small enough that
    # the n·ε welfare bound is <1% of slot welfare; in practice the result
    # matches the Hungarian optimum exactly (tests assert this).
    scheduler: str = "auction"
    epsilon: float = 0.01
    # Warm-started prices: feed each bid round's final λ into the next
    # round's auction (the paper's peers "keep bidding" against posted
    # prices, and price continuity across re-bids is what game-based
    # ISP-friendly control exploits).  Off by default: a warm start can
    # leave a positive λ on an unsaturated uploader, voiding the CS-1
    # certificate, and all archived experiment outputs were produced
    # cold.  ``warm_start_across_slots`` additionally carries the last
    # round's λ over the slot boundary into the next slot's first round.
    warm_start_prices: bool = False
    warm_start_across_slots: bool = False
    # Decay applied to λ carried across a slot boundary (only meaningful
    # with warm_start_across_slots): the carried vector is scaled by
    # this factor and entries that fall below epsilon flush to exactly
    # 0.  Raw carry (1.0) overprices transiently scarce uploaders — the
    # next slot burns rounds walking stale prices back down; 0.0
    # degenerates to a cold start every slot.
    warm_price_decay: float = 0.5

    # Incremental cross-slot problem construction: retain each build's
    # flat candidate CSR in the peer-state store and patch only the row
    # segments invalidated since (deliveries, playback, churn, retry
    # suppression, regime events) instead of reassembling from scratch
    # (P2PSystem.patch_problem).  Byte-identical problems either way —
    # property-pinned — so trajectories are unchanged; off by default so
    # archived results regenerate on the cold reference path.  Pairs
    # naturally with warm_start_across_slots so λ survives the boundary
    # in the same mode, but does not require it.
    incremental_build: bool = False

    # Region-sharded solve path (core/sharding.py): partition each
    # slot's problem by the requesting peer's ISP region, run the
    # jacobi frontier per shard, and reconcile boundary uploader prices
    # with a coordination round (flat re-solve of only the contested
    # rows).  Same n·ε welfare certificate as the flat solve; off by
    # default so the cold flat solve stays the pinned reference.
    # shard_count = 0 shards one-per-ISP-region; an explicit count folds
    # regions as ``region % shard_count`` (1 is byte-identical to the
    # flat solver).  Composes with incremental_build: the sharded
    # scheduler re-slices its per-region views from the delta-patched
    # flat problem and revalidates the cached row partition per slot.
    sharded_solve: bool = False
    shard_count: int = 0
    # Worker processes for the sharded solve's phase-1 shard solves and
    # phase-2 contested re-solves (core/workers.py: a persistent pool
    # over shared-memory numpy blocks).  0 — the default — keeps the
    # solve in-process; results are byte-identical either way, and any
    # pool failure degrades to the in-process path with a reason-coded
    # fallback counter.  The REPRO_WORKERS environment variable
    # overrides this at system construction.
    shard_workers: int = 0

    # Per-ISP metrics rollup (obs/rollup.py): accumulate per-slot ×
    # per-ISP traffic/transit-cost/QoE counters during the run and
    # render them as the scenario report's "Per-ISP rollup" block.  Off
    # by default — the bincount deposits are cheap but not free, and
    # archived reports without the block must regenerate byte-identical.
    isp_rollup: bool = False

    # Retry pipeline for lossy link conditions (net/linkmodel.py): a
    # failed or truncated transfer waits backoff_base · 2^(attempt−1)
    # slots (capped at retry_backoff_cap_slots) between attempts, and is
    # surrendered back to the auction once it has sat in the queue for
    # retry_ttl_slots slots.  Irrelevant under ideal conditions — the
    # queue stays empty.
    retry_backoff_base_slots: int = 1
    retry_backoff_cap_slots: int = 4
    retry_ttl_slots: int = 6

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def chunks_per_second(self) -> float:
        """Playback consumption rate."""
        return self.bitrate_bps / 8.0 / self.chunk_size_bytes

    @property
    def chunks_per_slot(self) -> float:
        """Chunks consumed per time slot (paper: 100)."""
        return self.chunks_per_second * self.slot_seconds

    @property
    def chunks_per_video(self) -> int:
        return max(1, self.video_size_bytes // self.chunk_size_bytes)

    @property
    def video_duration_seconds(self) -> float:
        return self.chunks_per_video / self.chunks_per_second

    def peer_capacity_chunks(self, multiple: float) -> int:
        """Upload capacity B(u) in chunks/slot for a bandwidth multiple."""
        return max(1, int(round(multiple * self.chunks_per_slot)))

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.prefetch_chunks < self.chunks_per_slot:
            raise ValueError(
                f"prefetch window {self.prefetch_chunks} chunks is below "
                f"per-slot consumption {self.chunks_per_slot:.1f}: peers can "
                "never keep up"
            )
        if self.n_isps < 1 or self.n_videos < 1:
            raise ValueError("need at least one ISP and one video")
        if not 0.0 <= self.early_departure_prob <= 1.0:
            raise ValueError("early_departure_prob must be a probability")
        if self.peer_upload_min_multiple > self.peer_upload_max_multiple:
            raise ValueError("upload multiple range is inverted")
        if self.bid_rounds_per_slot < 1:
            raise ValueError("bid_rounds_per_slot must be >= 1")
        if self.warm_start_across_slots and not self.warm_start_prices:
            raise ValueError(
                "warm_start_across_slots requires warm_start_prices"
            )
        if not 0.0 <= self.warm_price_decay <= 1.0:
            raise ValueError(
                f"warm_price_decay must be in [0, 1], got "
                f"{self.warm_price_decay!r}"
            )
        if self.shard_count < 0:
            raise ValueError(
                f"shard_count must be >= 0 (0 = per-ISP), got "
                f"{self.shard_count!r}"
            )
        if self.sharded_solve and self.scheduler != "auction":
            raise ValueError(
                "sharded_solve decomposes the auction solve; scheduler "
                f"{self.scheduler!r} does not support it"
            )
        if self.shard_workers < 0:
            raise ValueError(
                f"shard_workers must be >= 0 (0 = in-process), got "
                f"{self.shard_workers!r}"
            )
        if self.shard_workers > 0 and not self.sharded_solve:
            raise ValueError(
                "shard_workers parallelizes the sharded solve; set "
                "sharded_solve=True to use worker processes"
            )
        if self.retry_backoff_base_slots < 1 or self.retry_backoff_cap_slots < 1:
            raise ValueError("retry backoff slots must be >= 1")
        if self.retry_ttl_slots < 1:
            raise ValueError("retry_ttl_slots must be >= 1")

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, seed: int = 0, **overrides) -> "SystemConfig":
        """The full Section V configuration."""
        return replace(cls(seed=seed), **overrides)

    @classmethod
    def bench(cls, seed: int = 0, **overrides) -> "SystemConfig":
        """Scaled configuration for the benchmark harness.

        32 KB chunks (25 chunks/slot), 8 MB videos (250 chunks ≈ 100 s),
        20 videos, 15 neighbors, 25-chunk windows.  All distributional
        parameters match the paper.
        """
        config = cls(
            seed=seed,
            n_videos=20,
            video_size_bytes=8_000 * 1024,
            chunk_size_bytes=32 * 1024,
            neighbor_target=8,
            tracker_seed_rank="random",
            prefetch_chunks=25,
            seeds_per_isp_per_video=1,
            bid_rounds_per_slot=4,
        )
        return replace(config, **overrides)

    @classmethod
    def tiny(cls, seed: int = 0, **overrides) -> "SystemConfig":
        """Unit-test configuration: 3 videos of 40 chunks, 2 ISPs."""
        config = cls(
            seed=seed,
            n_isps=2,
            n_videos=3,
            video_size_bytes=40 * 8 * 1024,
            chunk_size_bytes=8 * 1024,
            bitrate_bps=8 * 1024 * 8,  # 1 chunk/s → 10 chunks/slot
            neighbor_target=8,
            prefetch_chunks=10,
            seeds_per_isp_per_video=1,
        )
        return replace(config, **overrides)

    def with_scheduler(self, name: str) -> "SystemConfig":
        """Copy of this config using scheduler ``name``."""
        return replace(self, scheduler=name)
