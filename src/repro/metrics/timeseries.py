"""Simple time-series container for per-slot metrics."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["TimeSeries"]


class TimeSeries:
    """An append-only (time, value) series with summary helpers.

    Example
    -------
    >>> s = TimeSeries("welfare")
    >>> s.append(0.0, 1.0); s.append(10.0, 3.0)
    >>> s.mean()
    2.0
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time went backwards in series {self.name!r}: "
                f"{time!r} < {self._times[-1]!r}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.array(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.array(self._values, dtype=float)

    def pairs(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Arithmetic mean of the values (nan for an empty series)."""
        return float(np.mean(self._values)) if self._values else float("nan")

    def last(self) -> float:
        if not self._values:
            raise IndexError(f"series {self.name!r} is empty")
        return self._values[-1]

    def tail_mean(self, fraction: float = 0.5) -> float:
        """Mean over the trailing ``fraction`` of the series (steady state)."""
        if not self._values:
            return float("nan")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
        start = int(len(self._values) * (1.0 - fraction))
        return float(np.mean(self._values[start:]))

    def smoothed(self, window: int = 3) -> "TimeSeries":
        """Centered moving average (edges use shorter windows)."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        out = TimeSeries(f"{self.name}(smoothed)")
        half = window // 2
        values = self._values
        for i, t in enumerate(self._times):
            lo = max(0, i - half)
            hi = min(len(values), i + half + 1)
            out.append(t, float(np.mean(values[lo:hi])))
        return out

    def slope(self) -> float:
        """Least-squares slope of value over time (trend direction)."""
        if len(self._times) < 2:
            return 0.0
        return float(np.polyfit(self._times, self._values, 1)[0])
