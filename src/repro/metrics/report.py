"""Text rendering of experiment results: tables and ASCII sparkline plots.

The benchmark harness prints the same series the paper's figures plot;
these helpers keep that output compact and diff-friendly so
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .timeseries import TimeSeries

__all__ = [
    "comparison_table",
    "qoe_block",
    "render_table",
    "sparkline",
    "series_block",
]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Compress ``values`` into a fixed-width unicode sparkline."""
    values = list(values)
    if not values:
        return ""
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        # Average into `width` buckets.
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else arr[min(a, len(arr) - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in scaled)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def series_block(series: TimeSeries, label: Optional[str] = None) -> str:
    """One labelled line: sparkline + mean/min/max summary."""
    values = series.values
    name = label or series.name
    if len(values) == 0:
        return f"{name:<28s} (empty)"
    return (
        f"{name:<28s} {sparkline(values)}  "
        f"mean={values.mean():.4g} min={values.min():.4g} max={values.max():.4g}"
    )


def comparison_table(
    series_by_scheduler: Dict[str, TimeSeries],
    value_name: str,
    tail_fraction: float = 0.5,
) -> str:
    """Side-by-side comparison of one metric across schedulers.

    Mirrors how the paper's figures overlay "Auction Algorithm" and
    "Simple Locality" curves; the steady-state column averages the
    trailing half of each run.
    """
    rows: List[List[object]] = []
    for name, series in series_by_scheduler.items():
        values = series.values
        rows.append(
            [
                name,
                float(values.mean()) if len(values) else float("nan"),
                series.tail_mean(tail_fraction),
                float(values.min()) if len(values) else float("nan"),
                float(values.max()) if len(values) else float("nan"),
                sparkline(values, width=24),
            ]
        )
    return render_table(
        [value_name, "mean", f"tail{int(tail_fraction*100)}%", "min", "max", "trend"],
        rows,
    )


def qoe_block(
    collectors_by_scheduler: Dict[str, object],
    startup_by_scheduler: Optional[Dict[str, Sequence[float]]] = None,
    startup_by_isp_by_scheduler: Optional[Dict[str, Dict[int, tuple]]] = None,
) -> str:
    """Per-link-regime QoE comparison across schedulers.

    One row per (scheduler, regime) segment of each run — the regime
    label is stamped into every :class:`~repro.metrics.collectors.
    SlotMetrics` by the system's link-condition table, so a
    degrade→restore scenario yields ideal/degraded/ideal segments under
    *identical* workloads.  Columns: slots in the segment, rebuffer/miss
    rate, first-pass transfer failures, retry deliveries over attempts
    (with the success rate), transfers surrendered back to the auction,
    intra-ISP locality share, and mean per-chunk link latency.

    ``startup_by_scheduler`` optionally maps scheduler →
    ``(mean_startup_seconds, n_peers)`` (join → first delivered chunk),
    rendered as a trailing summary line.

    ``startup_by_isp_by_scheduler`` optionally maps scheduler →
    ``{isp: (mean_startup_seconds, n_peers)}``, with each delay
    attributed to the *requesting* peer's home ISP (startup delay is a
    downloader experience — crediting the uploader's ISP, as a naive
    transfer-side grouping would, misattributes lossy-regime stalls).
    Rendered as per-scheduler lines *after* the global summary line,
    which stays byte-identical with or without the breakdown.
    """
    headers = [
        "scheduler", "regime", "slots", "miss_rate", "failed",
        "retry_ok/att", "retry_rate", "surrendered", "intra_share",
        "delay_ms",
    ]
    rows: List[List[object]] = []
    for name, collector in collectors_by_scheduler.items():
        for regime, segment in collector.regime_segments().items():
            due = sum(s.chunks_due for s in segment)
            missed = sum(s.chunks_missed for s in segment)
            inter = sum(s.inter_isp_chunks for s in segment)
            intra = sum(s.intra_isp_chunks for s in segment)
            failed = sum(s.transfers_failed for s in segment)
            attempts = sum(s.retry_attempts for s in segment)
            succeeded = sum(s.retry_succeeded for s in segment)
            surrendered = sum(s.retry_surrendered for s in segment)
            delay = sum(s.link_delay_ms for s in segment)
            chunks = inter + intra
            rows.append(
                [
                    name,
                    regime,
                    len(segment),
                    missed / due if due else 0.0,
                    failed,
                    f"{succeeded}/{attempts}",
                    succeeded / attempts if attempts else 0.0,
                    surrendered,
                    intra / chunks if chunks else 0.0,
                    delay / chunks if chunks else 0.0,
                ]
            )
    lines = ["QoE per link regime", render_table(headers, rows)]
    if startup_by_scheduler:
        parts = [
            f"{name}={mean:.1f}s/{int(n)}p"
            for name, (mean, n) in startup_by_scheduler.items()
        ]
        lines.append(
            "startup delay (join→first chunk): " + " ".join(parts)
        )
    if startup_by_isp_by_scheduler:
        for name, by_isp in startup_by_isp_by_scheduler.items():
            if not by_isp:
                continue
            parts = [
                f"isp{isp}={mean:.1f}s/{int(n)}p"
                for isp, (mean, n) in sorted(by_isp.items())
            ]
            lines.append(
                f"startup delay by home ISP [{name}]: " + " ".join(parts)
            )
    return "\n".join(lines)
