"""Text rendering of experiment results: tables and ASCII sparkline plots.

The benchmark harness prints the same series the paper's figures plot;
these helpers keep that output compact and diff-friendly so
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .timeseries import TimeSeries

__all__ = ["comparison_table", "render_table", "sparkline", "series_block"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Compress ``values`` into a fixed-width unicode sparkline."""
    values = list(values)
    if not values:
        return ""
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        # Average into `width` buckets.
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array(
            [arr[a:b].mean() if b > a else arr[min(a, len(arr) - 1)]
             for a, b in zip(edges[:-1], edges[1:])]
        )
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_CHARS[0] * len(arr)
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in scaled)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.4g}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def series_block(series: TimeSeries, label: Optional[str] = None) -> str:
    """One labelled line: sparkline + mean/min/max summary."""
    values = series.values
    name = label or series.name
    if len(values) == 0:
        return f"{name:<28s} (empty)"
    return (
        f"{name:<28s} {sparkline(values)}  "
        f"mean={values.mean():.4g} min={values.min():.4g} max={values.max():.4g}"
    )


def comparison_table(
    series_by_scheduler: Dict[str, TimeSeries],
    value_name: str,
    tail_fraction: float = 0.5,
) -> str:
    """Side-by-side comparison of one metric across schedulers.

    Mirrors how the paper's figures overlay "Auction Algorithm" and
    "Simple Locality" curves; the steady-state column averages the
    trailing half of each run.
    """
    rows: List[List[object]] = []
    for name, series in series_by_scheduler.items():
        values = series.values
        rows.append(
            [
                name,
                float(values.mean()) if len(values) else float("nan"),
                series.tail_mean(tail_fraction),
                float(values.min()) if len(values) else float("nan"),
                float(values.max()) if len(values) else float("nan"),
                sparkline(values, width=24),
            ]
        )
    return render_table(
        [value_name, "mean", f"tail{int(tail_fraction*100)}%", "min", "max", "trend"],
        rows,
    )
