"""ISP-to-ISP traffic matrix.

A finer-grained view than the scalar inter-ISP share: entry ``(i, j)``
counts chunks uploaded from ISP ``i`` into ISP ``j``.  ISP-aware
scheduling shows up as diagonal dominance; the network-agnostic strawman
spreads mass uniformly.  Used by the locality example and the metrics
tests; the system records into one of these every run.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """Accumulates chunk transfers by (source ISP, destination ISP)."""

    def __init__(self, n_isps: int) -> None:
        if n_isps < 1:
            raise ValueError(f"need at least one ISP, got {n_isps!r}")
        self.n_isps = int(n_isps)
        self._counts = np.zeros((self.n_isps, self.n_isps), dtype=np.int64)

    def record(self, src_isp: int, dst_isp: int, chunks: int = 1) -> None:
        """Count ``chunks`` transferred from ``src_isp`` into ``dst_isp``."""
        if chunks < 0:
            raise ValueError(f"chunks must be non-negative, got {chunks!r}")
        self._counts[src_isp, dst_isp] += chunks

    def record_batch(self, src_isps, dst_isps) -> None:
        """Count one chunk per ``(src, dst)`` pair — a bincount instead of
        one :meth:`record` call per transfer."""
        src = np.asarray(src_isps, dtype=np.int64)
        dst = np.asarray(dst_isps, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError(
                f"src and dst must be 1-D and aligned, got shapes "
                f"{src.shape} and {dst.shape}"
            )
        if not src.size:
            return
        if (
            src.min() < 0 or src.max() >= self.n_isps
            or dst.min() < 0 or dst.max() >= self.n_isps
        ):
            raise IndexError(
                f"ISP index out of range [0, {self.n_isps}) in batch"
            )
        flat = np.bincount(
            src * self.n_isps + dst, minlength=self.n_isps * self.n_isps
        )
        self._counts += flat.reshape(self.n_isps, self.n_isps)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """A copy of the raw count matrix."""
        return self._counts.copy()

    def total(self) -> int:
        """All chunks transferred."""
        return int(self._counts.sum())

    def intra_total(self) -> int:
        """Chunks that stayed within an ISP."""
        return int(np.trace(self._counts))

    def inter_total(self) -> int:
        """Chunks that crossed an ISP boundary."""
        return self.total() - self.intra_total()

    def inter_fraction(self) -> float:
        """Share of transfers that crossed a boundary (0 when empty)."""
        total = self.total()
        return self.inter_total() / total if total else 0.0

    def localization_index(self) -> float:
        """Diagonal mass share: 1.0 = perfectly ISP-local traffic."""
        total = self.total()
        return self.intra_total() / total if total else 1.0

    def isp_upload_totals(self) -> List[int]:
        """Chunks uploaded out of each ISP (row sums)."""
        return [int(x) for x in self._counts.sum(axis=1)]

    def isp_download_totals(self) -> List[int]:
        """Chunks downloaded into each ISP (column sums)."""
        return [int(x) for x in self._counts.sum(axis=0)]

    def render(self) -> str:
        """Small text rendering for reports."""
        header = "      " + "".join(f"→ISP{j:<4d}" for j in range(self.n_isps))
        lines = [header]
        for i in range(self.n_isps):
            cells = "".join(f"{int(self._counts[i, j]):8d}" for j in range(self.n_isps))
            lines.append(f"ISP{i:<3d}{cells}")
        lines.append(
            f"intra={self.intra_total()} inter={self.inter_total()} "
            f"localization={self.localization_index():.3f}"
        )
        return "\n".join(lines)
