"""Welfare decomposition and fairness analysis.

The paper reports aggregate social welfare; downstream users of an
ISP-aware scheduler also care *who* that welfare accrues to.  This
module decomposes a slot schedule into per-peer and per-ISP utilities
and summarizes dispersion with Jain's fairness index

    J(x) = (Σ x_i)² / (n · Σ x_i²) ∈ [1/n, 1]

(1 = perfectly even).  Used by the analysis examples and tests; it has
no effect on scheduling.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..core.problem import SchedulingProblem
from ..core.result import ScheduleResult

__all__ = ["jain_index", "per_isp_welfare", "per_peer_utilities"]


def jain_index(values) -> float:
    """Jain's fairness index of a non-negative value vector.

    Returns 1.0 for an empty or all-zero vector (nothing to be unfair
    about).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    if (arr < 0).any():
        raise ValueError("Jain's index requires non-negative values")
    total = arr.sum()
    if total == 0.0:
        return 1.0
    return float(total**2 / (arr.size * (arr**2).sum()))


def per_peer_utilities(
    problem: SchedulingProblem, result: ScheduleResult
) -> Dict[int, float]:
    """Net utility Σ (v − w) each downstream peer receives in ``result``."""
    utilities: Dict[int, float] = {}
    for index, uploader in result.assignment.items():
        if uploader is None:
            continue
        peer = problem.request(index).peer
        utilities[peer] = utilities.get(peer, 0.0) + problem.edge_value(index, uploader)
    return utilities


def per_isp_welfare(
    problem: SchedulingProblem,
    result: ScheduleResult,
    isp_of: Callable[[int], int],
    n_isps: Optional[int] = None,
) -> Dict[int, float]:
    """Welfare grouped by the downstream peer's ISP.

    ``isp_of`` maps a peer id to its ISP index (e.g.
    ``ISPTopology.isp_of``).  ISPs with no served peers report 0.0 when
    ``n_isps`` is given.
    """
    welfare: Dict[int, float] = (
        {isp: 0.0 for isp in range(n_isps)} if n_isps is not None else {}
    )
    for peer, utility in per_peer_utilities(problem, result).items():
        isp = isp_of(peer)
        welfare[isp] = welfare.get(isp, 0.0) + utility
    return welfare
