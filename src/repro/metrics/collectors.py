"""Per-slot metric collection for the P2P system.

The paper's evaluation reports, per time slot: social welfare (Fig. 3 /
6a), the fraction of inter-ISP traffic among all transferred chunks
(Fig. 4 / 6b) and the average chunk miss rate (Fig. 5 / 6c).
:class:`MetricsCollector` accumulates exactly those, plus operational
counters useful for debugging (peers online, requests, served chunks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .timeseries import TimeSeries

__all__ = ["MetricsCollector", "SlotMetrics"]


@dataclass(frozen=True)
class SlotMetrics:
    """Everything measured in one time slot."""

    time: float
    n_peers: int
    n_requests: int
    n_served: int
    welfare: float
    inter_isp_chunks: int
    intra_isp_chunks: int
    chunks_due: int
    chunks_missed: int
    auction_rounds: int = 0
    # Lossy-link counters (net/linkmodel.py + p2p/retry.py); all stay at
    # their defaults under ideal conditions, so pre-existing consumers
    # and archived outputs are unaffected.
    transfers_failed: int = 0
    retry_attempts: int = 0
    retry_succeeded: int = 0
    retry_surrendered: int = 0
    retry_evicted: int = 0
    retry_pending: int = 0
    link_delay_ms: float = 0.0
    link_regime: str = "ideal"
    # Sharded-solve diagnostics (core/sharding.py), summed over the
    # slot's bid rounds; zero/empty on flat-solver runs so existing
    # consumers and archived outputs are unaffected.
    coordination_rounds: int = 0
    boundary_uploaders: int = 0
    contested_rows: int = 0
    sharded_fallbacks: int = 0
    sharded_fallback_reason: str = ""
    worker_fallbacks: int = 0

    @property
    def inter_isp_fraction(self) -> float:
        """Share of transferred chunks that crossed an ISP boundary."""
        total = self.inter_isp_chunks + self.intra_isp_chunks
        return self.inter_isp_chunks / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of due chunks that missed their deadline this slot."""
        return self.chunks_missed / self.chunks_due if self.chunks_due else 0.0

    @property
    def retry_success_rate(self) -> float:
        """Fraction of this slot's retry attempts that delivered."""
        return (
            self.retry_succeeded / self.retry_attempts
            if self.retry_attempts
            else 0.0
        )

    @property
    def mean_link_delay_ms(self) -> float:
        """Mean per-chunk link latency over this slot's deliveries."""
        total = self.inter_isp_chunks + self.intra_isp_chunks
        return self.link_delay_ms / total if total else 0.0


class MetricsCollector:
    """Accumulates :class:`SlotMetrics` and exposes the paper's series."""

    def __init__(self) -> None:
        self.slots: List[SlotMetrics] = []

    def record(self, metrics: SlotMetrics) -> None:
        if self.slots and metrics.time <= self.slots[-1].time:
            raise ValueError(
                f"slot time {metrics.time!r} not after {self.slots[-1].time!r}"
            )
        self.slots.append(metrics)

    def __len__(self) -> int:
        return len(self.slots)

    # ------------------------------------------------------------------
    # The paper's three series
    # ------------------------------------------------------------------
    def welfare_series(self) -> TimeSeries:
        """Fig. 3 / 6(a): social welfare per slot."""
        return self._series("welfare", lambda s: s.welfare)

    def inter_isp_series(self) -> TimeSeries:
        """Fig. 4 / 6(b): fraction of inter-ISP traffic per slot."""
        return self._series("inter_isp_fraction", lambda s: s.inter_isp_fraction)

    def miss_rate_series(self) -> TimeSeries:
        """Fig. 5 / 6(c): chunk miss rate per slot."""
        return self._series("miss_rate", lambda s: s.miss_rate)

    def peers_series(self) -> TimeSeries:
        return self._series("n_peers", lambda s: float(s.n_peers))

    def _series(self, name: str, getter) -> TimeSeries:
        out = TimeSeries(name)
        for slot in self.slots:
            out.append(slot.time, getter(slot))
        return out

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, float]:
        """Whole-run aggregates."""
        due = sum(s.chunks_due for s in self.slots)
        missed = sum(s.chunks_missed for s in self.slots)
        inter = sum(s.inter_isp_chunks for s in self.slots)
        intra = sum(s.intra_isp_chunks for s in self.slots)
        return {
            "welfare_total": sum(s.welfare for s in self.slots),
            "welfare_mean_per_slot": (
                sum(s.welfare for s in self.slots) / len(self.slots)
                if self.slots
                else 0.0
            ),
            "chunks_transferred": float(inter + intra),
            "inter_isp_fraction": inter / (inter + intra) if inter + intra else 0.0,
            "miss_rate": missed / due if due else 0.0,
            "served_total": float(sum(s.n_served for s in self.slots)),
            "requests_total": float(sum(s.n_requests for s in self.slots)),
            "transfers_failed_total": float(
                sum(s.transfers_failed for s in self.slots)
            ),
            "retry_attempts_total": float(
                sum(s.retry_attempts for s in self.slots)
            ),
            "retry_succeeded_total": float(
                sum(s.retry_succeeded for s in self.slots)
            ),
            "retry_surrendered_total": float(
                sum(s.retry_surrendered for s in self.slots)
            ),
        }

    def regime_segments(self) -> Dict[str, List[SlotMetrics]]:
        """Slots grouped by the link regime active when they ran.

        Insertion-ordered by first appearance, so a degrade→restore run
        yields ``{"ideal": [...], "loss10": [...], ...}`` in timeline
        order.  Ideal-only runs collapse to a single ``"ideal"`` group.
        """
        groups: Dict[str, List[SlotMetrics]] = {}
        for slot in self.slots:
            groups.setdefault(slot.link_regime, []).append(slot)
        return groups
