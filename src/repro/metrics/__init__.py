"""Metric collectors, time series and text reporting."""

from .collectors import MetricsCollector, SlotMetrics
from .fairness import jain_index, per_isp_welfare, per_peer_utilities
from .report import comparison_table, render_table, series_block, sparkline
from .timeseries import TimeSeries
from .traffic_matrix import TrafficMatrix

__all__ = [
    "MetricsCollector",
    "SlotMetrics",
    "TimeSeries",
    "TrafficMatrix",
    "comparison_table",
    "jain_index",
    "per_isp_welfare",
    "per_peer_utilities",
    "render_table",
    "series_block",
    "sparkline",
]
