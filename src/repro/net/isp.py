"""ISP topology: which peer belongs to which Internet Service Provider.

The paper deploys peers across M = 5 ISPs, with joining peers
"distributed in the 5 ISPs evenly".  :class:`ISPTopology` tracks the
peer→ISP map under churn and offers the queries the cost model and
metrics need (same-ISP tests, per-ISP rosters).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

import numpy as np

__all__ = ["ISPTopology"]


class ISPTopology:
    """Mutable assignment of peer ids to ISP indices ``0..n_isps-1``.

    Peers added without an explicit ISP go to the currently least
    populated ISP (ties broken by lowest index), which realizes the
    paper's "distributed evenly" arrival rule deterministically.
    """

    def __init__(self, n_isps: int) -> None:
        if n_isps < 1:
            raise ValueError(f"need at least one ISP, got {n_isps!r}")
        self._n_isps = int(n_isps)
        self._isp_of: Dict[int, int] = {}
        self._members: List[Set[int]] = [set() for _ in range(self._n_isps)]

    # ------------------------------------------------------------------
    # Membership management
    # ------------------------------------------------------------------
    @property
    def n_isps(self) -> int:
        """Number of ISPs."""
        return self._n_isps

    def __len__(self) -> int:
        return len(self._isp_of)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._isp_of

    def __iter__(self) -> Iterator[int]:
        return iter(self._isp_of)

    def add_peer(self, peer_id: int, isp: Optional[int] = None) -> int:
        """Register ``peer_id``; returns the ISP index it was placed in."""
        if peer_id in self._isp_of:
            raise ValueError(f"peer {peer_id!r} already registered")
        if isp is None:
            sizes = [len(m) for m in self._members]
            isp = int(np.argmin(sizes))
        if not 0 <= isp < self._n_isps:
            raise ValueError(f"isp index {isp!r} out of range [0, {self._n_isps})")
        self._isp_of[peer_id] = isp
        self._members[isp].add(peer_id)
        return isp

    def remove_peer(self, peer_id: int) -> None:
        """Unregister a departed peer."""
        isp = self._isp_of.pop(peer_id, None)
        if isp is None:
            raise KeyError(f"peer {peer_id!r} not registered")
        self._members[isp].discard(peer_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def isp_of(self, peer_id: int) -> int:
        """ISP index of ``peer_id``; raises ``KeyError`` if unknown."""
        return self._isp_of[peer_id]

    def peers_in(self, isp: int) -> Set[int]:
        """A copy of the roster of ISP ``isp``."""
        return set(self._members[isp])

    def same_isp(self, a: int, b: int) -> bool:
        """Whether peers ``a`` and ``b`` sit in the same ISP."""
        return self._isp_of[a] == self._isp_of[b]

    def sizes(self) -> List[int]:
        """Current population of each ISP."""
        return [len(m) for m in self._members]

    def all_peers(self) -> Set[int]:
        """The set of all registered peer ids."""
        return set(self._isp_of)
