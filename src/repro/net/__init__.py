"""Network substrate: ISP membership, pairwise costs, overlay topology."""

from .costs import PAPER_INTER_ISP_COST, PAPER_INTRA_ISP_COST, CostModel
from .isp import ISPTopology
from .topology import OverlayGraph, rank_candidates
from .trunc_normal import TruncatedNormal

__all__ = [
    "CostModel",
    "ISPTopology",
    "OverlayGraph",
    "PAPER_INTER_ISP_COST",
    "PAPER_INTRA_ISP_COST",
    "TruncatedNormal",
    "rank_candidates",
]
