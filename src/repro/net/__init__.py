"""Network substrate: ISP membership, pairwise costs, topology, link conditions."""

from .costs import PAPER_INTER_ISP_COST, PAPER_INTRA_ISP_COST, CostModel
from .isp import ISPTopology
from .linkmodel import (
    REGIME_PRESETS,
    LinkConditions,
    LinkOutcome,
    LinkParams,
    link_preset,
    preset_names,
)
from .topology import OverlayGraph, rank_candidates
from .trunc_normal import TruncatedNormal

__all__ = [
    "CostModel",
    "ISPTopology",
    "LinkConditions",
    "LinkOutcome",
    "LinkParams",
    "OverlayGraph",
    "PAPER_INTER_ISP_COST",
    "PAPER_INTRA_ISP_COST",
    "REGIME_PRESETS",
    "TruncatedNormal",
    "link_preset",
    "preset_names",
    "rank_candidates",
]
