"""Pairwise network-cost model ``w_{u→d}``.

The paper uses network latency as the cost and samples it from truncated
normals: inter-ISP ~ TN(μ=5, σ=1, [1, 10]) and intra-ISP
~ TN(μ=1, σ=1, [0, 2]).  Costs are per peer pair; we sample lazily on
first query (peers churn, so a static matrix would not do) and cache so
the same pair always sees the same cost within a run.

``symmetric=True`` (the default) gives ``w_{u→d} = w_{d→u}``, consistent
with interpreting the cost as the latency of the link between the two
peers.  Asymmetric mode samples each direction independently — useful
for stress-testing the auction, which never assumes symmetry.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

import numpy as np

from .isp import ISPTopology
from .trunc_normal import TruncatedNormal

__all__ = ["CostModel", "PAPER_INTER_ISP_COST", "PAPER_INTRA_ISP_COST"]

#: Paper defaults (Section V).
PAPER_INTER_ISP_COST = TruncatedNormal(mean=5.0, std=1.0, low=1.0, high=10.0)
PAPER_INTRA_ISP_COST = TruncatedNormal(mean=1.0, std=1.0, low=0.0, high=2.0)


class CostModel:
    """Lazy, cached sampler of pairwise network costs.

    Parameters
    ----------
    topology:
        The ISP membership map deciding which distribution applies.
    rng:
        Source of randomness for the cost draws.
    inter, intra:
        Truncated-normal distributions for cross-ISP and same-ISP pairs.
    symmetric:
        If ``True`` the unordered pair shares one draw.
    """

    def __init__(
        self,
        topology: ISPTopology,
        rng: np.random.Generator,
        inter: TruncatedNormal = PAPER_INTER_ISP_COST,
        intra: TruncatedNormal = PAPER_INTRA_ISP_COST,
        symmetric: bool = True,
    ) -> None:
        self.topology = topology
        self.rng = rng
        self.inter = inter
        self.intra = intra
        self.symmetric = symmetric
        self._cache: Dict[Tuple[int, int], float] = {}
        # Per-ISP-pair price multipliers (scenario engine: transit-price
        # shocks, asymmetric transit regimes).  Keyed by the sorted
        # (isp_a, isp_b) pair — (i, i) scales ISP i's intra-ISP costs.
        # Applied at sample time; setting a scale also rescales the
        # already-cached pair costs, so both the lazy per-pair path and
        # the bulk path keep returning consistent values.
        self._isp_scale: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Cost queries
    # ------------------------------------------------------------------
    def cost(self, src: int, dst: int) -> float:
        """Network cost ``w_{src→dst}`` of sending one chunk from src to dst."""
        if src == dst:
            return 0.0
        key = self._key(src, dst)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        dist = self.intra if self.topology.same_isp(src, dst) else self.inter
        value = dist.sample_one(self.rng)
        if self._isp_scale:
            value *= self._pair_scale(src, dst)
        self._cache[key] = value
        return value

    def costs_from(self, sources: Iterable[int], dst: int) -> np.ndarray:
        """Vector of costs ``w_{u→dst}`` for each ``u`` in ``sources``."""
        return np.array([self.cost(src, dst) for src in sources], dtype=float)

    def costs_for_pairs(self, sources, dst: int) -> np.ndarray:
        """Bulk :meth:`cost`: ``w_{u→dst}`` for an array of sources.

        Cache hits are read in one pass; the (rare after warm-up)
        missing pairs are sampled in two bulk truncated-normal draws —
        intra-ISP pairs first, then inter-ISP, each in source order —
        instead of one scipy round-trip per pair.  Per-pair values are
        cached exactly like :meth:`cost`, so mixing the two APIs is safe.
        """
        src_list = np.asarray(sources, dtype=np.int64).tolist()
        dst = int(dst)
        out = np.empty(len(src_list), dtype=float)
        cache = self._cache
        missing: list = []  # (position, key, is_intra)
        for i, src in enumerate(src_list):
            if src == dst:
                out[i] = 0.0
                continue
            key = self._key(src, dst)
            cached = cache.get(key)
            if cached is None:
                missing.append((i, key, self.topology.same_isp(src, dst)))
                out[i] = np.nan
            else:
                out[i] = cached
        if missing:
            n_intra = sum(1 for _, _, intra in missing if intra)
            intra_draws = iter(
                self.intra.sample(self.rng, size=n_intra) if n_intra else ()
            )
            inter_draws = iter(
                self.inter.sample(self.rng, size=len(missing) - n_intra)
                if len(missing) > n_intra
                else ()
            )
            for i, key, intra in missing:
                value = cache.get(key)  # duplicate source in this batch
                if value is None:
                    value = float(next(intra_draws if intra else inter_draws))
                    if self._isp_scale:
                        value *= self._pair_scale(key[0], key[1])
                    cache[key] = value
                out[i] = value
        return out

    # ------------------------------------------------------------------
    # Mid-run price regimes (scenario engine hooks)
    # ------------------------------------------------------------------
    def _pair_scale(self, src: int, dst: int) -> float:
        """Current price multiplier for the peer pair ``(src, dst)``."""
        a = self.topology.isp_of(src)
        b = self.topology.isp_of(dst)
        if a > b:
            a, b = b, a
        return self._isp_scale.get((a, b), 1.0)

    def isp_pair_scale(self, isp_a: int, isp_b: int) -> float:
        """Current multiplier on costs between ``isp_a`` and ``isp_b``."""
        key = (isp_a, isp_b) if isp_a <= isp_b else (isp_b, isp_a)
        return self._isp_scale.get(key, 1.0)

    def set_isp_pair_scale(self, isp_a: int, isp_b: int, scale: float) -> None:
        """Set the price multiplier between two ISPs (``a == b``: intra).

        Models an ISP transit-price change: *future* samples of matching
        pairs are multiplied by ``scale``, and already-cached pair costs
        are rescaled in place from their previous multiplier — so the
        whole cost surface jumps consistently at the instant of the
        change, with no random draws consumed (determinism: a price
        shock never perturbs the cost trajectory of unrelated pairs).
        """
        if scale <= 0:
            raise ValueError(f"cost scale must be positive, got {scale!r}")
        key = (isp_a, isp_b) if isp_a <= isp_b else (isp_b, isp_a)
        old = self._isp_scale.get(key, 1.0)
        if scale == old:
            return
        if scale == 1.0:
            del self._isp_scale[key]
        else:
            self._isp_scale[key] = float(scale)
        self._rescale_cached({key: scale / old})

    def scale_inter_costs(self, factor: float) -> None:
        """Multiply every cross-ISP price by ``factor`` (global shock)."""
        if factor <= 0:
            raise ValueError(f"cost scale must be positive, got {factor!r}")
        if factor == 1.0:
            return
        n = self.topology.n_isps
        ratios: Dict[Tuple[int, int], float] = {}
        for a in range(n):
            for b in range(a + 1, n):
                old = self._isp_scale.get((a, b), 1.0)
                new = old * factor
                if new == 1.0:
                    self._isp_scale.pop((a, b), None)
                else:
                    self._isp_scale[(a, b)] = new
                ratios[(a, b)] = factor
        self._rescale_cached(ratios)

    def _rescale_cached(self, ratios: Dict[Tuple[int, int], float]) -> None:
        """Multiply cached pair costs whose ISP pair appears in ``ratios``."""
        if not self._cache or not ratios:
            return
        isp_of = self.topology.isp_of
        for pair, value in self._cache.items():
            a = isp_of(pair[0])
            b = isp_of(pair[1])
            if a > b:
                a, b = b, a
            ratio = ratios.get((a, b))
            if ratio is not None:
                self._cache[pair] = value * ratio

    def is_inter_isp(self, src: int, dst: int) -> bool:
        """Whether a transfer src→dst crosses an ISP boundary."""
        return not self.topology.same_isp(src, dst)

    def as_cost_fn(self) -> Callable[[int, int], float]:
        """The model as a plain ``(src, dst) -> float`` callable."""
        return self.cost

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def forget_peer(self, peer_id: int) -> int:
        """Drop cached entries involving a departed peer.

        Returns the number of entries evicted.  Keeping the cache tight
        matters in long churn runs (arrival rate 1/s over hundreds of
        seconds).
        """
        stale = [k for k in self._cache if peer_id in k]
        for k in stale:
            del self._cache[k]
        return len(stale)

    def cache_size(self) -> int:
        """Number of cached pair costs."""
        return len(self._cache)

    def matrix(self, peers: list[int]) -> np.ndarray:
        """Dense cost matrix over ``peers`` (diagonal zero).

        Row ``i``, column ``j`` holds ``w_{peers[i]→peers[j]}``.  Used by
        tests and the exact solvers; the auction itself only ever touches
        costs on candidate edges.
        """
        n = len(peers)
        out = np.zeros((n, n), dtype=float)
        for i, u in enumerate(peers):
            for j, d in enumerate(peers):
                if i != j:
                    out[i, j] = self.cost(u, d)
        return out

    def _key(self, src: int, dst: int) -> Tuple[int, int]:
        if self.symmetric and src > dst:
            return (dst, src)
        return (src, dst)
