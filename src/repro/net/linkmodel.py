"""Netem-style per-ISP-pair link conditions (the lossy-network layer).

The emulator's transfers historically completed ideally: every chunk the
scheduler assigned landed in the downstream buffer within the slot.
:class:`LinkConditions` is the deterministic fault-injection layer that
breaks that assumption, in the spirit of a ``netem`` matrix: each
(ISP a, ISP b) link carries a :class:`LinkParams` record of

* ``loss_rate`` — per-chunk Bernoulli delivery failure,
* ``bandwidth_cap`` — aggregate chunks/slot the pair's link carries;
  excess scheduled chunks are truncated (partial delivery),
* ``delay_ms`` / ``jitter_ms`` — per-chunk one-way latency, sampled as
  ``max(0, delay + jitter·N(0,1))``; latency never blocks a 10-second
  slot but feeds the QoE report (mean chunk latency, startup delay).

Evaluation is vectorized over the slot's assigned-transfer arrays
(:meth:`LinkConditions.evaluate`) and draws only from the RNG stream the
caller passes (the system's dedicated ``link-conditions`` stream).  The
default table is **ideal** — no pair degraded — and an ideal table is
never evaluated, so pre-existing trajectories and archived results
regenerate byte-identically.

Named regime presets mirror the classic netem matrix: ``delay10``,
``loss10``, ``loss30-delay50`` (see :data:`REGIME_PRESETS`); the
scenario engine applies them via ``link-degrade`` / ``link-restore``
timed events.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "LinkConditions",
    "LinkOutcome",
    "LinkParams",
    "REGIME_PRESETS",
    "link_preset",
    "preset_names",
]


@dataclass(frozen=True)
class LinkParams:
    """Link conditions of one ISP pair (netem-style knobs)."""

    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    bandwidth_cap: Optional[int] = None

    def validate(self) -> None:
        if self.delay_ms < 0 or self.jitter_ms < 0:
            raise ValueError("delay_ms and jitter_ms must be >= 0")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(
                f"loss_rate must be in [0, 1], got {self.loss_rate!r}"
            )
        if self.bandwidth_cap is not None and self.bandwidth_cap < 0:
            raise ValueError(
                f"bandwidth_cap must be >= 0 or None, got {self.bandwidth_cap!r}"
            )

    @property
    def ideal(self) -> bool:
        """Whether these conditions are indistinguishable from no model."""
        return (
            self.delay_ms == 0.0
            and self.jitter_ms == 0.0
            and self.loss_rate == 0.0
            and self.bandwidth_cap is None
        )

    def describe(self) -> str:
        parts = []
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate:.0%}")
        if self.delay_ms or self.jitter_ms:
            parts.append(f"delay={self.delay_ms:g}±{self.jitter_ms:g}ms")
        if self.bandwidth_cap is not None:
            parts.append(f"cap={self.bandwidth_cap}ch/slot")
        return " ".join(parts) if parts else "ideal"


#: The netem regime matrix: preset name → LinkParams.  ``ideal`` resets.
REGIME_PRESETS: Dict[str, LinkParams] = {
    "ideal": LinkParams(),
    "delay10": LinkParams(delay_ms=10.0),
    "loss10": LinkParams(loss_rate=0.10),
    "loss30-delay50": LinkParams(loss_rate=0.30, delay_ms=50.0, jitter_ms=10.0),
}


def preset_names() -> List[str]:
    """Registered regime preset names, sorted."""
    return sorted(REGIME_PRESETS)


def link_preset(name: str) -> LinkParams:
    """Look up a named regime preset."""
    try:
        return REGIME_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown link regime {name!r}; known: {preset_names()}"
        ) from None


@dataclass(frozen=True)
class LinkOutcome:
    """Vectorized verdict for one batch of assigned transfers.

    ``delivered`` marks edges that completed; ``lost`` the Bernoulli
    failures; ``truncated`` the bandwidth-cap overflow (an edge is never
    both).  ``delay_ms`` holds per-edge latency samples for *delivered*
    edges (0 elsewhere) so QoE can average chunk latency.
    """

    delivered: np.ndarray
    lost: np.ndarray
    truncated: np.ndarray
    delay_ms: np.ndarray

    @property
    def n_failed(self) -> int:
        return int(self.lost.sum()) + int(self.truncated.sum())


class LinkConditions:
    """Per-ISP-pair link-condition table, vectorized over transfer batches.

    The table starts ideal.  Degrading a pair (or every inter-ISP pair)
    installs a :class:`LinkParams`; :meth:`evaluate` then classifies a
    batch of assigned transfers into delivered / lost / truncated and
    samples per-chunk latency.  All randomness comes from the generator
    passed to :meth:`evaluate` — an ideal table performs no draws (it is
    never evaluated), so enabling the subsystem cannot perturb existing
    trajectories.
    """

    def __init__(self, n_isps: int) -> None:
        if n_isps < 1:
            raise ValueError(f"need at least one ISP, got {n_isps!r}")
        self.n_isps = int(n_isps)
        n = self.n_isps
        self._loss = np.zeros((n, n), dtype=float)
        self._delay = np.zeros((n, n), dtype=float)
        self._jitter = np.zeros((n, n), dtype=float)
        self._cap = np.full((n, n), -1, dtype=np.int64)  # −1 = uncapped
        self._n_degraded = 0
        #: Label of the regime currently applied ("ideal", a preset
        #: name, or "custom") — stamped into per-slot metrics so the
        #: QoE report can segment a run by regime.
        self.regime = "ideal"

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any pair is degraded (ideal tables are skipped)."""
        return self._n_degraded > 0

    def pair(self, isp_a: int, isp_b: int) -> LinkParams:
        """Current conditions between two ISPs (symmetric)."""
        a, b = self._check_pair(isp_a, isp_b)
        cap = int(self._cap[a, b])
        return LinkParams(
            delay_ms=float(self._delay[a, b]),
            jitter_ms=float(self._jitter[a, b]),
            loss_rate=float(self._loss[a, b]),
            bandwidth_cap=None if cap < 0 else cap,
        )

    def set_pair(self, isp_a: int, isp_b: int, params: LinkParams) -> None:
        """Install ``params`` on the (symmetric) pair ``(isp_a, isp_b)``."""
        params.validate()
        a, b = self._check_pair(isp_a, isp_b)
        was_ideal = self.pair(a, b).ideal
        for i, j in ((a, b), (b, a)):
            self._loss[i, j] = params.loss_rate
            self._delay[i, j] = params.delay_ms
            self._jitter[i, j] = params.jitter_ms
            self._cap[i, j] = -1 if params.bandwidth_cap is None else params.bandwidth_cap
        if was_ideal and not params.ideal:
            self._n_degraded += 1
        elif not was_ideal and params.ideal:
            self._n_degraded -= 1

    def degrade(
        self,
        params: LinkParams,
        isp_a: Optional[int] = None,
        isp_b: Optional[int] = None,
    ) -> int:
        """Install ``params`` on a pair selection; returns pairs touched.

        ``isp_a`` and ``isp_b`` both ``None``: every *inter*-ISP pair
        (a degraded backbone — intra-ISP links stay ideal).  ``isp_a``
        alone: every pair touching that ISP, intra included (a flaky
        access network).  Both given: exactly that pair.
        """
        if isp_a is None and isp_b is not None:
            raise ValueError("give isp_a when giving isp_b")
        pairs = self._select_pairs(isp_a, isp_b)
        for a, b in pairs:
            self.set_pair(a, b, params)
        return len(pairs)

    def restore(
        self, isp_a: Optional[int] = None, isp_b: Optional[int] = None
    ) -> int:
        """Reset a pair selection to ideal (inverse of :meth:`degrade`)."""
        if isp_a is None and isp_b is not None:
            raise ValueError("give isp_a when giving isp_b")
        if isp_a is None:
            # Full reset covers intra pairs too: a restore-all always
            # returns the table to the pristine ideal state.
            pairs = [
                (a, b)
                for a in range(self.n_isps)
                for b in range(a, self.n_isps)
            ]
        else:
            pairs = self._select_pairs(isp_a, isp_b)
        for a, b in pairs:
            self.set_pair(a, b, LinkParams())
        if not self.active:
            self.regime = "ideal"
        return len(pairs)

    def _select_pairs(
        self, isp_a: Optional[int], isp_b: Optional[int]
    ) -> List[Tuple[int, int]]:
        n = self.n_isps
        if isp_a is None:
            return [(a, b) for a in range(n) for b in range(a + 1, n)]
        if isp_b is None:
            a, _ = self._check_pair(isp_a, isp_a)
            return [(min(a, b), max(a, b)) for b in range(n)]
        return [self._check_pair(isp_a, isp_b)]

    def _check_pair(self, isp_a: int, isp_b: int) -> Tuple[int, int]:
        a, b = int(isp_a), int(isp_b)
        if not (0 <= a < self.n_isps and 0 <= b < self.n_isps):
            raise ValueError(
                f"ISP pair ({isp_a}, {isp_b}) outside [0, {self.n_isps})"
            )
        return (a, b) if a <= b else (b, a)

    def describe(self) -> str:
        """One-line summary of the degraded pairs (empty table: 'ideal')."""
        if not self.active:
            return "ideal"
        parts = []
        for a in range(self.n_isps):
            for b in range(a, self.n_isps):
                p = self.pair(a, b)
                if not p.ideal:
                    parts.append(f"({a},{b}): {p.describe()}")
        return "; ".join(parts)

    # ------------------------------------------------------------------
    # Vectorized evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        up_isps: np.ndarray,
        down_isps: np.ndarray,
        rng: np.random.Generator,
    ) -> LinkOutcome:
        """Classify one batch of assigned transfers under the table.

        ``up_isps`` / ``down_isps`` are the per-edge ISP indices of the
        uploader and downstream peer, in assignment order.  Draw counts
        depend only on the batch size and which knob families are
        active (one uniform per edge for loss, one normal per edge when
        any pair jitters), never on the outcomes — so trajectories are
        reproducible for a fixed (conditions, edge-count) sequence.

        Bandwidth caps apply per ISP pair to the *surviving* edges in
        batch order: the first ``cap`` chunks cross, the rest are
        truncated (the partial-delivery regime).  Same-ISP edges use the
        pair's (a, a) entry, degraded only by ISP-targeted selections.
        """
        up = np.asarray(up_isps, dtype=np.int64)
        down = np.asarray(down_isps, dtype=np.int64)
        n = len(up)
        if n == 0:
            empty_b = np.empty(0, dtype=bool)
            return LinkOutcome(empty_b, empty_b.copy(), empty_b.copy(),
                               np.empty(0, dtype=float))
        loss = self._loss[up, down]
        if loss.any():
            lost = rng.random(n) < loss
        elif self.active:
            rng.random(n)  # fixed draw schedule across regime changes
            lost = np.zeros(n, dtype=bool)
        else:
            lost = np.zeros(n, dtype=bool)
        truncated = np.zeros(n, dtype=bool)
        caps = self._cap[up, down]
        capped = caps >= 0
        if capped.any():
            # Occurrence index of each surviving edge within its ISP
            # pair, in batch order; index >= cap overflows the link.
            codes = up * self.n_isps + down
            codes = np.minimum(codes, down * self.n_isps + up)  # symmetric
            alive = ~lost
            order = np.argsort(codes[alive], kind="stable")
            sorted_codes = codes[alive][order]
            starts = np.concatenate(
                ([0], np.nonzero(np.diff(sorted_codes))[0] + 1)
            )
            occ = np.arange(len(sorted_codes), dtype=np.int64)
            occ -= np.repeat(starts, np.diff(np.concatenate((starts, [len(sorted_codes)]))))
            occ_full = np.empty(len(sorted_codes), dtype=np.int64)
            occ_full[order] = occ
            over = np.zeros(n, dtype=bool)
            alive_caps = caps[alive]
            over[np.nonzero(alive)[0]] = (alive_caps >= 0) & (
                occ_full >= np.maximum(alive_caps, 0)
            )
            truncated = over
        delivered = ~(lost | truncated)
        delay = np.zeros(n, dtype=float)
        if self._delay.any() or self._jitter.any():
            base = self._delay[up, down]
            jit = self._jitter[up, down]
            if self._jitter.any():
                noise = rng.standard_normal(n)
            else:
                noise = 0.0
            delay = np.maximum(0.0, base + jit * noise)
            delay[~delivered] = 0.0
        return LinkOutcome(
            delivered=delivered, lost=lost, truncated=truncated, delay_ms=delay
        )

    # ------------------------------------------------------------------
    # Preset application
    # ------------------------------------------------------------------
    def apply_preset(
        self,
        name: str,
        isp_a: Optional[int] = None,
        isp_b: Optional[int] = None,
    ) -> int:
        """Degrade a pair selection with a named regime; returns pairs set.

        ``"ideal"`` restores the selection instead.  Updates
        :attr:`regime` to the preset name (or ``"ideal"`` once nothing
        is degraded).
        """
        params = link_preset(name)
        if params.ideal:
            return self.restore(isp_a, isp_b)
        touched = self.degrade(params, isp_a, isp_b)
        self.regime = name
        return touched
