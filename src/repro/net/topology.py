"""Overlay neighbor graph.

The tracker bootstraps each joining peer "with a list of neighbors with
close playback positions" (Section V); the default neighbor count is 30.
:class:`OverlayGraph` maintains the undirected neighbor relation under
churn, and :func:`rank_candidates` implements the tracker's proximity
ranking (same video, close playback position, seeds always eligible).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

import numpy as np

__all__ = ["OverlayGraph", "rank_candidates"]


def rank_candidates(
    position_of: Callable[[int], Optional[float]],
    joiner_position: float,
    candidates: Iterable[int],
    rng: Optional[np.random.Generator] = None,
    seed_rank: str = "first",
) -> List[int]:
    """Order ``candidates`` by closeness of playback position to the joiner.

    ``position_of`` returns a candidate's playback position, or ``None``
    for seed peers, which have no position.  ``seed_rank`` decides how
    seeds compete:

    * ``"first"`` — seeds rank ahead of all watchers (distance 0): every
      joiner is guaranteed the seeds if its neighbor budget allows.
    * ``"random"`` — seeds draw a uniform random rank among the watcher
      distances, modelling a tracker that ranks purely by advertised
      playback position (seeds advertise none).  With more candidates
      than neighbor slots, a joiner may then miss some (or all) seeds —
      the regime in which ISP-aware source selection actually matters.

    Ties are broken randomly when ``rng`` is given, else by peer id for
    determinism.
    """
    if seed_rank not in ("first", "random"):
        raise ValueError(f"unknown seed_rank {seed_rank!r}")
    candidates = list(candidates)
    watcher_distances = []
    positions = {}
    for peer in candidates:
        pos = position_of(peer)
        positions[peer] = pos
        if pos is not None:
            watcher_distances.append(abs(pos - joiner_position))
    max_distance = max(watcher_distances, default=1.0)
    keyed = []
    for peer in candidates:
        pos = positions[peer]
        if pos is None:
            if seed_rank == "first":
                distance = 0.0
            else:
                draw = rng.random() if rng is not None else (peer % 997) / 997.0
                distance = draw * max_distance
        else:
            distance = abs(pos - joiner_position)
        tiebreak = rng.random() if rng is not None else float(peer)
        keyed.append((distance, tiebreak, peer))
    keyed.sort()
    return [peer for _, __, peer in keyed]


class OverlayGraph:
    """Undirected neighbor relation with a soft degree target.

    ``degree_target`` is the number of neighbors the tracker aims to give
    each peer (paper default 30).  Accepting a link may push an existing
    peer slightly above target; the graph never silently drops links —
    churn handles pruning, as in real mesh overlays.
    """

    def __init__(self, degree_target: int = 30) -> None:
        if degree_target < 1:
            raise ValueError(f"degree_target must be >= 1, got {degree_target!r}")
        self.degree_target = int(degree_target)
        self._adj: Dict[int, Set[int]] = {}
        # Sorted int64 neighbor arrays, built lazily and invalidated on
        # any link change — the columnar slot pipeline reads these once
        # per peer per slot instead of copying the neighbor set.
        self._adj_arrays: Dict[int, np.ndarray] = {}
        #: Monotone counter bumped on every link/node mutation; cheap
        #: cache key for derived per-peer structures (slot pipeline).
        self.version = 0
        #: Peers whose link set changed since the last
        #: :meth:`consume_dirty` — the peer-state store invalidates only
        #: these candidate entries instead of sweeping every peer.
        self._dirty: Set[int] = set()
        #: Nodes currently below the degree target, maintained
        #: incrementally so the refill pass can skip a full scan.
        self._deficient: Set[int] = set()

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, peer_id: int) -> None:
        """Register a peer with no neighbors yet (idempotent)."""
        if peer_id not in self._adj:
            self._adj[peer_id] = set()
            if self.degree_target > 0:
                self._deficient.add(peer_id)

    def remove_node(self, peer_id: int) -> Set[int]:
        """Remove a peer; returns the set of ex-neighbors that lost a link."""
        neighbors = self._adj.pop(peer_id, set())
        self._adj_arrays.pop(peer_id, None)
        self._dirty.add(peer_id)
        self._deficient.discard(peer_id)
        self.version += 1
        for other in neighbors:
            self._adj[other].discard(peer_id)
            self._adj_arrays.pop(other, None)
            self._dirty.add(other)
            if len(self._adj[other]) < self.degree_target:
                self._deficient.add(other)
        return neighbors

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def nodes(self) -> Set[int]:
        return set(self._adj)

    # ------------------------------------------------------------------
    # Link management
    # ------------------------------------------------------------------
    def connect(self, a: int, b: int) -> None:
        """Create the undirected link a—b (idempotent; self-links rejected)."""
        if a == b:
            raise ValueError(f"self-link on peer {a!r}")
        self.add_node(a)
        self.add_node(b)
        self._adj[a].add(b)
        self._adj[b].add(a)
        self._adj_arrays.pop(a, None)
        self._adj_arrays.pop(b, None)
        self._dirty.add(a)
        self._dirty.add(b)
        for node in (a, b):
            if len(self._adj[node]) >= self.degree_target:
                self._deficient.discard(node)
        self.version += 1

    def disconnect(self, a: int, b: int) -> None:
        """Remove the link a—b if present."""
        for node, other in ((a, b), (b, a)):
            if node in self._adj:
                self._adj[node].discard(other)
                self._adj_arrays.pop(node, None)
                self._dirty.add(node)
                if len(self._adj[node]) < self.degree_target:
                    self._deficient.add(node)
        self.version += 1

    def set_degree_target(self, target: int) -> None:
        """Change the soft degree target mid-run (scenario locality cap).

        Links are untouched (so cached candidate tables stay valid); the
        deficient set is recomputed against the new target, which is what
        drives the next refill pass — raising the target makes peers
        hungry for more neighbors, lowering it stops further bootstraps
        without pruning existing links (churn thins them out, as in real
        mesh overlays).
        """
        if target < 1:
            raise ValueError(f"degree_target must be >= 1, got {target!r}")
        if target == self.degree_target:
            return
        self.degree_target = int(target)
        self._deficient = {
            node for node, adj in self._adj.items() if len(adj) < target
        }

    def consume_dirty(self) -> Set[int]:
        """Drain and return peers whose link set changed since last call."""
        dirty = self._dirty
        self._dirty = set()
        return dirty

    def deficient_nodes(self) -> Set[int]:
        """Live set of nodes below the degree target (do not mutate)."""
        return self._deficient

    def neighbors(self, peer_id: int) -> Set[int]:
        """A copy of the neighbor set of ``peer_id``."""
        return set(self._adj.get(peer_id, set()))

    def neighbor_array(self, peer_id: int) -> np.ndarray:
        """Sorted int64 array of ``peer_id``'s neighbors (cached view).

        The array is rebuilt lazily after link changes and shared across
        calls — callers must not mutate it.
        """
        cached = self._adj_arrays.get(peer_id)
        if cached is None:
            members = self._adj.get(peer_id)
            if members:
                cached = np.fromiter(members, dtype=np.int64, count=len(members))
                cached.sort()
            else:
                cached = np.empty(0, dtype=np.int64)
            self._adj_arrays[peer_id] = cached
        return cached

    def degree(self, peer_id: int) -> int:
        return len(self._adj.get(peer_id, set()))

    def wants_more(self, peer_id: int) -> bool:
        """Whether the peer is below its neighbor target."""
        return self.degree(peer_id) < self.degree_target

    def deficit(self, peer_id: int) -> int:
        """How many neighbors the peer is short of its target."""
        return max(0, self.degree_target - self.degree(peer_id))

    # ------------------------------------------------------------------
    # Bulk wiring
    # ------------------------------------------------------------------
    def bootstrap(self, peer_id: int, ranked_candidates: List[int]) -> List[int]:
        """Connect ``peer_id`` to candidates in rank order until the target.

        Returns the list of newly connected neighbors.
        """
        self.add_node(peer_id)
        connected = []
        for other in ranked_candidates:
            if self.degree(peer_id) >= self.degree_target:
                break
            if other == peer_id or other in self._adj[peer_id]:
                continue
            self.connect(peer_id, other)
            connected.append(other)
        return connected

    def edge_count(self) -> int:
        """Number of undirected links."""
        return sum(len(s) for s in self._adj.values()) // 2
