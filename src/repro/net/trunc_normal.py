"""Truncated normal sampling for link costs.

Section V: "The inter-ISP link delay costs and intra-ISP link delay costs
follow truncated normal distributions.  The distribution of inter-ISP
link costs has a mean 5 and a standard variance 1, truncated within range
[1, 10].  The distribution of intra-ISP link cost has a mean 1 and a
standard variance 1, truncated within range [0, 2]."

Sampling uses the inverse-CDF method on the parent normal restricted to
``[low, high]`` so no rejection loop is needed and vectorized draws are
exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special, stats

__all__ = ["TruncatedNormal"]


@dataclass(frozen=True)
class TruncatedNormal:
    """A normal(mean, std) truncated to the closed interval [low, high].

    Example
    -------
    >>> dist = TruncatedNormal(mean=5.0, std=1.0, low=1.0, high=10.0)
    >>> samples = dist.sample(np.random.default_rng(0), size=1000)
    >>> bool((samples >= 1.0).all() and (samples <= 10.0).all())
    True
    """

    mean: float
    std: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ValueError(f"std must be positive, got {self.std!r}")
        if self.low >= self.high:
            raise ValueError(
                f"truncation range is empty: low={self.low!r} high={self.high!r}"
            )

    @property
    def _frozen(self) -> "stats.rv_continuous":
        a = (self.low - self.mean) / self.std
        b = (self.high - self.mean) / self.std
        return stats.truncnorm(a, b, loc=self.mean, scale=self.std)

    def _cdf_bounds(self) -> tuple:
        # Φ at the standardized truncation points; cached in __dict__
        # (legal on a frozen dataclass: bypasses __setattr__).
        cached = self.__dict__.get("_cdf_cache")
        if cached is None:
            a = (self.low - self.mean) / self.std
            b = (self.high - self.mean) / self.std
            cached = (float(special.ndtr(a)), float(special.ndtr(b)))
            self.__dict__["_cdf_cache"] = cached
        return cached

    def sample(self, rng: np.random.Generator, size: int | tuple = 1) -> np.ndarray:
        """Draw samples via the inverse CDF of the truncated normal.

        Implemented directly with ``ndtr``/``ndtri`` (no per-call scipy
        distribution object — the cost model draws once per peer pair).
        """
        cdf_low, cdf_high = self._cdf_bounds()
        u = rng.random(size)
        z = special.ndtri(cdf_low + u * (cdf_high - cdf_low))
        samples = self.mean + self.std * np.asarray(z, dtype=float)
        return np.clip(samples, self.low, self.high)

    def sample_one(self, rng: np.random.Generator) -> float:
        """Draw a single float sample."""
        cdf_low, cdf_high = self._cdf_bounds()
        u = cdf_low + rng.random() * (cdf_high - cdf_low)
        value = self.mean + self.std * float(special.ndtri(u))
        return float(min(self.high, max(self.low, value)))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density at ``x`` (zero outside the truncation range)."""
        return np.asarray(self._frozen.pdf(x), dtype=float)

    def expected_value(self) -> float:
        """Mean of the truncated distribution (not the parent mean)."""
        return float(self._frozen.mean())
