"""Composable timed-event generators for the scenario engine.

A scenario's workload beyond its base population is declared as a list
of :class:`EventSpec` dataclasses (flash-crowd bursts, diurnal churn
waves, popularity drift, ISP price shocks, locality-cap changes, seeder
outages, capacity ramps).  Each spec *compiles* — deterministically,
from a dedicated named RNG stream — into a flat, trace-style list of
:class:`TimedEvent` records: plain ``(time, kind, payload)`` rows that
the :class:`~repro.scenarios.runner.ScenarioRunner` schedules on the
discrete-event simulator and applies to the
:class:`~repro.p2p.system.P2PSystem` at slot boundaries.

Two properties matter and are pinned by the property suite:

* **Determinism** — the same spec + seed compiles to the identical
  timeline (the compile step consumes the RNG in declaration order,
  and nothing at apply time draws randomness), so the same scenario
  replays byte-identically and all schedulers compared on it see the
  *same* workload.
* **Composability** — generators only emit rows; any mix of specs
  merges into one stably time-sorted trace, so new event families plug
  in without touching the runner loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, List, Optional, Tuple

import numpy as np

from ..net.linkmodel import LinkParams, link_preset
from ..p2p.config import SystemConfig
from ..vod.popularity import ZipfMandelbrot

__all__ = [
    "ArrivalRateChange",
    "CapacityRamp",
    "CostShock",
    "DiurnalWave",
    "EventSpec",
    "FlashCrowd",
    "LinkDegrade",
    "LinkRestore",
    "LocalityCap",
    "NewRelease",
    "PopularityRotate",
    "RemappedPopularity",
    "SeederOutage",
    "TimedEvent",
    "TraceArrivals",
    "event_from_dict",
    "EVENT_KINDS",
]


@dataclass(frozen=True)
class TimedEvent:
    """One compiled trace row: apply ``kind``/``payload`` at ``time``.

    The payload is a plain dict of JSON-serializable scalars, so a
    compiled timeline is directly comparable (the determinism property
    test asserts two compiles are ``==``) and dumpable.
    """

    time: float
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)


#: ``kind`` string → spec class, for YAML/JSON round trips.
EVENT_KINDS: Dict[str, type] = {}


def _register(cls: type) -> type:
    EVENT_KINDS[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class EventSpec:
    """Base class of every declarative event generator.

    ``time`` is absolute scenario time in seconds (t = 0 is scenario
    start, *including* any warm-up — events may land inside the warm-up
    window).  Subclasses set a class-level ``kind`` and implement
    :meth:`generate`.
    """

    kind: ClassVar[str] = ""

    time: float

    def validate(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time!r}")

    def generate(
        self, config: SystemConfig, rng: np.random.Generator
    ) -> List[TimedEvent]:
        """Compile this spec into trace rows (deterministic per rng state)."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """Serializable form: ``{"kind": ..., <fields>}`` minus defaults."""
        out: Dict[str, object] = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out


def event_from_dict(data: dict) -> EventSpec:
    """Rebuild an :class:`EventSpec` from its :meth:`~EventSpec.to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}"
        )
    spec = cls(**payload)
    spec.validate()
    return spec


# ----------------------------------------------------------------------
# Population events
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class FlashCrowd(EventSpec):
    """A burst of ``n_peers`` arrivals starting at ``time``.

    Arrivals are spread uniformly over ``over_seconds`` (0 = all at
    once); each samples a video from the catalog's Zipf-Mandelbrot law
    unless ``video_id`` pins the crowd to one title (the classic
    flash-crowd regime), an upload multiple from the configured range
    (overridable — a crowd of free-riders uses a low range), and an
    optional early departure.  Compiles into one ``peer-arrival`` row
    per peer — the trace-style expansion, so the workload is fully
    decided at compile time.
    """

    kind: ClassVar[str] = "flash-crowd"

    n_peers: int = 100
    over_seconds: float = 0.0
    video_id: Optional[int] = None
    upload_min: Optional[float] = None
    upload_max: Optional[float] = None
    early_departure_prob: float = 0.0

    def validate(self) -> None:
        super().validate()
        if self.n_peers < 1:
            raise ValueError(f"n_peers must be >= 1, got {self.n_peers!r}")
        if self.over_seconds < 0:
            raise ValueError("over_seconds must be >= 0")
        if not 0.0 <= self.early_departure_prob <= 1.0:
            raise ValueError("early_departure_prob must be in [0, 1]")

    def generate(
        self, config: SystemConfig, rng: np.random.Generator
    ) -> List[TimedEvent]:
        if self.video_id is not None and not 0 <= self.video_id < config.n_videos:
            raise ValueError(
                f"video_id {self.video_id!r} outside catalog "
                f"[0, {config.n_videos})"
            )
        lo = (
            config.peer_upload_min_multiple
            if self.upload_min is None
            else self.upload_min
        )
        hi = (
            config.peer_upload_max_multiple
            if self.upload_max is None
            else self.upload_max
        )
        popularity = (
            None
            if self.video_id is not None
            else ZipfMandelbrot(
                config.n_videos, alpha=config.zipf_alpha, q=config.zipf_q
            )
        )
        if self.over_seconds > 0:
            offsets = np.sort(rng.uniform(0.0, self.over_seconds, self.n_peers))
        else:
            offsets = np.zeros(self.n_peers)
        duration = config.video_duration_seconds
        rows: List[TimedEvent] = []
        for offset in offsets.tolist():
            t = self.time + offset
            video = (
                self.video_id
                if self.video_id is not None
                else popularity.sample(rng)
            )
            multiple = float(rng.uniform(lo, hi))
            departure: Optional[float] = None
            if self.early_departure_prob and rng.random() < self.early_departure_prob:
                departure = t + float(rng.uniform(0.0, duration))
            rows.append(
                TimedEvent(
                    time=t,
                    kind="peer-arrival",
                    payload={
                        "video_id": int(video),
                        "upload_multiple": multiple,
                        "departure_time": departure,
                    },
                )
            )
        return rows


@_register
@dataclass(frozen=True)
class ArrivalRateChange(EventSpec):
    """Step the Poisson arrival intensity to ``rate_per_s`` at ``time``."""

    kind: ClassVar[str] = "arrival-rate"

    rate_per_s: float = 1.0

    def validate(self) -> None:
        super().validate()
        if self.rate_per_s <= 0:
            raise ValueError(
                f"rate_per_s must be positive, got {self.rate_per_s!r}"
            )

    def generate(self, config, rng) -> List[TimedEvent]:
        return [
            TimedEvent(
                self.time, "set-arrival-rate", {"rate_per_s": self.rate_per_s}
            )
        ]


@_register
@dataclass(frozen=True)
class DiurnalWave(EventSpec):
    """Sinusoidal arrival-rate modulation over ``[time, time + duration)``.

    The rate is stepped every ``step_seconds`` (default: re-evaluated
    each slot) to ``base_rate_per_s · (1 + amplitude · sin(2π·t/period))``
    — the day/night churn wave of VoD traces, deterministic (no RNG).
    """

    kind: ClassVar[str] = "diurnal"

    duration: float = 120.0
    period_seconds: float = 60.0
    base_rate_per_s: float = 1.0
    amplitude: float = 0.8
    step_seconds: float = 10.0

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0 or self.period_seconds <= 0 or self.step_seconds <= 0:
            raise ValueError("duration, period_seconds and step_seconds must be > 0")
        if self.base_rate_per_s <= 0:
            raise ValueError("base_rate_per_s must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude!r}"
            )

    def generate(self, config, rng) -> List[TimedEvent]:
        rows: List[TimedEvent] = []
        n_steps = int(math.ceil(self.duration / self.step_seconds))
        for i in range(n_steps):
            t = self.time + i * self.step_seconds
            phase = 2.0 * math.pi * (i * self.step_seconds) / self.period_seconds
            rate = self.base_rate_per_s * (1.0 + self.amplitude * math.sin(phase))
            rows.append(
                TimedEvent(t, "set-arrival-rate", {"rate_per_s": float(rate)})
            )
        return rows


# ----------------------------------------------------------------------
# Popularity events
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class NewRelease(EventSpec):
    """``video_id`` becomes the most popular title at ``time``.

    Future arrivals sample from a popularity law where ``video_id`` has
    swapped probabilities with the currently hottest title; existing
    viewers are unaffected (they keep watching what they chose).
    """

    kind: ClassVar[str] = "new-release"

    video_id: int = 0

    def validate(self) -> None:
        super().validate()
        if self.video_id < 0:
            raise ValueError(f"video_id must be >= 0, got {self.video_id!r}")

    def generate(self, config, rng) -> List[TimedEvent]:
        if not 0 <= self.video_id < config.n_videos:
            raise ValueError(
                f"video_id {self.video_id!r} outside catalog "
                f"[0, {config.n_videos})"
            )
        return [
            TimedEvent(self.time, "promote-video", {"video_id": self.video_id})
        ]


@_register
@dataclass(frozen=True)
class PopularityRotate(EventSpec):
    """Rotate every title's rank by ``rotation`` places (popularity drift)."""

    kind: ClassVar[str] = "popularity-rotate"

    rotation: int = 1

    def generate(self, config, rng) -> List[TimedEvent]:
        return [
            TimedEvent(
                self.time, "rotate-popularity", {"rotation": int(self.rotation)}
            )
        ]


# ----------------------------------------------------------------------
# ISP regime events
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class CostShock(EventSpec):
    """Multiply link prices by ``factor`` at ``time``.

    ``isp_a``/``isp_b`` both ``None`` shocks every cross-ISP pair (a
    global transit-price change); naming a pair shocks just that pair
    (``isp_a == isp_b``: that ISP's intra-ISP prices — a degraded or
    upgraded access network).  Shocks compose multiplicatively and
    consume no randomness: cached pair costs jump in place.
    """

    kind: ClassVar[str] = "cost-shock"

    factor: float = 2.0
    isp_a: Optional[int] = None
    isp_b: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor!r}")
        if (self.isp_a is None) != (self.isp_b is None):
            raise ValueError("give both isp_a and isp_b, or neither")

    def generate(self, config, rng) -> List[TimedEvent]:
        if self.isp_a is not None and not (
            0 <= self.isp_a < config.n_isps and 0 <= self.isp_b < config.n_isps
        ):
            raise ValueError(
                f"ISP pair ({self.isp_a}, {self.isp_b}) outside "
                f"[0, {config.n_isps})"
            )
        return [
            TimedEvent(
                self.time,
                "cost-shock",
                {
                    "factor": float(self.factor),
                    "isp_a": self.isp_a,
                    "isp_b": self.isp_b,
                },
            )
        ]


@_register
@dataclass(frozen=True)
class LocalityCap(EventSpec):
    """Change the overlay's soft neighbor-degree target at ``time``."""

    kind: ClassVar[str] = "locality-cap"

    neighbor_target: int = 8

    def validate(self) -> None:
        super().validate()
        if self.neighbor_target < 1:
            raise ValueError(
                f"neighbor_target must be >= 1, got {self.neighbor_target!r}"
            )

    def generate(self, config, rng) -> List[TimedEvent]:
        return [
            TimedEvent(
                self.time,
                "set-neighbor-target",
                {"target": int(self.neighbor_target)},
            )
        ]


# ----------------------------------------------------------------------
# Capacity events
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class SeederOutage(EventSpec):
    """Matching seeds lose all upload capacity for ``duration`` seconds.

    The selector intersects ``video_id`` (``None`` = any video),
    ``isp`` (``None`` = any ISP) and ``fraction`` (the first
    ``ceil(fraction · k)`` matching seeds in id order — deterministic).
    Seeds stay online (their buffers still advertise chunks, as a
    crashed-but-tracked CDN node would) but cannot upload; recovery
    restores each survivor's original capacity.
    """

    kind: ClassVar[str] = "seeder-outage"

    duration: float = 30.0
    video_id: Optional[int] = None
    isp: Optional[int] = None
    fraction: float = 1.0

    def validate(self) -> None:
        super().validate()
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration!r}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction!r}"
            )

    def generate(self, config, rng) -> List[TimedEvent]:
        selector = {
            "video_id": self.video_id,
            "isp": self.isp,
            "fraction": float(self.fraction),
        }
        return [
            TimedEvent(self.time, "seed-outage", dict(selector)),
            TimedEvent(
                self.time + self.duration, "seed-recovery", dict(selector)
            ),
        ]


@_register
@dataclass(frozen=True)
class CapacityRamp(EventSpec):
    """Multiply upload budgets by ``factor`` at ``time``.

    ``target`` picks who ramps: ``"watchers"`` (non-seeds), ``"seeds"``
    or ``"all"``.  Factors compose across ramp events, so a staged
    heterogeneity ramp is a sequence of these.
    """

    kind: ClassVar[str] = "capacity-ramp"

    factor: float = 1.0
    target: str = "watchers"

    def validate(self) -> None:
        super().validate()
        if self.factor < 0:
            raise ValueError(f"factor must be >= 0, got {self.factor!r}")
        if self.target not in ("watchers", "seeds", "all"):
            raise ValueError(
                f"target must be watchers|seeds|all, got {self.target!r}"
            )

    def generate(self, config, rng) -> List[TimedEvent]:
        return [
            TimedEvent(
                self.time,
                "capacity-scale",
                {"factor": float(self.factor), "target": self.target},
            )
        ]


# ----------------------------------------------------------------------
# Link-condition events (lossy-network fault injection)
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class LinkDegrade(EventSpec):
    """Install lossy link conditions on a pair selection at ``time``.

    Either name a regime ``preset`` (``delay10``, ``loss10``,
    ``loss30-delay50`` — the netem matrix in
    :data:`repro.net.linkmodel.REGIME_PRESETS`) or give explicit
    netem-style knobs.  The selection follows
    :meth:`~repro.net.linkmodel.LinkConditions.degrade`: no ISPs named →
    every inter-ISP pair (a degraded backbone); ``isp_a`` alone → every
    link touching that ISP, intra included (a flaky access network);
    both → exactly that pair.  Applying consumes no compile-time
    randomness; loss/jitter draws happen at transfer time from the
    system's dedicated ``link-conditions`` stream.
    """

    kind: ClassVar[str] = "link-degrade"

    preset: Optional[str] = None
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    loss_rate: float = 0.0
    bandwidth_cap: Optional[int] = None
    isp_a: Optional[int] = None
    isp_b: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        if self.isp_a is None and self.isp_b is not None:
            raise ValueError("give isp_a when giving isp_b")
        explicit = (
            self.delay_ms or self.jitter_ms or self.loss_rate
            or self.bandwidth_cap is not None
        )
        if self.preset is not None:
            link_preset(self.preset)  # raises on unknown names
            if explicit:
                raise ValueError(
                    "give a preset or explicit link knobs, not both"
                )
        else:
            params = self._params()
            params.validate()
            if params.ideal:
                raise ValueError(
                    "explicit conditions are ideal; use LinkRestore instead"
                )

    def _params(self) -> LinkParams:
        return LinkParams(
            delay_ms=self.delay_ms,
            jitter_ms=self.jitter_ms,
            loss_rate=self.loss_rate,
            bandwidth_cap=self.bandwidth_cap,
        )

    def generate(self, config, rng) -> List[TimedEvent]:
        for isp in (self.isp_a, self.isp_b):
            if isp is not None and not 0 <= isp < config.n_isps:
                raise ValueError(
                    f"ISP {isp!r} outside [0, {config.n_isps})"
                )
        payload: Dict[str, object] = {
            "isp_a": self.isp_a, "isp_b": self.isp_b,
        }
        if self.preset is not None:
            payload["preset"] = self.preset
        else:
            payload.update(
                delay_ms=float(self.delay_ms),
                jitter_ms=float(self.jitter_ms),
                loss_rate=float(self.loss_rate),
                bandwidth_cap=self.bandwidth_cap,
            )
        return [TimedEvent(self.time, "link-degrade", payload)]


@_register
@dataclass(frozen=True)
class LinkRestore(EventSpec):
    """Reset a pair selection to ideal link conditions at ``time``.

    Selection rules match :class:`LinkDegrade`; naming no ISPs restores
    the whole table (the end of an incident window).
    """

    kind: ClassVar[str] = "link-restore"

    isp_a: Optional[int] = None
    isp_b: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        if self.isp_a is None and self.isp_b is not None:
            raise ValueError("give isp_a when giving isp_b")

    def generate(self, config, rng) -> List[TimedEvent]:
        for isp in (self.isp_a, self.isp_b):
            if isp is not None and not 0 <= isp < config.n_isps:
                raise ValueError(
                    f"ISP {isp!r} outside [0, {config.n_isps})"
                )
        return [
            TimedEvent(
                self.time,
                "link-restore",
                {"isp_a": self.isp_a, "isp_b": self.isp_b},
            )
        ]


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class TraceArrivals(EventSpec):
    """Replay explicit VoD arrival rows imported from a real trace.

    ``arrivals`` is a tuple of ``(offset_seconds, video_id)`` rows —
    the output of ``repro scenario import-trace`` — each compiling into
    one ``peer-arrival`` trace row at ``time + offset``.  Upload
    multiples are not usually in arrival logs, so each row draws one
    from ``[upload_min, upload_max]`` (defaulting to the config's
    range) off the compile stream, in row order — deterministic per
    (spec, seed) like every other generator.
    """

    kind: ClassVar[str] = "trace-arrivals"

    arrivals: Tuple[Tuple[float, int], ...] = ()
    upload_min: Optional[float] = None
    upload_max: Optional[float] = None

    def __post_init__(self) -> None:
        # Normalize JSON round-trip lists back into tuples so two equal
        # specs compare equal however they were constructed.
        object.__setattr__(
            self,
            "arrivals",
            tuple((float(t), int(v)) for t, v in self.arrivals),
        )

    def validate(self) -> None:
        super().validate()
        if not self.arrivals:
            raise ValueError("trace has no arrival rows")
        if any(t < 0 for t, _ in self.arrivals):
            raise ValueError("trace arrival offsets must be >= 0")
        if (self.upload_min is None) != (self.upload_max is None):
            raise ValueError("give both upload_min and upload_max, or neither")
        if self.upload_min is not None and self.upload_min > self.upload_max:
            raise ValueError("upload multiple range is inverted")

    def generate(self, config, rng) -> List[TimedEvent]:
        lo = (
            config.peer_upload_min_multiple
            if self.upload_min is None
            else self.upload_min
        )
        hi = (
            config.peer_upload_max_multiple
            if self.upload_max is None
            else self.upload_max
        )
        rows: List[TimedEvent] = []
        for offset, video in self.arrivals:
            if not 0 <= video < config.n_videos:
                raise ValueError(
                    f"trace video_id {video!r} outside catalog "
                    f"[0, {config.n_videos})"
                )
            rows.append(
                TimedEvent(
                    time=self.time + offset,
                    kind="peer-arrival",
                    payload={
                        "video_id": int(video),
                        "upload_multiple": float(rng.uniform(lo, hi)),
                        "departure_time": None,
                    },
                )
            )
        return rows


# ----------------------------------------------------------------------
# Popularity remapping
# ----------------------------------------------------------------------
class RemappedPopularity:
    """A popularity law with its item ids permuted.

    Wraps any selector exposing ``n`` / ``sample`` / ``sample_many`` /
    ``pmf`` and relabels what it returns: sampling draws from the base
    law (consuming exactly the base's randomness — one uniform for
    Zipf-Mandelbrot, so swapping a remap in never shifts the arrival
    stream) and maps the result through a permutation.  Wrapping an
    already-remapped law composes the permutations.
    """

    def __init__(self, base, permutation) -> None:
        perm = np.asarray(permutation, dtype=np.int64)
        n = int(base.n)
        if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
            raise ValueError(
                f"permutation must rearrange all {n} item ids exactly once"
            )
        if isinstance(base, RemappedPopularity):
            # Flatten: composing permutations keeps the wrapper chain at
            # depth one however many drift events a scenario applies.
            perm = perm[base._perm]
            base = base.base
        self.base = base
        self.n = n
        self._perm = perm

    def sample(self, rng: np.random.Generator) -> int:
        return int(self._perm[self.base.sample(rng)])

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._perm[self.base.sample_many(rng, size)]

    def pmf(self) -> np.ndarray:
        out = np.empty(self.n, dtype=float)
        out[self._perm] = self.base.pmf()
        return out

    def probability(self, item: int) -> float:
        if not 0 <= item < self.n:
            raise IndexError(f"item {item!r} out of range [0, {self.n})")
        return float(self.pmf()[item])

    @staticmethod
    def promote(base, video_id: int) -> "RemappedPopularity":
        """``video_id`` swaps probabilities with the current hottest item."""
        pmf = base.pmf()
        if not 0 <= video_id < len(pmf):
            raise IndexError(
                f"video {video_id!r} out of range [0, {len(pmf)})"
            )
        top = int(np.argmax(pmf))
        perm = np.arange(len(pmf), dtype=np.int64)
        perm[top], perm[video_id] = video_id, top
        return RemappedPopularity(base, perm)

    @staticmethod
    def rotate(base, rotation: int) -> "RemappedPopularity":
        """Every item takes the popularity of its ``rotation``-th neighbor."""
        n = int(base.n)
        perm = (np.arange(n, dtype=np.int64) + int(rotation)) % n
        return RemappedPopularity(base, perm)
