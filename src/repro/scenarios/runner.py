"""Scenario execution: compiled timelines driving the P2P system.

:class:`ScenarioRunner` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
into results: it compiles the spec's timeline once (identical for every
scheduler — the paper's same-workload methodology), schedules the trace
rows as discrete events on a :class:`~repro.sim.engine.Simulator`, and
interleaves them with the slot loop of a fresh
:class:`~repro.p2p.system.P2PSystem` per scheduler.  Events due by a
slot boundary are applied *before* that slot runs — the same delay rule
the paper uses for mid-slot joiners, so a running auction is never
disturbed mid-flight.

The per-scheduler collectors render into one deterministic text report
(:meth:`ScenarioResult.render_report`) via :mod:`repro.metrics.report`,
comparable across solvers and stable across machines (no wall-clock
content), which the CLI archives under ``results/``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..metrics.collectors import MetricsCollector
from ..metrics.report import (
    comparison_table,
    qoe_block,
    render_table,
    series_block,
)
from ..net.linkmodel import LinkParams
from ..obs.rollup import isp_rollup_block
from ..p2p.system import P2PSystem
from ..sim.engine import Simulator
from .events import RemappedPopularity, TimedEvent
from .spec import ScenarioSpec, compile_timeline

__all__ = ["ScenarioResult", "ScenarioRun", "ScenarioRunner", "apply_event"]


@dataclass
class ScenarioRun:
    """One scheduler's outcome on the scenario's workload."""

    scheduler: str
    collector: MetricsCollector
    totals: Dict[str, float]
    n_peers_final: int
    arrivals: int
    departures: int
    #: Mean join→first-chunk delay over peers that received anything,
    #: and how many peers that covers (QoE block; (0.0, 0) pre-delivery).
    startup_delay_s: float = 0.0
    startup_delay_peers: int = 0
    #: Per-ISP accumulator (obs/rollup.py), present only when the
    #: scenario's config opts in via ``isp_rollup``; None otherwise so
    #: pre-existing reports render unchanged.
    rollup: Optional[object] = None
    #: Startup delay broken down by the requester's home ISP
    #: (``{isp: (mean_s, n_peers)}``); empty unless the rollup is on.
    startup_by_isp: Dict[int, Tuple[float, int]] = field(default_factory=dict)


@dataclass
class ScenarioResult:
    """Everything a scenario run produced, for every scheduler."""

    spec: ScenarioSpec
    seed: int
    timeline: List[TimedEvent]
    runs: Dict[str, ScenarioRun] = field(default_factory=dict)

    def render_report(self) -> str:
        """Deterministic text report (archived under ``results/``)."""
        spec = self.spec
        lines = [
            f"Scenario {spec.name!r} — {spec.description}",
            f"  scale={spec.scale} seed={self.seed} "
            f"peers₀={spec.n_static_peers} churn={spec.churn} "
            f"duration={spec.duration_seconds:.0f}s "
            f"(warmup {spec.warmup_seconds:.0f}s)",
        ]
        counts = Counter(row.kind for row in self.timeline)
        if counts:
            summary = ", ".join(
                f"{kind}×{n}" for kind, n in sorted(counts.items())
            )
            lines.append(f"  timeline: {len(self.timeline)} events ({summary})")
            regime = [
                row for row in self.timeline if row.kind != "peer-arrival"
            ]
            for row in regime[:12]:
                payload = ", ".join(
                    f"{k}={v}" for k, v in row.payload.items() if v is not None
                )
                lines.append(f"    t={row.time:7.1f}s  {row.kind}  {payload}")
            if len(regime) > 12:
                lines.append(f"    … {len(regime) - 12} more regime events")
        else:
            lines.append("  timeline: no events (base workload only)")
        lines.append("")

        per_metric = {
            "welfare": lambda c: c.welfare_series(),
            "inter-ISP": lambda c: c.inter_isp_series(),
            "miss rate": lambda c: c.miss_rate_series(),
        }
        for label, getter in per_metric.items():
            lines.append(
                comparison_table(
                    {
                        name: getter(run.collector)
                        for name, run in self.runs.items()
                    },
                    label,
                )
            )
            lines.append("")
        first = next(iter(self.runs.values()))
        lines.append(
            series_block(
                first.collector.peers_series(),
                f"peers online ({first.scheduler} run)",
            )
        )
        lines.append("")
        # The per-regime QoE block appears only for lossy scenarios:
        # ideal-conditions reports (everything archived before the link
        # model existed) must stay byte-identical.
        lossy = any(
            row.kind in ("link-degrade", "link-restore")
            for row in self.timeline
        ) or any(
            s.link_regime != "ideal" or s.transfers_failed or s.retry_attempts
            for run in self.runs.values()
            for s in run.collector.slots
        )
        if lossy:
            startup_by_isp = {
                name: run.startup_by_isp
                for name, run in self.runs.items()
                if run.startup_by_isp
            }
            lines.append(
                qoe_block(
                    {
                        name: run.collector
                        for name, run in self.runs.items()
                    },
                    {
                        name: (run.startup_delay_s, run.startup_delay_peers)
                        for name, run in self.runs.items()
                    },
                    startup_by_isp or None,
                )
            )
            lines.append("")
        rollups = {
            name: run.rollup
            for name, run in self.runs.items()
            if run.rollup is not None
        }
        if rollups:
            lines.append(
                isp_rollup_block(
                    rollups,
                    {
                        name: run.startup_by_isp
                        for name, run in self.runs.items()
                        if run.startup_by_isp
                    }
                    or None,
                )
            )
            lines.append("")
        headers = [
            "scheduler", "welfare_total", "served", "inter_isp_frac",
            "miss_rate", "peers_end", "arrivals", "departures",
        ]
        rows = [
            [
                name,
                run.totals["welfare_total"],
                int(run.totals["served_total"]),
                run.totals["inter_isp_fraction"],
                run.totals["miss_rate"],
                run.n_peers_final,
                run.arrivals,
                run.departures,
            ]
            for name, run in self.runs.items()
        ]
        lines.append(render_table(headers, rows))
        return "\n".join(lines)


class ScenarioRunner:
    """Compile a spec for one seed and run it under each scheduler."""

    def __init__(self, spec: ScenarioSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = int(seed)
        #: The compiled trace — identical for every scheduler.
        #: (compile_timeline validates the spec.)
        self.timeline: List[TimedEvent] = compile_timeline(spec, self.seed)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, schedulers: Optional[Tuple[str, ...]] = None) -> ScenarioResult:
        """Run the scenario once per scheduler; returns all outcomes."""
        result = ScenarioResult(
            spec=self.spec, seed=self.seed, timeline=self.timeline
        )
        for name in schedulers or self.spec.schedulers:
            system = self.run_one(name)
            startup_s, startup_n = system.startup_delay_stats()
            result.runs[name] = ScenarioRun(
                scheduler=name,
                collector=system.collector,
                totals=system.collector.totals(),
                n_peers_final=len(system.peers),
                arrivals=system.arrivals,
                departures=system.departures,
                startup_delay_s=startup_s,
                startup_delay_peers=startup_n,
                rollup=system.isp_rollup,
                startup_by_isp=(
                    system.startup_delay_by_isp()
                    if system.isp_rollup is not None
                    else {}
                ),
            )
        return result

    def run_one(self, scheduler: str) -> P2PSystem:
        """Drive one system through the full timeline; returns it.

        The trace rows are scheduled on a discrete-event simulator;
        before each slot, every event due by the boundary fires (in
        time order, ties in declaration order) against the system.
        """
        spec = self.spec
        config = spec.system_config(self.seed).with_scheduler(scheduler)
        system = P2PSystem(config)
        if spec.n_static_peers:
            system.populate_static(spec.n_static_peers, stagger=spec.stagger)
        sim = Simulator(start_time=0.0)
        outage_caps: Dict[int, List[int]] = {}
        for row in self.timeline:
            sim.schedule_at(
                row.time,
                (lambda r: lambda: self._apply_event(system, r, outage_caps))(
                    row
                ),
            )
        horizon = spec.horizon_seconds
        warmup = spec.warmup_seconds
        cleared = warmup <= 0
        while system.now < horizon - 1e-9:
            sim.run(until=system.now)
            system.run_slot(churn=spec.churn, remove_finished=spec.churn)
            if not cleared and system.now >= warmup - 1e-9:
                system.collector.slots.clear()
                cleared = True
        return system

    # ------------------------------------------------------------------
    # Event interpretation
    # ------------------------------------------------------------------
    def _apply_event(
        self, system: P2PSystem, row: TimedEvent, outage_caps: Dict[int, List[int]]
    ) -> None:
        apply_event(system, row, outage_caps)


def apply_event(
    system: P2PSystem, row: TimedEvent, outage_caps: Dict[int, List[int]]
) -> None:
    """Apply one compiled trace row to a running system.

    ``outage_caps`` is the caller-held memory of seed capacities taken
    down by ``seed-outage`` rows (recovery restores from it).  Exposed
    at module level so other drivers — the benchmark harness's scenario
    rows — can interpret timelines without a full
    :class:`ScenarioRunner`.
    """
    payload = row.payload
    if row.kind == "peer-arrival":
        startup = (
            system.config.startup_delay_slots * system.config.slot_seconds
        )
        system.add_watching_peer(
            video_id=int(payload["video_id"]),
            upload_multiple=float(payload["upload_multiple"]),
            start_position=0,
            start_time=system.now + startup,
            departure_time=payload.get("departure_time"),
        )
        system.arrivals += 1
    elif row.kind == "set-arrival-rate":
        system.set_arrival_rate(float(payload["rate_per_s"]))
    elif row.kind == "promote-video":
        system.set_popularity(
            RemappedPopularity.promote(
                system.popularity, int(payload["video_id"])
            )
        )
    elif row.kind == "rotate-popularity":
        system.set_popularity(
            RemappedPopularity.rotate(
                system.popularity, int(payload["rotation"])
            )
        )
    elif row.kind == "cost-shock":
        if payload.get("isp_a") is None:
            system.scale_inter_isp_costs(float(payload["factor"]))
        else:
            a, b = int(payload["isp_a"]), int(payload["isp_b"])
            current = system.costs.isp_pair_scale(a, b)
            system.set_isp_pair_cost_scale(
                a, b, current * float(payload["factor"])
            )
    elif row.kind == "set-neighbor-target":
        system.set_neighbor_target(int(payload["target"]))
    elif row.kind == "seed-outage":
        victims = _select_seeds(system, payload)
        updates = {}
        for peer in victims:
            entry = outage_caps.get(peer.peer_id)
            if entry is None:
                outage_caps[peer.peer_id] = [1, peer.upload_capacity_chunks]
            else:
                # Overlapping outage windows nest: the seed only comes
                # back when every outage holding it has recovered.
                entry[0] += 1
            updates[peer.peer_id] = 0
        system.set_upload_capacities(updates)
    elif row.kind == "seed-recovery":
        victims = _select_seeds(system, payload)
        updates = {}
        for peer in victims:
            entry = outage_caps.get(peer.peer_id)
            if entry is None:
                continue
            entry[0] -= 1
            if entry[0] == 0:
                updates[peer.peer_id] = entry[1]
                del outage_caps[peer.peer_id]
        system.set_upload_capacities(updates)
    elif row.kind == "link-degrade":
        isp_a = payload.get("isp_a")
        isp_b = payload.get("isp_b")
        preset = payload.get("preset")
        if preset is not None:
            system.apply_link_preset(str(preset), isp_a, isp_b)
        else:
            system.set_link_conditions(
                LinkParams(
                    delay_ms=float(payload.get("delay_ms", 0.0)),
                    jitter_ms=float(payload.get("jitter_ms", 0.0)),
                    loss_rate=float(payload.get("loss_rate", 0.0)),
                    bandwidth_cap=payload.get("bandwidth_cap"),
                ),
                isp_a,
                isp_b,
            )
    elif row.kind == "link-restore":
        system.reset_link_conditions(
            payload.get("isp_a"), payload.get("isp_b")
        )
    elif row.kind == "capacity-scale":
        target = payload["target"]
        factor = float(payload["factor"])
        if target == "all":
            ids = None
        elif target == "seeds":
            ids = [p.peer_id for p in system.peers.values() if p.is_seed]
        else:
            ids = [
                p.peer_id for p in system.peers.values() if not p.is_seed
            ]
        system.scale_upload_capacities(factor, ids)
        if target in ("seeds", "all"):
            # Seeds currently downed by an outage sit at capacity 0, so
            # the live scaling skipped them — compound the ramp into
            # their stored pre-outage capacities instead, so recovery
            # brings them back into the ramped regime.
            for entry in outage_caps.values():
                if factor > 0 and entry[1] > 0:
                    entry[1] = max(1, int(round(entry[1] * factor)))
                else:
                    entry[1] = 0
    else:
        raise ValueError(f"unknown timeline event kind {row.kind!r}")


def _select_seeds(system: P2PSystem, payload: Dict[str, object]) -> List:
    """Seeds matching the outage selector, deterministic id order."""
    video_id = payload.get("video_id")
    isp = payload.get("isp")
    matching = [
        peer
        for _, peer in sorted(system.peers.items())
        if peer.is_seed
        and (video_id is None or peer.video.video_id == video_id)
        and (isp is None or peer.isp == isp)
    ]
    fraction = float(payload.get("fraction", 1.0))
    if fraction >= 1.0 or not matching:
        return matching
    keep = max(1, math.ceil(len(matching) * fraction))
    return matching[:keep]
