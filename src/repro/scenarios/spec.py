"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the complete, serializable description of one
workload: which :class:`~repro.p2p.config.SystemConfig` preset it runs
on (plus overrides), the base population, the run horizon, which
schedulers are compared, and the list of
:class:`~repro.scenarios.events.EventSpec` generators that shape the
timeline.  Specs are plain frozen dataclasses that round-trip through
dicts (and thus YAML/JSON via :mod:`repro.scenarios.loader`), so a
scenario can live in a file next to an experiment as easily as in the
built-in catalog.

The spec itself contains no randomness and no behaviour — compiling it
for a seed (:func:`compile_timeline`) produces the trace-style event
list, and :class:`~repro.scenarios.runner.ScenarioRunner` executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..p2p.config import SystemConfig
from ..sim.rng import RngRegistry
from .events import EventSpec, TimedEvent, event_from_dict

__all__ = ["ScenarioSpec", "compile_timeline", "spec_from_dict", "spec_to_dict"]

_SCALES = ("tiny", "bench", "paper")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to reproduce one named workload.

    Parameters
    ----------
    name, description:
        Identity and one-line summary (the catalog/CLI listing).
    scale:
        Which :class:`SystemConfig` preset to build on — ``tiny``,
        ``bench`` or ``paper``.
    config_overrides:
        Keyword overrides applied to the preset (sorted key order; a
        dict is accepted and normalized).
    schedulers:
        Schedulers compared on the identical workload (the paper's
        methodology: same seed → same arrivals/costs/choices).
    n_static_peers, stagger:
        Base population created at t = 0 (0 = the network starts empty
        and churn/events build it); ``stagger`` as in
        :meth:`P2PSystem.populate_static`.
    duration_seconds, warmup_seconds:
        Measured horizon and a discarded lead-in.  Event times are
        absolute from scenario start (warm-up included).
    churn:
        Whether background Poisson arrivals/departures run.
    events:
        The declarative timeline generators, compiled in order.
    """

    name: str
    description: str = ""
    scale: str = "bench"
    config_overrides: Tuple[Tuple[str, object], ...] = ()
    schedulers: Tuple[str, ...] = ("auction", "locality")
    n_static_peers: int = 0
    stagger: bool = True
    duration_seconds: float = 100.0
    warmup_seconds: float = 0.0
    churn: bool = False
    events: Tuple[EventSpec, ...] = ()

    def __post_init__(self) -> None:
        # Normalize mapping-ish fields so specs are hashable and two
        # equal scenarios compare equal regardless of construction.
        if isinstance(self.config_overrides, dict):
            object.__setattr__(
                self,
                "config_overrides",
                tuple(sorted(self.config_overrides.items())),
            )
        else:
            object.__setattr__(
                self, "config_overrides", tuple(self.config_overrides)
            )
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------
    # Validation / derived views
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on an inconsistent spec."""
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.scale not in _SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r} (use one of {_SCALES})"
            )
        if not self.schedulers:
            raise ValueError("need at least one scheduler")
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.warmup_seconds < 0:
            raise ValueError("warmup_seconds must be >= 0")
        if self.n_static_peers < 0:
            raise ValueError("n_static_peers must be >= 0")
        for event in self.events:
            event.validate()
        # Building the config applies the overrides — unknown keys or
        # inconsistent values surface here, not mid-run.
        self.system_config(seed=0)

    def overrides_dict(self) -> Dict[str, object]:
        return dict(self.config_overrides)

    def system_config(self, seed: int) -> SystemConfig:
        """The :class:`SystemConfig` this scenario runs on."""
        overrides = self.overrides_dict()
        if self.scale == "paper":
            return SystemConfig.paper(seed=seed, **overrides)
        if self.scale == "tiny":
            return SystemConfig.tiny(seed=seed, **overrides)
        return SystemConfig.bench(seed=seed, **overrides)

    @property
    def horizon_seconds(self) -> float:
        """Total simulated time: warm-up plus measured duration."""
        return self.warmup_seconds + self.duration_seconds

    def abridged(
        self,
        duration_seconds: float,
        schedulers: Optional[Tuple[str, ...]] = None,
    ) -> "ScenarioSpec":
        """A shortened copy for smoke tests: the measured horizon shrinks,
        the warm-up is dropped, and events beyond the new horizon simply
        never fire."""
        return replace(
            self,
            duration_seconds=duration_seconds,
            warmup_seconds=0.0,
            schedulers=self.schedulers if schedulers is None else schedulers,
        )


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_timeline(spec: ScenarioSpec, seed: int) -> List[TimedEvent]:
    """Compile the spec's event generators into one sorted trace.

    Each generator draws from the dedicated ``scenario-events`` stream
    of the run's root seed, consumed in declaration order — so the
    timeline is a pure function of (spec, seed), identical across the
    schedulers being compared, and the system's own streams (arrivals,
    costs, tracker) are untouched by however many events compile.
    The sort is stable: same-time events apply in declaration order.
    """
    spec.validate()
    rng = RngRegistry(seed).stream("scenario-events")
    config = spec.system_config(seed)
    rows: List[TimedEvent] = []
    for event in spec.events:
        rows.extend(event.generate(config, rng))
    rows.sort(key=lambda row: row.time)
    return rows


# ----------------------------------------------------------------------
# Dict round trip (the YAML/JSON surface)
# ----------------------------------------------------------------------
def spec_to_dict(spec: ScenarioSpec) -> dict:
    """Plain-data form of a spec (inverse of :func:`spec_from_dict`)."""
    return {
        "name": spec.name,
        "description": spec.description,
        "scale": spec.scale,
        "config_overrides": spec.overrides_dict(),
        "schedulers": list(spec.schedulers),
        "n_static_peers": spec.n_static_peers,
        "stagger": spec.stagger,
        "duration_seconds": spec.duration_seconds,
        "warmup_seconds": spec.warmup_seconds,
        "churn": spec.churn,
        "events": [event.to_dict() for event in spec.events],
    }


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Build and validate a spec from plain data (YAML/JSON payload)."""
    payload = dict(data)
    events = tuple(
        event_from_dict(event) for event in payload.pop("events", [])
    )
    overrides = payload.pop("config_overrides", {})
    schedulers = tuple(payload.pop("schedulers", ("auction", "locality")))
    unknown = set(payload) - {
        "name", "description", "scale", "n_static_peers", "stagger",
        "duration_seconds", "warmup_seconds", "churn",
    }
    if unknown:
        raise ValueError(f"unknown scenario fields: {sorted(unknown)}")
    spec = ScenarioSpec(
        events=events,
        config_overrides=overrides,
        schedulers=schedulers,
        **payload,
    )
    spec.validate()
    return spec
