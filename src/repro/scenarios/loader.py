"""Load and save scenario specs as YAML or JSON files.

The file format is exactly the dict form of
:func:`repro.scenarios.spec.spec_to_dict` — see any catalog entry via
``dump_scenario`` for a template.  YAML support is gated on PyYAML
being importable (it is an optional convenience; JSON always works).
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .spec import ScenarioSpec, spec_from_dict, spec_to_dict

__all__ = ["dump_scenario", "load_scenario"]

_YAML_SUFFIXES = (".yaml", ".yml")


def _yaml():
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise RuntimeError(
            "PyYAML is not installed; use a .json scenario file instead"
        ) from exc
    return yaml


def load_scenario(path: Union[str, pathlib.Path]) -> ScenarioSpec:
    """Read and validate a scenario spec from a ``.yaml``/``.yml``/``.json`` file."""
    path = pathlib.Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() in _YAML_SUFFIXES:
        data = _yaml().safe_load(text)
    elif path.suffix.lower() == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"unknown scenario file type {path.suffix!r} "
            "(use .yaml, .yml or .json)"
        )
    if not isinstance(data, dict):
        raise ValueError(f"scenario file {path} must hold one mapping")
    return spec_from_dict(data)


def dump_scenario(spec: ScenarioSpec, path: Union[str, pathlib.Path]) -> None:
    """Write ``spec`` to a YAML or JSON file (inverse of :func:`load_scenario`)."""
    path = pathlib.Path(path)
    data = spec_to_dict(spec)
    if path.suffix.lower() in _YAML_SUFFIXES:
        text = _yaml().safe_dump(data, sort_keys=False)
    elif path.suffix.lower() == ".json":
        text = json.dumps(data, indent=2) + "\n"
    else:
        raise ValueError(
            f"unknown scenario file type {path.suffix!r} "
            "(use .yaml, .yml or .json)"
        )
    path.write_text(text, encoding="utf-8")
