"""Declarative scenario engine: trace-style workloads over the P2P system.

Scenarios describe *regimes the paper never ran* — flash crowds,
diurnal churn waves, ISP transit-price shocks, popularity drift, seeder
outages, capacity ramps — as data: a :class:`ScenarioSpec` (YAML/JSON
round-trippable) holding composable :class:`EventSpec` generators that
compile deterministically into a trace of :class:`TimedEvent` rows, and
a :class:`ScenarioRunner` that schedules the trace on the sim engine
and drives one :class:`~repro.p2p.system.P2PSystem` per scheduler over
the identical workload.

Quickstart::

    from repro.scenarios import ScenarioRunner, build_scenario

    spec = build_scenario("flash-crowd", scale="tiny")
    result = ScenarioRunner(spec, seed=1).run()
    print(result.render_report())

or from the command line::

    python -m repro scenario list
    python -m repro scenario run flash-crowd --seed 1
"""

from .catalog import build_scenario, register_scenario, scenario_names
from .events import (
    EVENT_KINDS,
    ArrivalRateChange,
    CapacityRamp,
    CostShock,
    DiurnalWave,
    EventSpec,
    FlashCrowd,
    LinkDegrade,
    LinkRestore,
    LocalityCap,
    NewRelease,
    PopularityRotate,
    RemappedPopularity,
    SeederOutage,
    TimedEvent,
    TraceArrivals,
    event_from_dict,
)
from .loader import dump_scenario, load_scenario
from .runner import ScenarioResult, ScenarioRun, ScenarioRunner, apply_event
from .spec import ScenarioSpec, compile_timeline, spec_from_dict, spec_to_dict
from .trace import import_trace

__all__ = [
    "EVENT_KINDS",
    "ArrivalRateChange",
    "CapacityRamp",
    "CostShock",
    "DiurnalWave",
    "EventSpec",
    "FlashCrowd",
    "LinkDegrade",
    "LinkRestore",
    "LocalityCap",
    "NewRelease",
    "PopularityRotate",
    "RemappedPopularity",
    "ScenarioResult",
    "ScenarioRun",
    "ScenarioRunner",
    "ScenarioSpec",
    "SeederOutage",
    "TimedEvent",
    "TraceArrivals",
    "apply_event",
    "build_scenario",
    "compile_timeline",
    "dump_scenario",
    "event_from_dict",
    "import_trace",
    "load_scenario",
    "register_scenario",
    "scenario_names",
    "spec_from_dict",
    "spec_to_dict",
]
