"""VoD arrival-trace import: real logs → replayable scenario specs.

``repro scenario import-trace <file>`` converts an arrival log into a
:class:`~repro.scenarios.spec.ScenarioSpec` whose single
:class:`~repro.scenarios.events.TraceArrivals` generator replays the
logged arrivals as ``peer-arrival`` trace rows.  Two input shapes:

* **CSV** with a header naming the columns ``time``, ``peer``,
  ``video`` (any order; extra columns ignored) — the common export
  format of VoD session logs;
* **JSON**: a list of objects carrying the same three keys.

``time`` is the arrival offset in seconds from trace start, ``peer`` an
arbitrary per-session label (only used to break ties), ``video`` the
integer catalog id watched.  Rows are sorted by ``(time, peer)`` — the
deterministic ordering contract: however the log was shuffled on disk,
the same file always compiles to the same timeline, and peers arriving
in the same instant are admitted in label order.

Upload capacities are not usually logged, so each arrival draws an
upload multiple from the config's range at compile time — off the
``scenario-events`` stream, like every other generator.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import List, Tuple

from .events import TraceArrivals
from .spec import ScenarioSpec

__all__ = ["import_trace"]

_COLUMNS = ("time", "peer", "video")


def _parse_rows(path: Path) -> List[Tuple[float, str, int]]:
    """Read (time, peer, video) rows from a CSV or JSON trace file."""
    if path.suffix.lower() == ".json":
        data = json.loads(path.read_text())
        if not isinstance(data, list):
            raise ValueError(
                f"{path}: JSON trace must be a list of objects"
            )
        records = data
    else:
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or not set(_COLUMNS) <= set(
                name.strip() for name in reader.fieldnames
            ):
                raise ValueError(
                    f"{path}: CSV trace needs columns {_COLUMNS}, "
                    f"got {reader.fieldnames}"
                )
            records = [
                {key.strip(): value for key, value in row.items()}
                for row in reader
            ]
    rows: List[Tuple[float, str, int]] = []
    for i, record in enumerate(records):
        try:
            rows.append(
                (
                    float(record["time"]),
                    str(record["peer"]),
                    int(record["video"]),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"{path}: bad trace row {i}: {record!r}") from exc
    if not rows:
        raise ValueError(f"{path}: trace has no rows")
    return rows


def import_trace(
    path,
    name: str = "",
    scale: str = "bench",
    duration_seconds: float = 0.0,
    schedulers: Tuple[str, ...] = ("auction", "locality"),
) -> ScenarioSpec:
    """Convert an arrival log into a runnable :class:`ScenarioSpec`.

    The network starts empty and the trace's arrivals build it;
    ``duration_seconds`` defaults to the last arrival rounded up to the
    next slot plus a drain slot.  The returned spec is validated and
    serializable — ``dump_scenario`` writes it next to the experiment.
    """
    path = Path(path)
    rows = sorted(_parse_rows(path), key=lambda row: (row[0], row[1]))
    arrivals = tuple((time, video) for time, _, video in rows)
    if duration_seconds <= 0:
        # Slot length of the target preset: 10 s in every current one.
        last = arrivals[-1][0]
        duration_seconds = (int(last // 10.0) + 2) * 10.0
    spec = ScenarioSpec(
        name=name or f"trace-{path.stem}",
        description=f"replay of arrival trace {path.name} "
        f"({len(arrivals)} arrivals)",
        scale=scale,
        schedulers=schedulers,
        n_static_peers=0,
        stagger=False,
        duration_seconds=float(duration_seconds),
        churn=False,
        events=(TraceArrivals(time=0.0, arrivals=arrivals),),
    )
    spec.validate()
    return spec
