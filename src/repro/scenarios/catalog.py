"""The built-in scenario catalog and registry.

Each named scenario is a builder ``(scale) -> ScenarioSpec`` registered
under a stable name; ``python -m repro scenario list`` prints this
registry and ``scenario run <name>`` executes one entry.  Builders take
the scale so the same scenario runs paper-sized, bench-sized (the
default) or tiny (the smoke/property tier) with proportionate
populations and horizons — the *regime* (event structure, relative
timing, shock magnitudes) is scale-invariant.

Adding a scenario is three steps: write a builder returning a
:class:`~repro.scenarios.spec.ScenarioSpec`, decorate it with
:func:`register_scenario`, and (optionally) document it in
``benchmarks/README.md``.  Everything else — CLI, smoke test,
determinism property, report archiving — picks it up by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .events import (
    CapacityRamp,
    CostShock,
    DiurnalWave,
    FlashCrowd,
    LinkDegrade,
    LinkRestore,
    LocalityCap,
    NewRelease,
    SeederOutage,
)
from .spec import ScenarioSpec

#: Scheduler set the lossy scenarios compare: every heuristic in the
#: registry.  The exact oracles (hungarian, lp) and the message-level
#: auction-distributed replay are excluded on runtime grounds — they
#: solve the identical problems the auction does, so the QoE question
#: (does the welfare/transit advantage survive real networks?) is
#: answered by the heuristic field.
LOSSY_SCHEDULERS = (
    "auction",
    "locality",
    "locality-retry",
    "agnostic",
    "greedy",
    "random",
)

__all__ = ["build_scenario", "register_scenario", "scenario_names"]

_BUILDERS: Dict[str, Callable[[str], ScenarioSpec]] = {}


def register_scenario(name: str):
    """Decorator registering a ``(scale) -> ScenarioSpec`` builder."""

    def wrap(builder: Callable[[str], ScenarioSpec]):
        if name in _BUILDERS:
            raise ValueError(f"scenario {name!r} already registered")
        _BUILDERS[name] = builder
        return builder

    return wrap


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_BUILDERS)


def build_scenario(name: str, scale: str = "bench") -> ScenarioSpec:
    """Build (and validate) the named scenario at ``scale``."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    spec = builder(scale)
    spec.validate()
    return spec


def _tiny(scale: str) -> bool:
    return scale == "tiny"


def _pop(scale: str, tiny: int, bench: int, paper: int) -> int:
    return {"tiny": tiny, "bench": bench, "paper": paper}[scale]


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
@register_scenario("flash-crowd")
def flash_crowd(scale: str = "bench") -> ScenarioSpec:
    """A synchronized audience hit by a burst of newcomers on one title.

    The regime *Pushing BitTorrent Locality to the Limit* studies:
    demand concentrates on a single video faster than supply grows, so
    the schedulers differ most in where the extra chunks come from
    (local vs transit) and who misses deadlines during the spike.
    """
    burst = _pop(scale, 15, 150, 400)
    return ScenarioSpec(
        name="flash-crowd",
        description="arrival burst on one hot title over a static base swarm",
        scale=scale,
        config_overrides={
            "peer_upload_min_multiple": 0.8,
            "peer_upload_max_multiple": 2.0,
            "seed_upload_multiple": 3.0,
        },
        n_static_peers=_pop(scale, 20, 200, 500),
        stagger=False,
        duration_seconds=60.0 if _tiny(scale) else 120.0,
        churn=False,
        events=(
            FlashCrowd(
                time=20.0 if _tiny(scale) else 40.0,
                n_peers=burst,
                over_seconds=10.0,
                video_id=0,
                upload_min=0.8,
                upload_max=1.2,
            ),
        ),
    )


@register_scenario("diurnal")
def diurnal(scale: str = "bench") -> ScenarioSpec:
    """Day/night churn: the arrival rate rides a sinusoid.

    The network grows from empty under a rate that peaks and troughs
    twice over the horizon; welfare and inter-ISP traffic should track
    the wave with the auction extracting more welfare per peer at the
    crest (deeper swarms → better local supply).
    """
    horizon = 60.0 if _tiny(scale) else 150.0
    return ScenarioSpec(
        name="diurnal",
        description="sinusoidal arrival-rate wave over an initially empty network",
        scale=scale,
        n_static_peers=0,
        duration_seconds=horizon,
        churn=True,
        events=(
            DiurnalWave(
                time=0.0,
                duration=horizon,
                period_seconds=horizon / 2.0,
                base_rate_per_s=_pop(scale, 1, 2, 1),
                amplitude=0.8,
                step_seconds=10.0,
            ),
        ),
    )


@register_scenario("isp-price-shock")
def isp_price_shock(scale: str = "bench") -> ScenarioSpec:
    """Transit prices triple mid-run; ISP-aware scheduling should adapt.

    The game-based ISP-friendly control setting: the cost regime is a
    policy lever that changes while the system runs.  The auction's
    inter-ISP share should drop after the shock (cross-ISP edges price
    themselves out at the margin); the locality baseline, which never
    reads costs, should barely move.
    """
    return ScenarioSpec(
        name="isp-price-shock",
        description="global inter-ISP transit price ×3 at mid-run",
        scale=scale,
        # The per-ISP rollup is the point of this scenario: the shock's
        # transit-cost redistribution shows up per eyeball ISP.
        config_overrides={"isp_rollup": True},
        n_static_peers=_pop(scale, 30, 300, 500),
        stagger=False,
        duration_seconds=60.0 if _tiny(scale) else 120.0,
        churn=False,
        events=(
            CostShock(
                time=30.0 if _tiny(scale) else 60.0,
                factor=3.0,
            ),
        ),
    )


@register_scenario("seeder-failure")
def seeder_failure(scale: str = "bench") -> ScenarioSpec:
    """Half the seed infrastructure goes dark, then recovers.

    Seeds stay online (their buffer maps still advertise everything)
    but upload nothing during the outage — the CDN-assist failure mode.
    Miss rate and transit share should spike during the window and
    relax after recovery; the auction should degrade more gracefully by
    re-pricing the surviving supply.
    """
    out_start = 20.0 if _tiny(scale) else 40.0
    out_len = 20.0 if _tiny(scale) else 40.0
    return ScenarioSpec(
        name="seeder-failure",
        description="50% of seeds lose upload capacity mid-run, later recover",
        scale=scale,
        config_overrides={
            "peer_upload_min_multiple": 0.8,
            "peer_upload_max_multiple": 2.0,
            "seed_upload_multiple": 3.0,
        },
        n_static_peers=_pop(scale, 30, 300, 500),
        stagger=False,
        duration_seconds=60.0 if _tiny(scale) else 120.0,
        churn=False,
        events=(
            SeederOutage(
                time=out_start,
                duration=out_len,
                fraction=0.5,
            ),
        ),
    )


@register_scenario("new-release")
def new_release(scale: str = "bench") -> ScenarioSpec:
    """A cold title becomes the catalog's hottest mid-run (popularity drift).

    Under churn, arrivals after the release pile onto a video with no
    installed base of uploaders — supply must be built from seeds while
    the old hot title's swarm drains.
    """
    return ScenarioSpec(
        name="new-release",
        description="least-popular video becomes rank 1 for future arrivals",
        scale=scale,
        n_static_peers=0,
        duration_seconds=60.0 if _tiny(scale) else 150.0,
        churn=True,
        config_overrides={"arrival_rate_per_s": 2.0},
        events=(
            NewRelease(
                time=20.0 if _tiny(scale) else 50.0,
                # The last catalog id is the coldest rank under Zipf.
                video_id=2 if _tiny(scale) else 19,
            ),
        ),
    )


@register_scenario("asymmetric-isps")
def asymmetric_isps(scale: str = "bench") -> ScenarioSpec:
    """One ISP's transit is 3× expensive from the start; locality tightens later.

    A heterogeneous-ISP regime: every link in or out of ISP 0 costs 3×
    (events at t = 0 configure the asymmetric price surface), and at
    mid-run the overlay's neighbor cap halves — the aggressive-locality
    knob of *Pushing BitTorrent Locality to the Limit*.  Churn is on so
    the cap actually shapes the mesh: links are never pruned in place,
    but every post-cap arrival bootstraps (and every churn-thinned
    survivor refills) only up to the tightened target.
    """
    n_isps = 2 if _tiny(scale) else 5
    shocks = tuple(
        CostShock(time=0.0, factor=3.0, isp_a=0, isp_b=b)
        for b in range(1, n_isps)
    )
    return ScenarioSpec(
        name="asymmetric-isps",
        description="ISP 0 transit ×3 from t=0; neighbor cap halves mid-run "
        "under churn",
        scale=scale,
        config_overrides={"arrival_rate_per_s": 1.0},
        n_static_peers=_pop(scale, 30, 300, 500),
        stagger=False,
        duration_seconds=60.0 if _tiny(scale) else 120.0,
        churn=True,
        events=shocks
        + (
            LocalityCap(
                time=30.0 if _tiny(scale) else 60.0,
                neighbor_target=4,
            ),
        ),
    )


@register_scenario("capacity-ramp")
def capacity_ramp(scale: str = "bench") -> ScenarioSpec:
    """Watcher upload capacity halves, then doubles back (heterogeneity ramp).

    Models an access-network brownout: at the first ramp the watchers'
    upload budgets halve (supply squeeze → contention, misses), at the
    second they recover 2×.  Seeds are untouched, so the squeeze shifts
    load onto the seed tier and transit links.
    """
    t1 = 20.0 if _tiny(scale) else 40.0
    t2 = 40.0 if _tiny(scale) else 80.0
    return ScenarioSpec(
        name="capacity-ramp",
        description="watcher upload ×0.5 mid-run, ×2 back near the end",
        scale=scale,
        config_overrides={
            "peer_upload_min_multiple": 0.8,
            "peer_upload_max_multiple": 2.0,
            "seed_upload_multiple": 3.0,
        },
        n_static_peers=_pop(scale, 30, 300, 500),
        stagger=False,
        duration_seconds=60.0 if _tiny(scale) else 120.0,
        churn=False,
        events=(
            CapacityRamp(time=t1, factor=0.5, target="watchers"),
            CapacityRamp(time=t2, factor=2.0, target="watchers"),
        ),
    )


@register_scenario("lossy-backbone")
def lossy_backbone(scale: str = "bench") -> ScenarioSpec:
    """Every inter-ISP link turns lossy mid-run, then recovers.

    The ``loss30-delay50`` netem regime lands on the backbone while
    intra-ISP links stay clean — the setting where loss/locality
    interactions (PAPERS.md: *Pushing BitTorrent Locality to the
    Limit*) should separate the schedulers: ISP-aware scheduling keeps
    most transfers off the degraded links, ISP-agnostic scheduling
    funnels a third of its traffic into the retry pipeline.  The QoE
    block reports each scheduler under the ideal and degraded regime
    segments of the identical workload.
    """
    t_hit = 20.0 if _tiny(scale) else 40.0
    t_fix = 40.0 if _tiny(scale) else 80.0
    return ScenarioSpec(
        name="lossy-backbone",
        description="loss30-delay50 on every inter-ISP link mid-run, "
        "later restored",
        scale=scale,
        config_overrides={
            "peer_upload_min_multiple": 0.8,
            "peer_upload_max_multiple": 2.0,
            "seed_upload_multiple": 3.0,
        },
        schedulers=LOSSY_SCHEDULERS,
        n_static_peers=_pop(scale, 30, 300, 500),
        stagger=False,
        duration_seconds=60.0 if _tiny(scale) else 120.0,
        churn=False,
        events=(
            LinkDegrade(time=t_hit, preset="loss30-delay50"),
            LinkRestore(time=t_fix),
        ),
    )


@register_scenario("flaky-isp")
def flaky_isp(scale: str = "bench") -> ScenarioSpec:
    """One ISP's access network flaps between clean and 10% loss.

    Every link touching ISP 0 (intra included) cycles through two
    ``loss10`` incident windows under background churn — the flaky
    regional-carrier regime.  Peers inside ISP 0 lose chunks whoever
    they fetch from, so the retry pipeline and its churn-safe eviction
    do real work: arrivals/departures land mid-incident while retries
    are pending.
    """
    if _tiny(scale):
        windows = ((20.0, 40.0),)
        horizon = 60.0
    else:
        windows = ((30.0, 60.0), (80.0, 100.0))
        horizon = 120.0
    events = []
    for start, stop in windows:
        events.append(LinkDegrade(time=start, preset="loss10", isp_a=0))
        events.append(LinkRestore(time=stop, isp_a=0))
    return ScenarioSpec(
        name="flaky-isp",
        description="ISP 0's links flap through loss10 incident windows "
        "under churn",
        scale=scale,
        # isp_rollup: the flaky ISP's QoE damage (misses, retries,
        # startup stalls) should localize to ISP 0's home peers.
        config_overrides={"arrival_rate_per_s": 1.0, "isp_rollup": True},
        schedulers=LOSSY_SCHEDULERS,
        n_static_peers=_pop(scale, 20, 200, 400),
        stagger=False,
        duration_seconds=horizon,
        churn=True,
        events=tuple(events),
    )
