"""Per-peer chunk buffer and window of interest.

Each peer holds downloaded chunks of the video it watches and exchanges
buffer maps with neighbors (Section V's "buffer manager").  The window
of interest ``R_t(d)`` is the next ``window`` chunks beyond the playback
position that the peer does not yet hold — the paper prefetches 100
chunks, i.e. 10 seconds ahead.

Storage is a numpy bool bitmap indexed by chunk number.  The zero-copy
:attr:`ChunkBuffer.mask` view is what the columnar slot pipeline
(:meth:`repro.p2p.system.P2PSystem.build_problem`) stacks into per-video
availability matrices, replacing per-(chunk, neighbor) set probes with
one fancy-index per neighbor.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

import numpy as np

from .video import Video

__all__ = ["ChunkBuffer"]


class ChunkBuffer:
    """Holds chunk indices of one video for one peer.

    Parameters
    ----------
    video:
        The video whose chunks this buffer stores.
    capacity_chunks:
        Optional cap on held chunks; when exceeded, the chunks furthest
        *behind* the protected position are evicted first (they are least
        useful for the peer's own playback, though still uploadable until
        evicted).  ``None`` means unbounded, the paper's implicit setting
        for 20 MB videos.
    """

    def __init__(self, video: Video, capacity_chunks: Optional[int] = None) -> None:
        if capacity_chunks is not None and capacity_chunks < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity_chunks!r}")
        self.video = video
        self.capacity_chunks = capacity_chunks
        self._mask = np.zeros(video.n_chunks, dtype=bool)
        self._count = 0

    # ------------------------------------------------------------------
    # Storage binding (peer-state store integration)
    # ------------------------------------------------------------------
    def rebind_storage(self, view: np.ndarray, copy: bool = True) -> None:
        """Swap the backing bitmap storage to ``view``.

        The peer-state store binds each online buffer to a row of its
        per-video bitmap matrix, so every write through this buffer
        lands in the shared columnar state with no synchronization step.
        ``copy=True`` carries the current content into the new storage;
        ``copy=False`` is for re-pointing after the store already
        block-copied the matrix (growth).
        """
        if view.shape != self._mask.shape or view.dtype != np.bool_:
            raise ValueError(
                f"storage view must be bool of shape {self._mask.shape}, "
                f"got {view.dtype} {view.shape}"
            )
        if copy:
            np.copyto(view, self._mask)
        self._mask = view

    def unbind_storage(self) -> None:
        """Take back privately owned storage (a copy of the bound row).

        Called when the peer departs: the store frees and zeroes its
        row, and the buffer must keep its content for any code still
        holding the departed peer.
        """
        self._mask = self._mask.copy()

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __contains__(self, index: int) -> bool:
        return self.holds(index)

    def holds(self, index: int) -> bool:
        """Whether chunk ``index`` is in the buffer."""
        return 0 <= index < self.video.n_chunks and bool(self._mask[index])

    def add(self, index: int, protect_from: int = 0) -> bool:
        """Insert chunk ``index``; returns ``False`` if it was already held.

        ``protect_from`` is the current playback position: eviction under
        a capacity cap removes the chunk most distant behind it.
        """
        if not 0 <= index < self.video.n_chunks:
            raise IndexError(
                f"chunk {index!r} out of range [0, {self.video.n_chunks})"
            )
        if self._mask[index]:
            return False
        self._mask[index] = True
        self._count += 1
        if self.capacity_chunks is not None and self._count > self.capacity_chunks:
            self._evict_one(protect_from)
        return True

    def add_many(self, indices: Iterable[int], protect_from: int = 0) -> int:
        """Insert several chunks; returns how many were new."""
        return sum(1 for index in indices if self.add(index, protect_from))

    def add_batch(self, indices, protect_from: int = 0) -> int:
        """Insert an array of chunks with one bitmap write; returns how many were new.

        Same outcome as calling :meth:`add` per index (duplicates within
        the batch count once).  Buffers with a capacity cap fall back to
        the per-chunk loop — eviction order depends on the running
        count, which a grouped write cannot reproduce.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            return 0
        bad = idx[(idx < 0) | (idx >= self.video.n_chunks)]
        if bad.size:
            raise IndexError(
                f"chunk {int(bad[0])!r} out of range [0, {self.video.n_chunks})"
            )
        if self.capacity_chunks is not None:
            return self.add_many(idx.tolist(), protect_from)
        uniq = np.unique(idx)
        return self.receive_batch_trusted(uniq)

    def receive_batch_trusted(self, idx: np.ndarray) -> int:
        """:meth:`add_batch` minus the guards, for the slot delivery path.

        Caller contract: ``idx`` is an in-range, duplicate-free int64
        array and the buffer has no capacity cap (the scheduler only
        delivers unique validated chunk indices, so the per-call guard
        cost would be pure overhead at one call per receiving peer).
        """
        added = int(idx.size - np.count_nonzero(self._mask[idx]))
        self._mask[idx] = True
        self._count += added
        return added

    def note_external_writes(self, added: int) -> None:
        """Credit ``added`` chunks written directly into the bound storage.

        The peer-state store's grouped delivery writes whole batches into
        the shared bitmap matrix this buffer is a view of; the bits are
        already set when this is called — only the held-chunk count needs
        to catch up.  Caller contract: ``added`` is the number of bits
        that actually flipped 0→1 in this buffer's row.
        """
        self._count += added

    def fill_range(self, start: int, stop: int) -> None:
        """Mark ``[start, stop)`` as held — used to pre-seed buffers."""
        if start < 0 or stop > self.video.n_chunks or start > stop:
            raise ValueError(
                f"bad range [{start!r}, {stop!r}) for video of "
                f"{self.video.n_chunks} chunks"
            )
        segment = self._mask[start:stop]
        self._count += int(segment.size - segment.sum())
        segment[:] = True

    def _evict_one(self, protect_from: int) -> None:
        # Prefer the chunk furthest behind the playback position (lowest
        # held index below it); if none lies behind, evict the
        # furthest-ahead chunk instead.
        bound = min(max(0, protect_from), self.video.n_chunks)
        behind = self._mask[:bound]
        if behind.any():
            victim = int(np.argmax(behind))
        else:
            victim = int(self.video.n_chunks - 1 - np.argmax(self._mask[::-1]))
        self._mask[victim] = False
        self._count -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mask(self) -> np.ndarray:
        """Zero-copy bool bitmap over chunk indices (do not mutate).

        This is the live storage, not a snapshot: position ``i`` is
        ``True`` iff chunk ``i`` is currently held.  The slot pipeline
        stacks these views into per-video availability matrices.
        """
        return self._mask

    def bitmap(self) -> FrozenSet[int]:
        """Immutable snapshot advertised to neighbors."""
        return frozenset(np.nonzero(self._mask)[0].tolist())

    def held_among(self, indices: Set[int]) -> Set[int]:
        """Subset of ``indices`` that this buffer holds."""
        if not indices:
            return set()
        idx = np.fromiter(indices, dtype=np.int64, count=len(indices))
        return set(idx[self._mask[idx]].tolist())

    def window_array(
        self,
        position: int,
        window: int,
        exclude: Optional[Set[int]] = None,
    ) -> np.ndarray:
        """Vectorized :meth:`window_of_interest`: sorted int64 array."""
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window!r}")
        start = max(0, position)
        stop = min(self.video.n_chunks, start + window)
        if stop <= start:
            return np.empty(0, dtype=np.int64)
        available = ~self._mask[start:stop]
        if exclude:
            # Clear excluded positions directly — O(window + |exclude|),
            # cheaper than a sort-based isin on the hot path.
            skip = np.fromiter(exclude, dtype=np.int64, count=len(exclude))
            skip = skip[(skip >= start) & (skip < stop)]
            available[skip - start] = False
        return np.nonzero(available)[0] + start

    def window_of_interest(
        self,
        position: int,
        window: int,
        exclude: Optional[Set[int]] = None,
    ) -> List[int]:
        """The next ``window`` chunk indices from ``position`` not yet held.

        ``exclude`` removes chunks already being fetched or already missed.
        The result is ordered by index (i.e., by deadline).
        """
        return self.window_array(position, window, exclude).tolist()

    def contiguous_from(self, position: int) -> int:
        """Length of the held run starting at ``position`` (buffered playtime)."""
        start = max(0, position)
        segment = self._mask[start:]
        if not segment.size:
            return 0
        first_gap = int(np.argmin(segment))
        if segment[first_gap]:
            return int(segment.size)  # no gap: held through the end
        return first_gap

    def completion(self) -> float:
        """Fraction of the video held, in [0, 1]."""
        return self._count / self.video.n_chunks
