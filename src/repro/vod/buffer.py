"""Per-peer chunk buffer and window of interest.

Each peer holds downloaded chunks of the video it watches and exchanges
buffer maps with neighbors (Section V's "buffer manager").  The window
of interest ``R_t(d)`` is the next ``window`` chunks beyond the playback
position that the peer does not yet hold — the paper prefetches 100
chunks, i.e. 10 seconds ahead.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set

from .video import Video

__all__ = ["ChunkBuffer"]


class ChunkBuffer:
    """Holds chunk indices of one video for one peer.

    Parameters
    ----------
    video:
        The video whose chunks this buffer stores.
    capacity_chunks:
        Optional cap on held chunks; when exceeded, the chunks furthest
        *behind* the protected position are evicted first (they are least
        useful for the peer's own playback, though still uploadable until
        evicted).  ``None`` means unbounded, the paper's implicit setting
        for 20 MB videos.
    """

    def __init__(self, video: Video, capacity_chunks: Optional[int] = None) -> None:
        if capacity_chunks is not None and capacity_chunks < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity_chunks!r}")
        self.video = video
        self.capacity_chunks = capacity_chunks
        self._held: Set[int] = set()

    # ------------------------------------------------------------------
    # Content management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._held)

    def __contains__(self, index: int) -> bool:
        return index in self._held

    def holds(self, index: int) -> bool:
        """Whether chunk ``index`` is in the buffer."""
        return index in self._held

    def add(self, index: int, protect_from: int = 0) -> bool:
        """Insert chunk ``index``; returns ``False`` if it was already held.

        ``protect_from`` is the current playback position: eviction under
        a capacity cap removes the chunk most distant behind it.
        """
        if not 0 <= index < self.video.n_chunks:
            raise IndexError(
                f"chunk {index!r} out of range [0, {self.video.n_chunks})"
            )
        if index in self._held:
            return False
        self._held.add(index)
        if self.capacity_chunks is not None and len(self._held) > self.capacity_chunks:
            self._evict_one(protect_from)
        return True

    def add_many(self, indices: Iterable[int], protect_from: int = 0) -> int:
        """Insert several chunks; returns how many were new."""
        return sum(1 for index in indices if self.add(index, protect_from))

    def fill_range(self, start: int, stop: int) -> None:
        """Mark ``[start, stop)`` as held — used to pre-seed buffers."""
        if start < 0 or stop > self.video.n_chunks or start > stop:
            raise ValueError(
                f"bad range [{start!r}, {stop!r}) for video of "
                f"{self.video.n_chunks} chunks"
            )
        self._held.update(range(start, stop))

    def _evict_one(self, protect_from: int) -> None:
        # Prefer the chunk furthest behind the playback position; if none
        # lies behind, evict the furthest-ahead chunk instead.
        behind = [i for i in self._held if i < protect_from]
        victim = min(behind) if behind else max(self._held)
        self._held.discard(victim)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def bitmap(self) -> FrozenSet[int]:
        """Immutable snapshot advertised to neighbors."""
        return frozenset(self._held)

    def held_among(self, indices: Set[int]) -> Set[int]:
        """Subset of ``indices`` that this buffer holds (one set op)."""
        return self._held & indices

    def window_of_interest(
        self,
        position: int,
        window: int,
        exclude: Optional[Set[int]] = None,
    ) -> List[int]:
        """The next ``window`` chunk indices from ``position`` not yet held.

        ``exclude`` removes chunks already being fetched or already missed.
        The result is ordered by index (i.e., by deadline).
        """
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window!r}")
        start = max(0, position)
        stop = min(self.video.n_chunks, start + window)
        skip = exclude or set()
        return [
            i for i in range(start, stop) if i not in self._held and i not in skip
        ]

    def contiguous_from(self, position: int) -> int:
        """Length of the held run starting at ``position`` (buffered playtime)."""
        run = 0
        i = max(0, position)
        while i < self.video.n_chunks and i in self._held:
            run += 1
            i += 1
        return run

    def completion(self) -> float:
        """Fraction of the video held, in [0, 1]."""
        return len(self._held) / self.video.n_chunks
