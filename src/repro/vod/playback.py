"""Playback sessions: positions, deadlines and miss accounting.

A session starts at a wall-clock instant and consumes chunks at the
video's bitrate.  A chunk not present in the buffer when its playback
instant arrives is a *miss* (the player skips it — the VoD behaviour the
paper measures as "chunk miss rate": "the percentage of chunks which
fail to be downloaded before the respective playback deadlines").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

import numpy as np

from .buffer import ChunkBuffer
from .video import Video

__all__ = ["PlaybackSession", "SlotPlaybackStats"]


@dataclass(frozen=True)
class SlotPlaybackStats:
    """Chunks that came due and chunks missed during one advance call."""

    due: int
    missed: int

    @property
    def miss_rate(self) -> float:
        """Fraction missed among due chunks; 0 when nothing was due."""
        return self.missed / self.due if self.due else 0.0


class PlaybackSession:
    """Tracks one peer's playback through one video.

    Parameters
    ----------
    video:
        The video being watched.
    buffer:
        The peer's chunk buffer (consulted at each deadline).
    start_time:
        Simulated time at which playback of chunk 0 begins.
    start_position:
        First chunk index to play — static-network experiments stagger
        peers by starting them mid-video.
    """

    def __init__(
        self,
        video: Video,
        buffer: ChunkBuffer,
        start_time: float,
        start_position: int = 0,
    ) -> None:
        if not 0 <= start_position <= video.n_chunks:
            raise ValueError(
                f"start_position {start_position!r} out of range "
                f"[0, {video.n_chunks}]"
            )
        self.video = video
        self.buffer = buffer
        self.start_time = float(start_time)
        self.start_position = int(start_position)
        self.position = int(start_position)
        self._missed: Set[int] = set()
        # Miss batches queued by the store's batched advance, folded
        # into the set only when someone actually reads it — the slot
        # loop tracks misses through the store's bitmap matrix and never
        # does, so steady-state slots skip ~all per-chunk set inserts.
        self._missed_pending: list = []
        self.played = 0
        self._last_advance = float(start_time)

    @property
    def missed(self) -> Set[int]:
        """Chunk indices that missed their deadline (materialized view)."""
        if self._missed_pending:
            for chunk in self._missed_pending:
                self._missed.update(chunk.tolist())
            self._missed_pending.clear()
        return self._missed

    @missed.setter
    def missed(self, value) -> None:
        self._missed = set(value)
        self._missed_pending.clear()

    def defer_missed(self, chunks) -> None:
        """Queue an int64 array of missed chunks without touching the set.

        Used by the batched playback path; the indices join
        :attr:`missed` lazily on the next read.
        """
        self._missed_pending.append(chunks)

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def deadline_of(self, index: int) -> float:
        """Absolute simulated time at which chunk ``index`` is consumed."""
        offset = (index - self.start_position) / self.video.chunks_per_second
        return self.start_time + offset

    def seconds_to_deadline(self, index: int, now: float) -> float:
        """Seconds from ``now`` until chunk ``index`` plays (negative if overdue)."""
        return self.deadline_of(index) - now

    def seconds_to_deadlines(self, indices, now: float) -> np.ndarray:
        """Vectorized :meth:`seconds_to_deadline` over an index array."""
        offsets = (
            np.asarray(indices, dtype=float) - self.start_position
        ) / self.video.chunks_per_second
        return (self.start_time + offsets) - now

    def due_position(self, now: float) -> int:
        """Index of the first chunk not yet due at time ``now``."""
        elapsed = max(0.0, now - self.start_time)
        due = self.start_position + int(elapsed * self.video.chunks_per_second)
        return min(due, self.video.n_chunks)

    @property
    def finished(self) -> bool:
        """Whether the session has played (or skipped) every chunk."""
        return self.position >= self.video.n_chunks

    @property
    def end_time(self) -> float:
        """Simulated time at which the last chunk is consumed."""
        remaining = self.video.n_chunks - self.start_position
        return self.start_time + remaining / self.video.chunks_per_second

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------
    def advance_to(self, now: float) -> SlotPlaybackStats:
        """Consume every chunk whose deadline passed since the last call.

        Held chunks count as played; absent ones as missed and are
        recorded in :attr:`missed` so the request window skips them.
        Batched: one bitmap slice counts held-vs-missing over the whole
        due range instead of one buffer probe per chunk
        (:meth:`advance_to_reference` keeps the per-chunk loop as the
        semantics pin).
        """
        if now < self._last_advance:
            raise ValueError(
                f"time went backwards: {now!r} < {self._last_advance!r}"
            )
        self._last_advance = float(now)
        target = self.due_position(now)
        start = self.position
        if target <= start:
            return SlotPlaybackStats(due=0, missed=0)
        held = self.buffer.mask[start:target]
        due = target - start
        played = int(held.sum())
        missed = due - played
        if missed:
            self.missed.update((np.nonzero(~held)[0] + start).tolist())
        self.played += played
        self.position = target
        return SlotPlaybackStats(due=due, missed=missed)

    def advance_to_reference(self, now: float) -> SlotPlaybackStats:
        """Per-chunk loop implementation of :meth:`advance_to` (semantics pin)."""
        if now < self._last_advance:
            raise ValueError(
                f"time went backwards: {now!r} < {self._last_advance!r}"
            )
        self._last_advance = float(now)
        target = self.due_position(now)
        due = 0
        missed = 0
        missed_set = self.missed
        while self.position < target:
            index = self.position
            due += 1
            if self.buffer.holds(index):
                self.played += 1
            else:
                missed_set.add(index)
                missed += 1
            self.position += 1
        return SlotPlaybackStats(due=due, missed=missed)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def miss_rate(self) -> float:
        """Lifetime miss fraction among consumed chunks."""
        consumed = self.played + len(self.missed)
        return len(self.missed) / consumed if consumed else 0.0

    def remaining_chunks(self) -> int:
        """Chunks not yet due."""
        return self.video.n_chunks - self.position
