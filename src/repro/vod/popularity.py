"""Zipf-Mandelbrot video popularity.

Section V: a joining peer selects video ``i`` (1 ≤ i ≤ 100) with
probability ``p(i) = (1/(i+q)^α) / Σ_j 1/(j+q)^α`` with α = 0.78 and
q = 4, following Dai et al.'s measurement of ISP-aware P2P caching.
Video ranks are 1-based in the formula; we expose 0-based catalog ids
(rank 1 → video id 0).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfMandelbrot"]


class ZipfMandelbrot:
    """Zipf-Mandelbrot law over ``n`` ranked items.

    Example
    -------
    >>> dist = ZipfMandelbrot(n=100)
    >>> probs = dist.pmf()
    >>> bool(abs(probs.sum() - 1.0) < 1e-12 and probs[0] > probs[-1])
    True
    """

    #: Paper defaults.
    DEFAULT_ALPHA = 0.78
    DEFAULT_Q = 4.0

    def __init__(self, n: int, alpha: float = DEFAULT_ALPHA, q: float = DEFAULT_Q) -> None:
        if n < 1:
            raise ValueError(f"need at least one item, got {n!r}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha!r}")
        if q < 0:
            raise ValueError(f"q must be non-negative, got {q!r}")
        self.n = int(n)
        self.alpha = float(alpha)
        self.q = float(q)
        ranks = np.arange(1, self.n + 1, dtype=float)
        weights = 1.0 / np.power(ranks + self.q, self.alpha)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def pmf(self) -> np.ndarray:
        """Probability of each item, index 0 = most popular (rank 1)."""
        return self._pmf.copy()

    def probability(self, item: int) -> float:
        """Probability of 0-based ``item``."""
        if not 0 <= item < self.n:
            raise IndexError(f"item {item!r} out of range [0, {self.n})")
        return float(self._pmf[item])

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one 0-based item id."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` 0-based item ids."""
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(int)

    def expected_rank(self) -> float:
        """Mean 1-based rank under the law (a skew summary for tests)."""
        ranks = np.arange(1, self.n + 1, dtype=float)
        return float((ranks * self._pmf).sum())
