"""Deadline-based chunk valuation.

Section V adopts the valuation of Wu et al. [9]:

    v(d) = α_d / log(β_d + d)

where ``d`` is the time to the chunk's playback deadline (seconds here),
α_d = 2 and β_d = 1.2.  Chunks about to be played are worth the most;
with a 10-second prefetch window (d ∈ [0.1, 10]) the valuation spans
roughly [0.8, 8], matching the paper's quoted range.

Overdue chunks (d ≤ 0) are clamped to ``d = 0``: the valuation stays
finite (≈ 11) and maximal, expressing extreme urgency.  The system layer
normally drops overdue chunks from the request window before valuation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DeadlineValuation"]


@dataclass(frozen=True)
class DeadlineValuation:
    """The paper's deadline valuation function, vectorized.

    Example
    -------
    >>> v = DeadlineValuation()
    >>> bool(v.value(0.1) > v.value(10.0))
    True
    >>> 0.7 < v.value(10.0) < 0.9
    True
    """

    alpha: float = 2.0
    beta: float = 1.2

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha!r}")
        if self.beta <= 1.0:
            raise ValueError(
                f"beta must exceed 1 so log(beta + d) > 0 for d >= 0, got {self.beta!r}"
            )

    def value(self, seconds_to_deadline: float) -> float:
        """Valuation of a chunk due in ``seconds_to_deadline`` seconds."""
        d = max(0.0, float(seconds_to_deadline))
        return self.alpha / float(np.log(self.beta + d))

    def values(self, seconds_to_deadline: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`value`."""
        d = np.maximum(0.0, np.asarray(seconds_to_deadline, dtype=float))
        return self.alpha / np.log(self.beta + d)

    def max_value(self) -> float:
        """Largest attainable valuation (at d = 0)."""
        return self.value(0.0)

    def min_value(self, horizon_seconds: float) -> float:
        """Smallest valuation within a prefetch horizon of ``horizon_seconds``."""
        return self.value(horizon_seconds)
