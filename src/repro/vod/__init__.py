"""VoD substrate: videos, popularity, buffers, playback, valuation."""

from .buffer import ChunkBuffer
from .playback import PlaybackSession, SlotPlaybackStats
from .popularity import ZipfMandelbrot
from .valuation import DeadlineValuation
from .video import ChunkId, Video, VideoCatalog

__all__ = [
    "ChunkBuffer",
    "ChunkId",
    "DeadlineValuation",
    "PlaybackSession",
    "SlotPlaybackStats",
    "Video",
    "VideoCatalog",
    "ZipfMandelbrot",
]
