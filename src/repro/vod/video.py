"""Video catalog: videos, chunks and their timing.

Paper settings (Section V): 100 short videos of about 20 MB each,
playback bitrate 640 Kbps (YouTube-360p-like), chunk size 8 KB (a
PPStream sub-piece).  At those numbers a video holds 2560 chunks and
playback consumes 10 chunks per second, i.e. 100 chunks per 10-second
time slot — which is exactly the paper's 100-chunk prefetch window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["ChunkId", "Video", "VideoCatalog"]

#: Chunks are addressed globally as (video_id, chunk_index).
ChunkId = Tuple[int, int]


@dataclass(frozen=True)
class Video:
    """A single video and its derived chunk timing.

    Attributes
    ----------
    video_id:
        Catalog index, 0-based.
    n_chunks:
        Number of equal-sized chunks.
    chunk_size_bytes:
        Bytes per chunk.
    bitrate_bps:
        Playback bitrate in bits per second.
    """

    video_id: int
    n_chunks: int
    chunk_size_bytes: int
    bitrate_bps: int

    def __post_init__(self) -> None:
        if self.n_chunks < 1:
            raise ValueError(f"video needs at least one chunk, got {self.n_chunks!r}")
        if self.chunk_size_bytes < 1 or self.bitrate_bps < 1:
            raise ValueError("chunk size and bitrate must be positive")

    @property
    def size_bytes(self) -> int:
        """Total size of the video in bytes."""
        return self.n_chunks * self.chunk_size_bytes

    @property
    def chunks_per_second(self) -> float:
        """Playback consumption rate in chunks per second."""
        return self.bitrate_bps / 8.0 / self.chunk_size_bytes

    @property
    def duration_seconds(self) -> float:
        """Playback duration in seconds."""
        return self.n_chunks / self.chunks_per_second

    def chunk_id(self, index: int) -> ChunkId:
        """Global id of chunk ``index``; bounds-checked."""
        if not 0 <= index < self.n_chunks:
            raise IndexError(
                f"chunk index {index!r} out of range [0, {self.n_chunks}) "
                f"for video {self.video_id}"
            )
        return (self.video_id, index)

    def chunk_playback_offset(self, index: int) -> float:
        """Seconds after playback start at which chunk ``index`` is consumed."""
        return index / self.chunks_per_second


class VideoCatalog:
    """The collection of videos available in the system.

    Example
    -------
    >>> catalog = VideoCatalog.paper_default(n_videos=3)
    >>> catalog[0].n_chunks
    2560
    >>> round(catalog[0].chunks_per_second, 1)
    10.0
    """

    #: Paper defaults.
    DEFAULT_N_VIDEOS = 100
    DEFAULT_SIZE_BYTES = 20 * 1024 * 1024
    DEFAULT_CHUNK_BYTES = 8 * 1024
    DEFAULT_BITRATE_BPS = 640 * 1000

    def __init__(self, videos: List[Video]) -> None:
        if not videos:
            raise ValueError("catalog cannot be empty")
        self._videos: Dict[int, Video] = {}
        for video in videos:
            if video.video_id in self._videos:
                raise ValueError(f"duplicate video id {video.video_id!r}")
            self._videos[video.video_id] = video

    @classmethod
    def paper_default(
        cls,
        n_videos: int = DEFAULT_N_VIDEOS,
        size_bytes: int = DEFAULT_SIZE_BYTES,
        chunk_size_bytes: int = DEFAULT_CHUNK_BYTES,
        bitrate_bps: int = DEFAULT_BITRATE_BPS,
        size_jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "VideoCatalog":
        """Build a catalog with the paper's parameters.

        ``size_jitter`` (fraction, e.g. 0.1) varies per-video size
        uniformly around ``size_bytes``, reflecting "around 20 MB".
        """
        if size_jitter and rng is None:
            raise ValueError("size_jitter requires an rng")
        videos = []
        for vid in range(n_videos):
            size = size_bytes
            if size_jitter:
                factor = 1.0 + size_jitter * (2.0 * rng.random() - 1.0)
                size = max(chunk_size_bytes, int(size_bytes * factor))
            n_chunks = max(1, size // chunk_size_bytes)
            videos.append(
                Video(
                    video_id=vid,
                    n_chunks=int(n_chunks),
                    chunk_size_bytes=chunk_size_bytes,
                    bitrate_bps=bitrate_bps,
                )
            )
        return cls(videos)

    def __len__(self) -> int:
        return len(self._videos)

    def __getitem__(self, video_id: int) -> Video:
        return self._videos[video_id]

    def __iter__(self) -> Iterator[Video]:
        return iter(self._videos.values())

    def __contains__(self, video_id: int) -> bool:
        return video_id in self._videos

    def video_ids(self) -> List[int]:
        """All video ids in ascending order."""
        return sorted(self._videos)

    def total_chunks(self) -> int:
        """Total chunk count across the catalog."""
        return sum(v.n_chunks for v in self._videos.values())
