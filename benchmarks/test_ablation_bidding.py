"""Ablation A3 — Gauss-Seidel vs vectorized Jacobi bidding (runtime).

Both modes provably reach the same welfare; this measures the speed gap
that justifies the Jacobi path for paper-scale slots (a true
microbenchmark: multiple rounds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionSolver
from repro.core.problem import random_problem


@pytest.fixture(scope="module")
def instance():
    rng = np.random.default_rng(2)
    return random_problem(
        rng, n_requests=800, n_uploaders=40, max_candidates=8, capacity_range=(2, 8)
    )


@pytest.mark.parametrize("mode", ["gauss-seidel", "jacobi"])
def test_bidding_mode_runtime(benchmark, instance, mode):
    solver = AuctionSolver(epsilon=0.01, mode=mode)
    result = benchmark(solver.solve, instance)
    result.check_feasible(instance)
    assert result.stats.converged


def test_modes_equal_welfare(instance):
    gs = AuctionSolver(epsilon=0.01, mode="gauss-seidel").solve(instance)
    jac = AuctionSolver(epsilon=0.01, mode="jacobi").solve(instance)
    bound = 2 * instance.n_requests * 0.01
    assert abs(gs.welfare(instance) - jac.welfare(instance)) <= bound
