"""Fig. 4 — percentage of inter-ISP traffic per slot, static network.

Paper: the auction incurs a clearly smaller inter-ISP share than the
locality protocol, because a peer only crosses an ISP boundary when the
chunk's valuation justifies the cost.
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.figures import fig4_inter_isp_traffic


def test_fig4_inter_isp_traffic(benchmark, results_dir):
    result = benchmark.pedantic(
        fig4_inter_isp_traffic,
        kwargs={"scale": "bench", "seed": 0},
        rounds=1,
        iterations=1,
    )
    archive(results_dir, "fig4", result.text)
    assert result.shape_holds, result.shape

    auction = result.series["auction"]["inter_isp"].mean()
    locality = result.series["locality"]["inter_isp"].mean()
    # Factor check: the paper's gap is ~1.5–2×; ours must be at least 1.5×.
    assert locality > 1.5 * auction
    # Both shares are non-degenerate (there IS cross-ISP demand).
    assert locality > 0.05
