"""Ablation A1 — the bidding increment ε: work vs optimality.

Not a paper figure; quantifies the design choice DESIGN.md documents:
the paper's ε = 0 rule is exact only without ties, a tiny ε explodes the
bid count under contention, and a moderate ε converges fast while
staying (empirically exactly) optimal.
"""

from __future__ import annotations

import numpy as np
from conftest import archive

from repro.experiments.sweep import epsilon_sweep, render_epsilon_sweep

EPSILONS = [10.0, 1.0, 0.1, 0.01, 0.001]


def run_sweep():
    return epsilon_sweep(
        EPSILONS,
        rng=np.random.default_rng(0),
        n_requests=600,
        n_uploaders=30,
        max_candidates=8,
        mode="jacobi",
    )


def test_ablation_epsilon(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    archive(results_dir, "ablation_epsilon", render_epsilon_sweep(rows))

    by_eps = {r.epsilon: r for r in rows}
    # Optimality improves (weakly) as ε shrinks ...
    assert by_eps[0.001].optimality >= by_eps[10.0].optimality - 1e-9
    # ... and reaches ~exact at moderate ε already.
    assert by_eps[0.01].optimality > 0.999
    # Coarse ε does less work than fine ε.
    assert by_eps[1.0].rounds <= by_eps[0.001].rounds
