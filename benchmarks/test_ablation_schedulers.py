"""Ablation A4 — every scheduler on one system workload.

Extends the paper's two-way comparison with the retry-enabled locality
variant, the network-agnostic strawman, the centralized greedy and the
random floor, all on the identical workload (same seed).
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.sweep import scheduler_shootout
from repro.metrics.report import render_table

SCHEDULERS = ("auction", "locality", "locality-retry", "agnostic", "greedy", "random")


def run_shootout():
    return scheduler_shootout(
        schedulers=SCHEDULERS, seed=0, n_peers=150, duration_seconds=80.0
    )


def test_ablation_schedulers(benchmark, results_dir):
    results = benchmark.pedantic(run_shootout, rounds=1, iterations=1)
    table = render_table(
        ["scheduler", "welfare/slot", "inter-ISP", "miss", "served",
         "fairness", "localization"],
        [
            [
                name,
                totals["welfare_mean_per_slot"],
                totals["inter_isp_fraction"],
                totals["miss_rate"],
                int(totals["served_total"]),
                totals["download_fairness"],
                totals["traffic_localization"],
            ]
            for name, totals in results.items()
        ],
    )
    archive(results_dir, "ablation_schedulers", table)

    welfare = {n: t["welfare_mean_per_slot"] for n, t in results.items()}
    inter = {n: t["inter_isp_fraction"] for n, t in results.items()}
    # The auction beats every deployable (distributed) baseline; the
    # centralized omniscient greedy may differ by a hair across the
    # multi-slot trajectory (per-slot optimal ≠ trajectory optimal), so
    # parity within 2 % is required there.
    for name in ("locality", "locality-retry", "agnostic", "random"):
        assert welfare["auction"] > welfare[name], name
    assert welfare["auction"] >= 0.98 * welfare["greedy"]
    # An ISP-oblivious scheduler (agnostic or random) is the floor.
    assert min(welfare.values()) == min(welfare["agnostic"], welfare["random"])
    # ISP-awareness ordering on traffic.
    assert inter["auction"] <= inter["locality"] <= inter["agnostic"]
