"""Fig. 2 — evolution of the bandwidth price λ_u at a representative peer.

Paper: in a static 500-peer network the per-slot distributed auction's
price at a busy peer starts at 0 each slot, climbs, and converges about
5 s into the 10 s slot.  We rerun the slot auctions at message level
over a latency network derived from the cost model and assert the
sawtooth: price moves, resets per slot, converges within the slot.
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.figures import fig2_price_convergence


def test_fig2_price_convergence(benchmark, results_dir):
    result = benchmark.pedantic(
        fig2_price_convergence,
        kwargs={"scale": "bench", "seed": 0, "n_slots": 5},
        rounds=1,
        iterations=1,
    )
    archive(results_dir, "fig2", result.text)
    assert result.shape_holds, result.shape
    # The paper's headline observation: convergence well within the slot.
    series = result.series["auction"]["lambda_u"]
    assert series.values.max() > 0.0
