"""Slot-pipeline benchmark: seed path vs columnar path, per phase.

Times one slot's hot path — problem build, jacobi solve, transfer
apply, playback advance — on a matrix of scenario configurations,
comparing:

* **seed path**: ``P2PSystem.build_problem_reference`` (per-request
  dict/loop construction, as in the seed revision) + a faithful
  re-implementation of the seed's per-request padded ``dense()``
  expansion + the ``jacobi-dense`` solver + the per-edge
  ``_apply_transfers_reference`` loop + the per-chunk
  ``advance_to_reference`` playback walk;
* **columnar path**: ``P2PSystem.build_problem`` (vectorized assembly
  on the persistent peer-state store) + the event-driven price-frontier
  ``jacobi`` solver (also re-timed warm-started from the previous
  slot's λ — the ``warm_solve_s`` column) + the vectorized
  ``_apply_transfers`` epilogue + the store's batched
  ``_advance_playback`` sweep.

Scenarios with ``reference=False`` (the 10k tier, and the lossy row —
the seed apply path has no link model) skip every seed-path timing;
see benchmarks/README.md for the tier caveats.

Apply and playback mutate system state, so their min-of-N timing
snapshots and restores the touched state between repeats (and keeps
exactly one real application of the new path so the next slot starts
from the true trajectory).

Results are written machine-readable to ``BENCH_slot_pipeline.json`` at
the repo root so future PRs can track the trajectory.  Run via
``make bench`` or::

    PYTHONPATH=src python benchmarks/bench_slot_pipeline.py [--scenarios ...]

See benchmarks/README.md for the scenario matrix and how to read the
output.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.auction import AuctionSolver  # noqa: E402
from repro.core.problem import DenseView, SchedulingProblem  # noqa: E402
from repro.core.result import decay_prices  # noqa: E402
from repro.core.sharding import ShardedAuctionSolver  # noqa: E402
from repro.core.workers import workers_available  # noqa: E402
from repro.p2p.config import SystemConfig  # noqa: E402
from repro.p2p.system import P2PSystem  # noqa: E402
from repro.scenarios import (  # noqa: E402
    CostShock,
    FlashCrowd,
    ScenarioSpec,
    apply_event,
    compile_timeline,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_slot_pipeline.json"
EPSILON = 0.01  # the system config's default bidding increment

#: Scenario matrix.  ``n_peers`` drives scale; ``churn`` exercises the
#: arrival/departure path; ``overrides`` go into SystemConfig.bench.
#: ``gauss_seidel`` additionally runs the sequential reference solver
#: (only at scales where its Python loop stays reasonable).
#: ``reference=False`` skips every seed-path ("old") timing — the
#: 10k-peer tier would otherwise spend minutes in the per-request /
#: per-edge reference loops just to reproduce a known ratio; its rows
#: carry the columnar-path and warm-start columns only.
SCENARIOS: Dict[str, dict] = {
    "static-small": dict(n_peers=200, slots=3, churn=False, overrides={}, gauss_seidel=True),
    "static-medium": dict(n_peers=2000, slots=3, churn=False, overrides={}, gauss_seidel=True),
    "static-large": dict(n_peers=5000, slots=2, churn=False, overrides={}, gauss_seidel=False),
    "static-xlarge": dict(
        n_peers=10_000, slots=2, churn=False, overrides={},
        gauss_seidel=False, reference=False,
    ),
    # 50k tier (``make bench-xxl``): the scaling-curve anchor for the
    # region-sharded solve path.  Reference-free like every 10k+ tier.
    "static-xxl": dict(
        n_peers=50_000, slots=2, churn=False, overrides={},
        gauss_seidel=False, reference=False,
    ),
    "churn-medium": dict(
        n_peers=2000, slots=3, churn=True,
        overrides=dict(arrival_rate_per_s=1.0, early_departure_prob=0.3),
        gauss_seidel=False,
    ),
    "multivideo-medium": dict(
        n_peers=2000, slots=3, churn=False,
        overrides=dict(n_videos=60), gauss_seidel=False,
    ),
    # Scenario rows: a scenario-engine timeline reshapes the workload
    # *between* measured slots (events due by a boundary are applied
    # there, as ScenarioRunner does), so the pipeline is timed on
    # regime-change slots instead of steady state.  The spec below only
    # contributes its compiled event trace; population/config come from
    # the row, like every other bench scenario.
    "flashcrowd-medium": dict(
        n_peers=2000, slots=3, churn=False, overrides={},
        gauss_seidel=False,
        scenario_spec=ScenarioSpec(
            name="bench-flash-crowd",
            description="400-peer burst onto one title mid-measurement",
            scale="bench",
            events=(
                FlashCrowd(
                    time=15.0, n_peers=400, over_seconds=5.0, video_id=0
                ),
            ),
        ),
    ),
    "priceshock-medium": dict(
        n_peers=2000, slots=3, churn=False, overrides={},
        gauss_seidel=False,
        scenario_spec=ScenarioSpec(
            name="bench-price-shock",
            description="inter-ISP transit ×3 mid-measurement "
            "(candidate-cost caches invalidated)",
            scale="bench",
            events=(CostShock(time=15.0, factor=3.0),),
        ),
    ),
    # Lossy row: the link-condition table stays degraded for the whole
    # run, so the timed apply pays the Bernoulli loss draw, failure
    # split and retry-queue push on every slot, and the timed build
    # pays the pending-retry request suppression.  ``reference=False``
    # because the seed apply path has no link model to compare against.
    "lossy-medium": dict(
        n_peers=2000, slots=3, churn=False, overrides={},
        gauss_seidel=False, reference=False, link_preset="loss10",
    ),
}
DEFAULT_SCENARIOS = [
    "static-small", "static-medium", "churn-medium", "multivideo-medium",
    "flashcrowd-medium", "priceshock-medium", "lossy-medium", "static-large",
]
#: The 5k/10k tier (``make bench-xl``); static-large also runs in the
#: default set so the committed JSON always carries a 5k-peer row.
XL_SCENARIOS = ["static-large", "static-xlarge"]
#: The 50k tier (``make bench-xxl``) runs the whole scaling curve so the
#: peers-vs-``slot_new_s`` table in benchmarks/README.md regenerates
#: from one JSON.
XXL_SCENARIOS = ["static-large", "static-xlarge", "static-xxl"]


def legacy_dense(problem: SchedulingProblem) -> DenseView:
    """The seed revision's ``dense()`` expansion (per-request Python loop).

    Kept here verbatim so the "before" timing reflects what the seed
    jacobi solver actually paid to build its padded view; the library's
    ``dense()`` is now a vectorized scatter and would understate it.
    """
    uploaders = np.fromiter((int(u) for u in problem.uploaders()), dtype=np.int64)
    index_of = {int(u): i for i, u in enumerate(uploaders)}
    capacity = np.fromiter(
        (problem.capacity_of(int(u)) for u in uploaders), dtype=np.int64
    )
    n = problem.n_requests
    k = max((len(problem.candidates_of(r)) for r in range(n)), default=0)
    values = np.full((n, max(k, 1)), -np.inf, dtype=float)
    uploader_index = np.full((n, max(k, 1)), -1, dtype=np.int64)
    for r in range(n):
        cands = problem.candidates_of(r)
        m = len(cands)
        if m == 0:
            continue
        values[r, :m] = problem.request(r).valuation - problem.costs_of(r)
        uploader_index[r, :m] = [index_of[int(u)] for u in cands]
    return DenseView(
        values=values,
        uploader_index=uploader_index,
        uploaders=uploaders,
        capacity=capacity,
    )


#: Inline script executed against a *seed-revision checkout* (its ``src``
#: on sys.path) to record the true pre-PR numbers in a clean interpreter.
#: argv: [src_path, spec_json, seed, slots]
_SEED_SNIPPET = r"""
import json, sys, time
sys.path.insert(0, sys.argv[1])
spec = json.loads(sys.argv[2])
seed, slots, repeats = int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem
from repro.core.auction import AuctionSolver

config = SystemConfig.bench(seed=seed, bid_rounds_per_slot=1, **spec["overrides"])
system = P2PSystem(config)
system.populate_static(spec["n_peers"])
churn = spec["churn"]
system.run_slot(churn=churn, remove_finished=churn)
rows = []
for _ in range(slots):
    t = system.now
    if churn:
        system._process_departures(t, remove_finished=True)
        system._admit_arrivals(t)
        system._collect_arrivals_during(t, t + system.config.slot_seconds)
    system._refill_neighbors()
    budgets = {p.peer_id: p.upload_capacity_chunks for p in system.peers.values()}
    build_s = solve_s = float("inf")
    for _rep in range(repeats):
        t0 = time.perf_counter()
        problem, _ = system.build_problem(t, capacities=budgets)
        t1 = time.perf_counter()
        result = AuctionSolver(epsilon=0.01, mode="jacobi").solve(problem)
        t2 = time.perf_counter()
        build_s = min(build_s, t1 - t0)
        solve_s = min(solve_s, t2 - t1)
    rows.append(dict(
        build_s=build_s, solve_s=solve_s,
        n_requests=problem.n_requests, n_edges=problem.n_edges(),
        welfare=result.welfare(problem),
    ))
    system._apply_transfers(problem, result)
    system._advance_playback(t + system.config.slot_seconds)
    system.now = t + system.config.slot_seconds
    system.slot_index += 1
print(json.dumps(rows))
"""


def measure_seed_revision(
    seed_src: pathlib.Path, spec: dict, seed: int, slots: int, repeats: int = 3
) -> dict:
    """Run the seed revision's build+solve in a subprocess; aggregate."""
    out = subprocess.run(
        [
            sys.executable, "-c", _SEED_SNIPPET,
            str(seed_src), json.dumps({k: spec[k] for k in ("n_peers", "churn", "overrides")}),
            str(seed), str(slots), str(repeats),
        ],
        capture_output=True, text=True, check=True,
    )
    rows = json.loads(out.stdout.strip().splitlines()[-1])
    return dict(
        build_s=float(sum(r["build_s"] for r in rows)),
        solve_s=float(sum(r["solve_s"] for r in rows)),
        slot_s=float(sum(r["build_s"] + r["solve_s"] for r in rows)),
        n_requests_mean=float(np.mean([r["n_requests"] for r in rows])),
        n_edges_mean=float(np.mean([r["n_edges"] for r in rows])),
        slot_rows=rows,
    )


def assert_identical_problem(a: SchedulingProblem, b: SchedulingProblem) -> None:
    """Byte-identity of two column-path problems (live bench guard).

    Both sides come from the same producer ordering, so the flat CSR
    columns are directly comparable — no canonicalization needed.  The
    property suite pins the same invariant across whole trajectories;
    this inline check makes every published ``build_delta_s`` number
    self-certifying.
    """
    assert a.n_requests == b.n_requests
    assert a.n_edges() == b.n_edges()
    ac, bc = a.csr(), b.csr()
    assert np.array_equal(ac.uploaders, bc.uploaders)
    assert np.array_equal(ac.capacity, bc.capacity)
    assert np.array_equal(a.request_peer_array(), b.request_peer_array())
    if a.n_requests:
        assert np.array_equal(a.chunk_pair_array(), b.chunk_pair_array())
    assert np.array_equal(ac.indptr, bc.indptr)
    assert np.array_equal(ac.values, bc.values)
    assert np.array_equal(ac.uploader_index, bc.uploader_index)


def snapshot_transfer_state(system: P2PSystem, problem, result) -> dict:
    """Save the state `_apply_transfers` will touch (peers on served edges).

    Reaches into buffer internals on purpose: the harness must restore
    bit-identical state between repeats without paying a full-system
    deep copy.
    """
    indices, uploaders = result.served_pairs()
    touched = set(problem.request_peer_array()[indices].tolist())
    touched |= set(uploaders.tolist())
    peers = {}
    for pid in touched:
        peer = system.peers[pid]
        peers[pid] = (
            peer.buffer._mask.copy(),
            len(peer.buffer),
            peer.chunks_downloaded,
            peer.chunks_uploaded,
            peer.first_delivery_time,
        )
    # Under lossy link conditions the apply path additionally draws
    # from the link-conditions RNG, pushes failures into the retry
    # queue and bumps the per-slot failure/delay accumulators — all of
    # which must rewind between repeats or min-of-N timings would see
    # different loss draws (and a growing queue) on every repeat.
    return dict(
        peers=peers,
        traffic=system.traffic_matrix._counts.copy(),
        retry=system.retry_queue.snapshot(),
        link_rng=system._link_rng.bit_generator.state,
        slot_failed=system._slot_transfers_failed,
        slot_delay=system._slot_link_delay_ms,
    )


def restore_transfer_state(system: P2PSystem, snap: dict) -> None:
    for pid, (mask, count, downloaded, uploaded, first) in snap["peers"].items():
        peer = system.peers[pid]
        peer.buffer._mask[:] = mask
        peer.buffer._count = count
        peer.chunks_downloaded = downloaded
        peer.chunks_uploaded = uploaded
        peer.first_delivery_time = first
    system.traffic_matrix._counts[:] = snap["traffic"]
    system.retry_queue.restore(snap["retry"])
    system._link_rng.bit_generator.state = snap["link_rng"]
    system._slot_transfers_failed = snap["slot_failed"]
    system._slot_link_delay_ms = snap["slot_delay"]


def snapshot_playback_state(system: P2PSystem) -> dict:
    return {
        pid: (
            peer.session.position,
            peer.session.played,
            set(peer.session.missed),
            peer.session._last_advance,
        )
        for pid, peer in system.peers.items()
        if peer.session is not None
    }


def restore_playback_state(system: P2PSystem, snap: dict) -> None:
    for pid, (position, played, missed, last_advance) in snap.items():
        session = system.peers[pid].session
        session.position = position
        session.played = played
        session.missed = set(missed)
        session._last_advance = last_advance
    # The store's playback columns no longer match the session objects;
    # force the next assemble to resync (the harness trusts sessions for
    # the delta-timing block, so out-of-band rewinds must be declared).
    system.store.mark_sessions_dirty()


def advance_playback_reference(system: P2PSystem, to_time: float):
    """The seed revision's playback phase: per-chunk while loop per session."""
    due = 0
    missed = 0
    for peer in system.peers.values():
        if peer.session is None or peer.session.start_time >= to_time:
            continue
        stats = peer.session.advance_to_reference(to_time)
        due += stats.due
        missed += stats.missed
    return due, missed


def timed_apply_new_only(system: P2PSystem, problem, result, repeats: int):
    """Min-of-N timing of the vectorized apply alone (reference-free tier).

    Returns ``(apply_new_s, (inter, intra))``; the effect is left
    applied exactly once.
    """
    snap = snapshot_transfer_state(system, problem, result)
    apply_new = float("inf")
    outcome = None
    for rep in range(repeats):
        t0 = time.perf_counter()
        outcome = system._apply_transfers(problem, result)
        t1 = time.perf_counter()
        apply_new = min(apply_new, t1 - t0)
        if rep < repeats - 1:
            restore_transfer_state(system, snap)
    return apply_new, outcome


def timed_playback_new_only(system: P2PSystem, to_time: float, repeats: int):
    """Min-of-N timing of the batched playback alone (reference-free tier)."""
    snap = snapshot_playback_state(system)
    playback_new = float("inf")
    for rep in range(repeats):
        t0 = time.perf_counter()
        system._advance_playback(to_time)
        t1 = time.perf_counter()
        playback_new = min(playback_new, t1 - t0)
        if rep < repeats - 1:
            restore_playback_state(system, snap)
    return playback_new


def timed_apply(system: P2PSystem, problem, result, repeats: int):
    """Min-of-N timings of both apply paths on identical state.

    Returns ``(apply_old_s, apply_new_s, (inter, intra))``; the new
    path's effect is left applied exactly once.
    """
    snap = snapshot_transfer_state(system, problem, result)
    apply_old = apply_new = float("inf")
    outcome = None
    for rep in range(repeats):
        t0 = time.perf_counter()
        pair_old = system._apply_transfers_reference(problem, result)
        t1 = time.perf_counter()
        restore_transfer_state(system, snap)
        t2 = time.perf_counter()
        outcome = system._apply_transfers(problem, result)
        t3 = time.perf_counter()
        assert outcome == pair_old
        apply_old = min(apply_old, t1 - t0)
        apply_new = min(apply_new, t3 - t2)
        if rep < repeats - 1:
            restore_transfer_state(system, snap)
    return apply_old, apply_new, outcome


def timed_playback(system: P2PSystem, to_time: float, repeats: int):
    """Min-of-N timings of both playback paths on identical state.

    Returns ``(playback_old_s, playback_new_s)``; the batched path's
    effect is left applied exactly once.
    """
    snap = snapshot_playback_state(system)
    playback_old = playback_new = float("inf")
    for rep in range(repeats):
        t0 = time.perf_counter()
        pair_old = advance_playback_reference(system, to_time)
        t1 = time.perf_counter()
        restore_playback_state(system, snap)
        t2 = time.perf_counter()
        pair_new = system._advance_playback(to_time)
        t3 = time.perf_counter()
        assert pair_new == pair_old
        playback_old = min(playback_old, t1 - t0)
        playback_new = min(playback_new, t3 - t2)
        if rep < repeats - 1:
            restore_playback_state(system, snap)
    return playback_old, playback_new


def build_system(spec: dict, seed: int) -> P2PSystem:
    config = SystemConfig.bench(
        seed=seed, bid_rounds_per_slot=1, **spec["overrides"]
    )
    system = P2PSystem(config)
    system.populate_static(spec["n_peers"])
    if spec.get("link_preset"):
        # Degrade before the warm-up slot so the measured slots start
        # with a realistically populated retry queue.
        system.apply_link_preset(spec["link_preset"])
    return system


def bench_scenario(name: str, spec: dict, seed: int = 0, slots: Optional[int] = None,
                   verbose: bool = True, repeats: int = 3, workers: int = 4) -> dict:
    n_slots = spec["slots"] if slots is None else slots
    if n_slots < 1:
        raise ValueError(f"need at least one measured slot, got {n_slots!r}")
    system = build_system(spec, seed)
    churn = spec["churn"]

    # Warm-up slot: populates the pairwise cost cache so neither build
    # path pays the sampling cost inside the timed region, and fills
    # buffers so the measured slots look like steady state.
    system.run_slot(churn=churn, remove_finished=churn)

    # Incremental-build pipeline: record store mutations from here on
    # and prime the reuse caches with one untimed patch, so the measured
    # slots time the steady state run_slot(incremental_build=True)
    # reaches after its first (cold) build.  The priming delta is empty
    # (recording just started) — the caches self-validate, so this only
    # installs the retained CSR the measured patches splice forward.
    system.store.enable_delta_recording()
    system.store.trust_sessions()
    prime_delta = system.store.consume_delta()
    prime_problem, _ = system.build_problem(system.now)
    prev_problem_delta = system.patch_problem(
        prime_problem, prime_delta, system.now
    )

    # Region-sharded solve path: a persistent solver (as the live
    # ``sharded_solve=True`` scheduler keeps one) so the row-partition
    # cache behaves as it does across real slots.  One shard per ISP —
    # the ``shard_count=0`` system default.
    sharded_solver = ShardedAuctionSolver(
        epsilon=EPSILON, n_shards=system.config.n_isps
    )
    # Parallel sharded solve: the same region partition dispatched to a
    # persistent multiprocess worker pool over shared-memory blocks.
    # Byte-identity against the in-process sharded result is asserted
    # on every measured slot, so every published ``par_solve_s`` is
    # self-certifying.  ``procs=0`` (or no shared memory on the host)
    # skips the parallel columns entirely.
    procs = workers if workers > 0 and workers_available() else 0
    par_solver = (
        ShardedAuctionSolver(
            epsilon=EPSILON, n_shards=system.config.n_isps, n_workers=procs
        )
        if procs
        else None
    )

    reference = spec.get("reference", True)
    scenario_spec = spec.get("scenario_spec")
    timeline = (
        compile_timeline(scenario_spec, seed) if scenario_spec is not None else []
    )
    next_event = 0
    outage_caps: Dict[int, List[int]] = {}
    rows: List[dict] = []
    prev_prices = None
    try:
        for _ in range(n_slots):
            t = system.now
            if churn:
                system._process_departures(t, remove_finished=True)
                system._admit_arrivals(t)
                system._collect_arrivals_during(t, t + system.config.slot_seconds)
            while next_event < len(timeline) and timeline[next_event].time <= t:
                apply_event(system, timeline[next_event], outage_caps)
                next_event += 1
            system._refill_neighbors()
            # The retry sweep runs outside the timed region, as run_slot
            # would: it drains due retries left by the previous slot's
            # (single real) apply, so each measured build sees the pending
            # set the live pipeline would.  No-op for ideal rows.
            system._slot_transfers_failed = 0
            system._slot_link_delay_ms = 0.0
            system._process_retries(t)
            budgets = {
                p.peer_id: p.upload_capacity_chunks for p in system.peers.values()
                if p.upload_capacity_chunks > 0
            }

            # Min-of-N per phase suppresses scheduler noise; every repeat
            # rebuilds fresh problem objects so cached views never leak
            # from one timing into another.  The warm-started solve gets its
            # own fresh problem per repeat for the same reason — its timing
            # is directly comparable to solve_new_s (both pay the CSR and
            # reverse-index builds themselves).
            build_old = build_new = solve_old = solve_new = float("inf")
            sharded_solve = float("inf")
            par_solve = float("inf") if par_solver is not None else None
            result_par = None
            warm_solve = float("inf") if prev_prices is not None else None
            result_old = None
            for _rep in range(repeats):
                if reference:
                    t0 = time.perf_counter()
                    problem_old, _ = system.build_problem_reference(t, capacities=budgets)
                    t1 = time.perf_counter()
                    build_old = min(build_old, t1 - t0)
                t2 = time.perf_counter()
                problem_new, _ = system.build_problem(t, capacities=budgets)
                t3 = time.perf_counter()
                build_new = min(build_new, t3 - t2)
                if reference:
                    assert problem_old.n_requests == problem_new.n_requests
                    assert problem_old.n_edges() == problem_new.n_edges()
                    # Seed solve: padded dense expansion (as the seed built
                    # it) + dense jacobi.  The expansion is timed because the
                    # seed solver paid for it on every fresh problem.
                    t4 = time.perf_counter()
                    legacy_dense(problem_old)
                    solver_old = AuctionSolver(epsilon=EPSILON, mode="jacobi-dense")
                    result_old = solver_old.solve(problem_old)
                    t5 = time.perf_counter()
                    solve_old = min(solve_old, t5 - t4)
                t6 = time.perf_counter()
                solver_new = AuctionSolver(epsilon=EPSILON, mode="jacobi")
                result_new = solver_new.solve(problem_new)
                t7 = time.perf_counter()
                solve_new = min(solve_new, t7 - t6)
                # Sharded solve on its own fresh problem (pays the CSR build
                # like the cold solve); the region gather and partition are
                # part of the path, so they sit inside the timed region.
                problem_shard, _ = system.build_problem(t, capacities=budgets)
                ts0 = time.perf_counter()
                regions = system.store.regions_of(
                    problem_shard.request_peer_array()
                )
                result_shard = sharded_solver.solve(problem_shard, regions)
                ts1 = time.perf_counter()
                sharded_solve = min(sharded_solve, ts1 - ts0)
                if par_solver is not None:
                    # Same path, dispatched to the worker pool; pays the
                    # region gather, block publish, pipe round-trips and
                    # merge inside the timed region.
                    problem_par, _ = system.build_problem(t, capacities=budgets)
                    tp0 = time.perf_counter()
                    regions_par = system.store.regions_of(
                        problem_par.request_peer_array()
                    )
                    result_par = par_solver.solve(problem_par, regions_par)
                    tp1 = time.perf_counter()
                    par_solve = min(par_solve, tp1 - tp0)
                if prev_prices is not None:
                    problem_warm, _ = system.build_problem(t, capacities=budgets)
                    t8 = time.perf_counter()
                    AuctionSolver(epsilon=EPSILON, mode="jacobi").solve(
                        problem_warm, initial_prices=prev_prices
                    )
                    t9 = time.perf_counter()
                    warm_solve = min(warm_solve, t9 - t8)

            # Incremental build: patch the retained problem forward with the
            # delta accumulated since the previous slot's build.  The delta
            # is consumed once; repeats restore the reuse caches (snapshotted
            # by reference) so every repeat splices from identical state.
            # The retry-suppression diff surfaces on the first patch only —
            # later repeats see the queue version already consumed, which is
            # exactly the once-per-slot behavior of the live pipeline.
            delta = system.store.consume_delta()
            dsnap = system.store.snapshot_delta_state()
            build_delta = float("inf")
            problem_delta = None
            for _rep in range(repeats):
                if _rep:
                    system.store.restore_delta_state(dsnap)
                td0 = time.perf_counter()
                problem_delta = system.patch_problem(
                    prev_problem_delta, delta, t, capacities=budgets
                )
                td1 = time.perf_counter()
                build_delta = min(build_delta, td1 - td0)
            assert_identical_problem(problem_new, problem_delta)
            prev_problem_delta = problem_delta

            welfare_old = result_old.welfare(problem_old) if reference else None
            welfare_new = result_new.welfare(problem_new)
            n_eps = problem_new.n_requests * EPSILON

            # Live certificate for the sharded path, asserted on every
            # measured slot: the merged assignment must be feasible and its
            # welfare within the auction's own n·ε bound of the flat solve.
            result_shard.check_feasible(problem_shard)
            welfare_sharded = result_shard.welfare(problem_shard)
            assert abs(welfare_new - welfare_sharded) <= n_eps + 1e-6, (
                f"sharded welfare gap {abs(welfare_new - welfare_sharded)} "
                f"exceeds n·ε = {n_eps} ({sharded_solver.last_report})"
            )
            if par_solver is not None:
                # Live parity gate: the pool's merged result must be
                # byte-identical to the in-process sharded solve on every
                # measured slot — the speedup column is meaningless if the
                # parallel path computed something else.
                assert np.array_equal(
                    result_par.assignment_array(), result_shard.assignment_array()
                )
                assert np.array_equal(
                    result_par.price_arrays()[0], result_shard.price_arrays()[0]
                )
                assert np.array_equal(
                    result_par.price_arrays()[1], result_shard.price_arrays()[1]
                )
                assert np.array_equal(
                    result_par.eta_arrays()[1], result_shard.eta_arrays()[1]
                )
                assert result_par.stats == result_shard.stats

            gs_welfare = None
            if spec["gauss_seidel"]:
                gs = AuctionSolver(epsilon=EPSILON, mode="gauss-seidel").solve(problem_new)
                gs_welfare = gs.welfare(problem_new)

            if reference:
                apply_old, apply_new, (inter, intra) = timed_apply(
                    system, problem_new, result_new, repeats
                )
                playback_old, playback_new = timed_playback(
                    system, t + system.config.slot_seconds, repeats
                )
            else:
                apply_old = playback_old = None
                apply_new, (inter, intra) = timed_apply_new_only(
                    system, problem_new, result_new, repeats
                )
                playback_new = timed_playback_new_only(
                    system, t + system.config.slot_seconds, repeats
                )

            rows.append(dict(
                n_peers=len(system.peers),
                n_requests=problem_new.n_requests,
                n_edges=problem_new.n_edges(),
                build_old_s=build_old if reference else None,
                build_new_s=build_new,
                build_delta_s=build_delta,
                solve_old_s=solve_old if reference else None,
                solve_new_s=solve_new,
                sharded_solve_s=sharded_solve,
                par_solve_s=par_solve,
                procs=(
                    par_solver.last_report.procs if par_solver is not None else 0
                ),
                warm_solve_s=warm_solve,
                apply_old_s=apply_old,
                apply_s=apply_new,
                playback_old_s=playback_old,
                playback_s=playback_new,
                welfare_old=welfare_old,
                welfare_new=welfare_new,
                welfare_sharded=welfare_sharded,
                sharded_fallback=sharded_solver.last_report.fallback,
                sharded_coordination_rounds=(
                    sharded_solver.last_report.coordination_rounds
                ),
                sharded_boundary_uploaders=(
                    sharded_solver.last_report.n_boundary_uploaders
                ),
                gs_welfare=gs_welfare,
                n_eps_bound=n_eps,
                inter_isp=inter,
                intra_isp=intra,
            ))
            # Next slot's warm start: this slot's converged prices, decayed
            # exactly as run_slot carries them over a slot boundary (raw
            # carry overprices transiently scarce uploaders — the decayed
            # vector is what warm_start_across_slots actually feeds in).
            prev_prices = result_new.price_arrays()
            decay = system.config.warm_price_decay
            if prev_prices is not None and decay != 1.0:
                prev_prices = decay_prices(
                    prev_prices[0], prev_prices[1], decay, EPSILON
                )
            system.now = t + system.config.slot_seconds
            system.slot_index += 1

    finally:
        # The pool owns shared-memory segments and child processes;
        # unlink/terminate them even when a parity assert trips.
        if par_solver is not None:
            par_solver.close()

    def total(key):
        vals = [row[key] for row in rows if row[key] is not None]
        return float(sum(vals)) if vals else None

    def ratio(old, new):
        if old is None or new is None:
            return None
        return old / new if new else float("inf")

    build_old, build_new = total("build_old_s"), total("build_new_s")
    solve_old, solve_new = total("solve_old_s"), total("solve_new_s")
    slot_old = build_old + solve_old if reference else None
    slot_new = build_new + solve_new
    # Incremental-mode slot: patched build + the solve that mode pairs
    # with (warm-started where a previous slot's λ exists, cold on the
    # first measured slot).
    build_delta_total = total("build_delta_s")
    slot_delta = float(sum(
        row["build_delta_s"] + (
            row["warm_solve_s"]
            if row["warm_solve_s"] is not None
            else row["solve_new_s"]
        )
        for row in rows
    ))
    welfare_gap = (
        max(abs(row["welfare_old"] - row["welfare_new"]) for row in rows)
        if reference
        else None
    )
    gs_gap = None
    if spec["gauss_seidel"]:
        gs_gap = max(abs(row["gs_welfare"] - row["welfare_new"]) for row in rows)

    # Sharded-path aggregates: the composed sharded slot pairs the
    # patched (delta) build with the region-sharded solve, mirroring
    # what a live system with sharded_solve=True actually runs.
    sharded_total = total("sharded_solve_s")
    slot_sharded = (
        build_delta_total + sharded_total
        if build_delta_total is not None and sharded_total is not None
        else None
    )
    sharded_gap = max(
        abs(row["welfare_new"] - row["welfare_sharded"]) for row in rows
    )

    # Parallel aggregates: speedup is against the in-process sharded
    # solve (same partition, same math — the pool only changes *where*
    # the shard solves run).  Fallback counts are reason-coded; a
    # nonzero total means some slots degraded to the sequential path.
    par_total = total("par_solve_s")
    par_speedup = ratio(sharded_total, par_total)
    par_fallbacks = (
        {k: int(v) for k, v in sorted(par_solver.worker_fallbacks.items())}
        if par_solver is not None
        else None
    )

    # Warm rows exclude the first slot (nothing to warm-start from), so
    # the speedup compares against the cold solve on the same slots.
    warm_total = total("warm_solve_s")
    cold_on_warm_slots = [
        row["solve_new_s"] for row in rows if row["warm_solve_s"] is not None
    ]
    warm_speedup = (
        float(sum(cold_on_warm_slots)) / warm_total
        if warm_total
        else None
    )

    summary = dict(
        n_peers=rows[-1]["n_peers"],
        slots=len(rows),
        n_requests_mean=float(np.mean([r["n_requests"] for r in rows])),
        n_edges_mean=float(np.mean([r["n_edges"] for r in rows])),
        reference_measured=reference,
        build_old_s=build_old,
        build_new_s=build_new,
        build_speedup=ratio(build_old, build_new),
        build_delta_s=build_delta_total,
        delta_speedup=ratio(build_new, build_delta_total),
        solve_old_s=solve_old,
        solve_new_s=solve_new,
        solve_speedup=ratio(solve_old, solve_new),
        warm_solve_s=warm_total,
        warm_speedup=warm_speedup,
        slot_old_s=slot_old,
        slot_new_s=slot_new,
        slot_speedup=ratio(slot_old, slot_new),
        slot_delta_s=slot_delta,
        slot_delta_speedup=ratio(slot_new, slot_delta),
        sharded_solve_s=sharded_total,
        sharded_solve_speedup=ratio(solve_new, sharded_total),
        slot_sharded_s=slot_sharded,
        slot_sharded_speedup=ratio(slot_new, slot_sharded),
        procs=procs,
        par_solve_s=par_total,
        par_speedup=par_speedup,
        par_fallbacks=par_fallbacks,
        sharded_welfare_gap_max=sharded_gap,
        sharded_within_n_eps=bool(
            sharded_gap <= max(row["n_eps_bound"] for row in rows) + 1e-6
        ),
        sharded_n_shards=system.config.n_isps,
        apply_old_s=total("apply_old_s"),
        apply_s=total("apply_s"),
        apply_speedup=ratio(total("apply_old_s"), total("apply_s")),
        playback_old_s=total("playback_old_s"),
        playback_s=total("playback_s"),
        playback_speedup=ratio(total("playback_old_s"), total("playback_s")),
        welfare_gap_max=welfare_gap,
        n_eps_bound=float(max(row["n_eps_bound"] for row in rows)),
        welfare_within_n_eps=(
            bool(welfare_gap <= max(row["n_eps_bound"] for row in rows) + 1e-6)
            if reference
            else None
        ),
        gauss_seidel_gap_max=gs_gap,
        slot_rows=rows,
    )
    if verbose:
        def fmt(value, pattern="{:.3f}s"):
            return pattern.format(value) if value is not None else "–"

        def fmt_x(value):
            return f"{value:.1f}×" if value is not None else "–"

        warm_note = (
            f" | warm solve {fmt(warm_total)} ({fmt_x(warm_speedup)})"
            if warm_total is not None
            else ""
        )
        gap_note = (
            f" | welfare gap {welfare_gap:.2e} (n·ε = {summary['n_eps_bound']:.2f})"
            if welfare_gap is not None
            else ""
        )
        par_note = (
            f" | par solve {fmt(par_total)} "
            f"({fmt_x(par_speedup)} vs sharded, procs={procs}, "
            f"fallbacks={sum(par_fallbacks.values())})"
            if par_total is not None
            else ""
        )
        print(
            f"[{name}] peers={summary['n_peers']} "
            f"requests≈{summary['n_requests_mean']:.0f} "
            f"edges≈{summary['n_edges_mean']:.0f} | "
            f"build {fmt(build_old)} → {fmt(build_new)} "
            f"({fmt_x(summary['build_speedup'])}) | "
            f"delta build {fmt(build_delta_total)} "
            f"({fmt_x(summary['delta_speedup'])} vs cold, "
            f"slot {fmt_x(summary['slot_delta_speedup'])}) | "
            f"solve {fmt(solve_old)} → {fmt(solve_new)} "
            f"({fmt_x(summary['solve_speedup'])}) | "
            f"slot {fmt_x(summary['slot_speedup'])} | "
            f"apply {fmt(summary['apply_old_s'])} → {fmt(summary['apply_s'])} "
            f"({fmt_x(summary['apply_speedup'])}) | "
            f"playback {fmt(summary['playback_old_s'])} → "
            f"{fmt(summary['playback_s'])} "
            f"({fmt_x(summary['playback_speedup'])})"
            f"{warm_note}{gap_note} | "
            f"sharded solve {fmt(sharded_total)} "
            f"(slot {fmt_x(summary['slot_sharded_speedup'])}, "
            f"gap {sharded_gap:.2e})"
            f"{par_note}"
        )
    return summary


def run(scenario_names: List[str], seed: int = 0, slots: Optional[int] = None,
        output: Optional[pathlib.Path] = DEFAULT_OUTPUT, verbose: bool = True,
        seed_src: Optional[pathlib.Path] = None, workers: int = 4) -> dict:
    report = {
        "benchmark": "slot_pipeline",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "epsilon": EPSILON,
        "seed_revision_measured": seed_src is not None,
        "scenarios": {},
    }
    for name in scenario_names:
        spec = SCENARIOS[name]
        summary = bench_scenario(
            name, spec, seed=seed, slots=slots, verbose=verbose, workers=workers
        )
        if seed_src is not None:
            baseline = measure_seed_revision(
                seed_src, spec, seed, slots if slots is not None else spec["slots"]
            )
            summary["seed_revision"] = baseline
            summary["slot_speedup_vs_seed_revision"] = (
                baseline["slot_s"] / summary["slot_new_s"]
                if summary["slot_new_s"] else float("inf")
            )
            if verbose:
                print(
                    f"[{name}] seed revision slot {baseline['slot_s']:.3f}s → "
                    f"{summary['slot_new_s']:.3f}s "
                    f"({summary['slot_speedup_vs_seed_revision']:.1f}× vs seed)"
                )
        report["scenarios"][name] = summary
    if output is not None:
        output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        if verbose:
            print(f"wrote {output}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenarios", nargs="+", choices=sorted(SCENARIOS), default=DEFAULT_SCENARIOS,
        help=f"scenario subset (default: {' '.join(DEFAULT_SCENARIOS)})",
    )
    parser.add_argument("--all", action="store_true", help="run every scenario incl. large")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers", type=int, default=4,
        help="shard-worker processes for the parallel solve columns "
        "(0 disables them; ignored where shared memory is unavailable)",
    )
    parser.add_argument("--slots", type=int, default=None, help="override measured slots per scenario")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--no-output", action="store_true", help="skip writing the JSON")
    parser.add_argument(
        "--seed-src", type=pathlib.Path, default=None,
        help="path to a seed-revision checkout's src/ — also measures the "
        "true pre-PR numbers there (e.g. a `git worktree add` of the seed commit)",
    )
    args = parser.parse_args(argv)
    if args.slots is not None and args.slots < 1:
        parser.error("--slots must be >= 1")
    names = sorted(SCENARIOS) if args.all else args.scenarios
    if args.workers < 0:
        parser.error("--workers must be >= 0")
    run(
        names,
        seed=args.seed,
        slots=args.slots,
        output=None if args.no_output else args.output,
        seed_src=args.seed_src,
        workers=args.workers,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
