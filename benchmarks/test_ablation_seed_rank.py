"""Ablation A5 — tracker seed ranking: guaranteed vs random.

DESIGN.md §3 documents this reproduction choice: when every bootstrap
list is guaranteed to contain the (cheap, intra-ISP) seeds, inter-ISP
traffic collapses toward zero for any cost-aware protocol and Fig. 4's
comparison degenerates.  Ranking seeds at a random position — a tracker
that orders purely by advertised playback position — restores the
scarce-supply regime the paper's curves exhibit.
"""

from __future__ import annotations

from conftest import archive

from repro.metrics.report import render_table
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def run_pair():
    out = {}
    for rank in ("first", "random"):
        config = SystemConfig.bench(seed=3, tracker_seed_rank=rank)
        system = P2PSystem(config)
        system.populate_static(200, stagger=False)
        collector = system.run(60.0)
        out[rank] = collector.totals()
    return out


def test_ablation_seed_rank(benchmark, results_dir):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = render_table(
        ["seed_rank", "welfare/slot", "inter-ISP", "miss"],
        [
            [
                rank,
                totals["welfare_mean_per_slot"],
                totals["inter_isp_fraction"],
                totals["miss_rate"],
            ]
            for rank, totals in results.items()
        ],
    )
    archive(results_dir, "ablation_seed_rank", table)

    # Guaranteed seeds ⇒ essentially no inter-ISP need; random rank ⇒ some.
    assert results["first"]["inter_isp_fraction"] <= results["random"]["inter_isp_fraction"]
    assert results["random"]["inter_isp_fraction"] > 0.0
