"""Ablation A2 — auction vs the exact oracles: welfare parity, runtime.

Numerically demonstrates Theorem 1 at benchmark scale: the distributed-
style auction (both execution modes and the ε-scaled driver) matches
three independent centralized exact solvers on the same instance.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import archive

from repro.experiments.sweep import render_solver_comparison, solver_comparison


def run_comparison():
    return solver_comparison(
        rng=np.random.default_rng(1),
        n_requests=800,
        n_uploaders=40,
        max_candidates=8,
        epsilon=0.01,
    )


def test_ablation_solvers(benchmark, results_dir):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    archive(results_dir, "ablation_solvers", render_solver_comparison(rows))

    welfare = {r.solver: r.welfare for r in rows}
    optimum = welfare["hungarian"]
    assert welfare["lp"] == pytest.approx(optimum, abs=1e-4)
    assert welfare["min-cost-flow"] == pytest.approx(optimum, abs=1e-2)
    n_eps = 800 * 0.01
    for name in ("auction-gs", "auction-jacobi", "auction-scaled"):
        assert welfare[name] >= optimum - n_eps - 1e-6, name
