"""Ablation A5 — multi-round re-bidding × warm-started prices.

The ROADMAP flagged this study as ready once warm starts landed: with
``bid_rounds_per_slot = R > 1`` each slot becomes R re-bid waves with
refreshed deadlines and 1/R budget shares, and ``warm_start_prices``
carries λ between waves (the paper's peers bid against *posted* prices).
This bench runs the moderately-contended static workload end to end per
(R, warm) cell and archives welfare + solve-time vs rounds.
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.sweep import rebid_study, render_rebid_study


def run_study():
    return rebid_study(rounds_list=(1, 2, 4, 8), seed=0)


def test_ablation_rebid(benchmark, results_dir):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    archive(results_dir, "ablation_rebid", render_rebid_study(rows))

    by_cell = {(r.rounds, r.warm): r for r in rows}
    # Re-bidding within the slot rescues deadline chunks the one-shot
    # auction misses under tight supply.
    assert by_cell[(2, False)].miss_rate < by_cell[(1, False)].miss_rate
    # Warm-started re-bid waves never do more ε-auction work than cold
    # ones — the price frontier only re-arms repriced uploaders' rows.
    for rounds in (2, 4, 8):
        warm, cold = by_cell[(rounds, True)], by_cell[(rounds, False)]
        assert warm.auction_rounds <= cold.auction_rounds
        # Price continuity must not cost welfare (CS-1 caveat shows up
        # as a large drop; small gains are the expected direction).
        assert warm.welfare_total >= 0.95 * cold.welfare_total
