"""Fig. 6(a–c) — welfare, inter-ISP traffic and miss rate under churn.

Paper: with Poisson arrivals and early departures (probability 0.6) the
auction still beats the locality protocol on all three metrics.
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.figures import fig6_peer_dynamics


def test_fig6_peer_dynamics(benchmark, results_dir):
    result = benchmark.pedantic(
        fig6_peer_dynamics,
        kwargs={"scale": "bench", "seed": 0},
        rounds=1,
        iterations=1,
    )
    archive(results_dir, "fig6", result.text)
    assert result.shape_holds, result.shape

    auction = result.series["auction"]
    locality = result.series["locality"]
    # (a) welfare: auction positive and ahead.
    assert auction["welfare"].tail_mean() > 0
    assert auction["welfare"].mean() > locality["welfare"].mean()
    # (b) inter-ISP share: auction lower.
    assert auction["inter_isp"].mean() < locality["inter_isp"].mean()
    # (c) miss rate: auction no worse.
    assert auction["miss_rate"].mean() <= locality["miss_rate"].mean() + 1e-9
