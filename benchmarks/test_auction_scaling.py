"""Microbenchmark — auction runtime scaling with instance size.

Measures the vectorized Jacobi solver on growing instances (the paper's
full scale is ~50 000 requests per slot).  pytest-benchmark reports the
distribution across rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.auction import AuctionSolver
from repro.core.problem import random_problem

SIZES = [200, 1000, 5000]


@pytest.mark.parametrize("n_requests", SIZES)
def test_jacobi_scaling(benchmark, n_requests):
    rng = np.random.default_rng(n_requests)
    problem = random_problem(
        rng,
        n_requests=n_requests,
        n_uploaders=max(10, n_requests // 20),
        max_candidates=8,
        capacity_range=(2, 8),
    )
    solver = AuctionSolver(epsilon=0.01, mode="jacobi")
    result = benchmark(solver.solve, problem)
    assert result.stats.converged


def test_hungarian_scaling_reference(benchmark):
    """Oracle runtime at the largest size, for the runtime comparison."""
    from repro.core.exact import solve_hungarian

    rng = np.random.default_rng(7)
    problem = random_problem(
        rng, n_requests=1000, n_uploaders=50, max_candidates=8, capacity_range=(2, 8)
    )
    result = benchmark(solve_hungarian, problem)
    assert result.n_served() > 0
