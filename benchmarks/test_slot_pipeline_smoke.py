"""Tier-1-safe smoke test for the slot-pipeline benchmark harness.

Runs every scenario of the matrix at tiny scale (few peers, one slot,
one repeat) so the harness itself cannot rot: scenario configs must
build, both construction paths must agree, the solvers must agree within
``n·ε``, and the report must carry every field the JSON consumers read.
No file is written.  Two real ``static-small`` runs additionally gate
the acceptance bars of the performance PRs: vectorized apply ≥ 3×,
batched playback ≥ 2×, and the event-driven frontier solve ≥ 2× over
the padded-dense seed path.
"""

from __future__ import annotations

import pytest

import bench_slot_pipeline as bench
from repro.core import workers_available

TINY_SUMMARY_FIELDS = [
    "n_peers", "slots", "n_requests_mean", "n_edges_mean",
    "reference_measured",
    "build_old_s", "build_new_s", "build_speedup",
    "build_delta_s", "delta_speedup",
    "solve_old_s", "solve_new_s", "solve_speedup",
    "warm_solve_s", "warm_speedup",
    "slot_old_s", "slot_new_s", "slot_speedup",
    "slot_delta_s", "slot_delta_speedup",
    "apply_old_s", "apply_s", "apply_speedup",
    "playback_old_s", "playback_s", "playback_speedup",
    "welfare_gap_max", "n_eps_bound", "welfare_within_n_eps",
    "sharded_solve_s", "sharded_solve_speedup",
    "slot_sharded_s", "slot_sharded_speedup",
    "sharded_welfare_gap_max", "sharded_within_n_eps", "sharded_n_shards",
    "procs", "par_solve_s", "par_speedup", "par_fallbacks",
]


@pytest.fixture(scope="module")
def tiny_specs():
    """Every scenario shrunk to smoke size (preserving churn/overrides)."""
    specs = {}
    for name, spec in bench.SCENARIOS.items():
        tiny = dict(spec)
        tiny["n_peers"] = 30
        tiny["slots"] = 1
        specs[name] = tiny
    return specs


@pytest.fixture(scope="module")
def static_small_summary():
    """One real 200-peer static-small run shared by the gate tests."""
    return bench.bench_scenario(
        "static-small", bench.SCENARIOS["static-small"], seed=0,
        slots=2, verbose=False, repeats=3, workers=0,
    )


@pytest.mark.parametrize("name", sorted(bench.SCENARIOS))
def test_scenario_smoke(name, tiny_specs):
    spec = tiny_specs[name]
    summary = bench.bench_scenario(
        name, spec, seed=1, verbose=False, repeats=1, workers=2
    )
    for field in TINY_SUMMARY_FIELDS:
        assert field in summary, field
    if workers_available():
        # The worker-pool columns ran (and the live byte-identity
        # parity assert inside bench_scenario passed) on every tier.
        assert summary["procs"] == 2
        assert summary["par_solve_s"] > 0
        assert summary["par_fallbacks"] == {}
    else:
        assert summary["procs"] == 0
        assert summary["par_solve_s"] is None
    assert summary["slots"] == 1
    assert summary["n_requests_mean"] > 0
    assert summary["build_new_s"] > 0 and summary["solve_new_s"] > 0
    # The sharded column runs on every tier (reference or not) and its
    # welfare certificate is asserted live inside bench_scenario; the
    # summary restates the bound so JSON consumers can check it too.
    assert summary["sharded_solve_s"] > 0
    assert summary["sharded_within_n_eps"]
    assert summary["sharded_n_shards"] >= 1
    # A single measured slot has nothing to warm-start from.
    assert summary["warm_solve_s"] is None
    if spec.get("reference", True):
        assert summary["reference_measured"]
        assert summary["build_old_s"] > 0 and summary["solve_old_s"] > 0
        # Old and columnar paths agree within the theorem bound.
        assert summary["welfare_within_n_eps"]
    else:
        # Reference-free tier (the 10k scenarios): seed-path columns are
        # absent by design, columnar columns must still be complete.
        assert not summary["reference_measured"]
        for field in ("build_old_s", "solve_old_s", "apply_old_s",
                      "playback_old_s", "welfare_gap_max",
                      "welfare_within_n_eps", "solve_speedup"):
            assert summary[field] is None, field
        assert summary["apply_s"] > 0 and summary["playback_s"] > 0
    if spec["gauss_seidel"]:
        assert summary["gauss_seidel_gap_max"] is not None
        assert summary["gauss_seidel_gap_max"] <= summary["n_eps_bound"] + 1e-6


def test_apply_phase_speedup_static_small(static_small_summary):
    """Vectorized apply ≥ 3× and store playback ≥ 2× over the loops.

    Runs the real ``static-small`` scenario (200 peers — big enough for
    a stable ratio, small enough for tier-1) with min-of-3 timings and
    asserts the acceptance bars of the array-native epilogue PR and,
    conservatively, of the peer-state-store PR (the full ≥3× playback
    bar is checked at 2k peers by ``make bench``, where the batch is
    large enough to be noise-free).
    """
    summary = static_small_summary
    assert summary["apply_old_s"] > 0 and summary["apply_s"] > 0
    assert summary["apply_speedup"] >= 3.0, summary["apply_speedup"]
    assert summary["playback_s"] > 0 and summary["playback_old_s"] > 0
    assert summary["playback_speedup"] >= 2.0, summary["playback_speedup"]


def test_delta_build_speedup_static_small(static_small_summary):
    """Incremental patch ≥ 2× over the cold columnar build.

    The acceptance smoke gate of the cross-slot delta PR: patching the
    retained problem forward (packed-word availability, spliced
    candidate CSR, requested-cell valuations) must beat reassembling
    from scratch even at 200 peers, where numpy fixed costs weigh
    heaviest.  Byte-identity of the patched problem is asserted inside
    ``bench_scenario`` itself on every measured slot.
    """
    summary = static_small_summary
    assert summary["build_delta_s"] > 0
    assert summary["delta_speedup"] >= 2.0, summary["delta_speedup"]
    assert summary["slot_delta_s"] > 0
    assert summary["slot_delta_speedup"] is not None


def test_solve_phase_speedup_static_small(static_small_summary):
    """Event-driven frontier solve ≥ 2× over the seed's padded-dense path.

    The acceptance bar of the frontier-solver PR, checked at tier-1
    scale (the full bar at 2k peers is tracked by ``make bench``).  The
    warm-started re-bid column must also be populated (slot 2 warms from
    slot 1) and not regress the cold solve by more than noise.
    """
    summary = static_small_summary
    assert summary["solve_old_s"] > 0 and summary["solve_new_s"] > 0
    assert summary["solve_speedup"] >= 2.0, summary["solve_speedup"]
    assert summary["warm_solve_s"] is not None and summary["warm_solve_s"] > 0
    assert summary["warm_speedup"] is not None


def test_run_writes_report(tmp_path, monkeypatch):
    monkeypatch.setitem(
        bench.SCENARIOS,
        "static-small",
        dict(bench.SCENARIOS["static-small"], n_peers=25, slots=1),
    )
    out = tmp_path / "bench.json"
    report = bench.run(
        ["static-small"], seed=2, slots=1, output=out, verbose=False
    )
    assert out.exists()
    assert report["benchmark"] == "slot_pipeline"
    assert "static-small" in report["scenarios"]


def test_sharded_slot_parity_static_large():
    """Composed sharded slot ≈ flat slot at the 5k tier.

    The acceptance smoke gate of the region-sharded PR: the sharded
    slot pairs the delta build with the region-sharded solve, and the
    delta-build savings must pay for the boundary-coordination audits.
    The measured margin at 5k is a few percent on a quiet box, so the
    gate allows 5% + 10ms of scheduler noise — wide enough not to
    flake, tight enough to catch structural regressions (a sharded
    path that falls back to a full flat solve every slot lands ~10%
    over and fails).  The correctness side has no tolerance: the n·ε
    welfare certificate is asserted on every measured slot inside
    ``bench_scenario`` and restated here.
    """
    spec = dict(bench.SCENARIOS["static-large"], reference=False)
    summary = bench.bench_scenario(
        "static-large", spec, seed=0, slots=2, verbose=False, repeats=3,
        workers=0,
    )
    assert summary["sharded_within_n_eps"]
    assert summary["sharded_welfare_gap_max"] <= summary["n_eps_bound"] + 1e-6
    assert summary["slot_sharded_s"] > 0 and summary["slot_new_s"] > 0
    assert (
        summary["slot_sharded_s"] <= summary["slot_new_s"] * 1.05 + 0.010
    ), (summary["slot_sharded_s"], summary["slot_new_s"])
    # No slot may have needed the coordination-budget bailout at 5k.
    for row in summary["slot_rows"]:
        assert row["sharded_fallback"] == "", row["sharded_fallback"]


@pytest.mark.skipif(
    not workers_available(), reason="shared memory unavailable on this platform"
)
def test_par_parity_static_large():
    """Worker-pool parity gate at the 5k tier (``make bench-par``).

    The acceptance smoke gate of the multiprocess-shard-workers PR: a
    2-worker pool must complete every measured slot at 5k peers with
    zero reason-coded fallbacks, and the per-slot byte-identity of its
    merged result against the in-process sharded solve is asserted
    live inside ``bench_scenario``.  No speedup bar here — wall-clock
    gains need physical cores, which tier-1 boxes may not have; the
    scaling curve is tracked by ``make bench-par`` instead.
    """
    spec = dict(bench.SCENARIOS["static-large"], reference=False)
    summary = bench.bench_scenario(
        "static-large", spec, seed=0, slots=2, verbose=False, repeats=1,
        workers=2,
    )
    assert summary["procs"] == 2
    assert summary["par_solve_s"] > 0
    assert summary["par_fallbacks"] == {}
    for row in summary["slot_rows"]:
        assert row["procs"] == 2, row
        assert row["par_solve_s"] > 0


def test_xl_tier_listed():
    """The 5k/10k tier names resolve to scenarios (make bench-xl)."""
    for name in bench.XL_SCENARIOS:
        assert name in bench.SCENARIOS
    assert bench.SCENARIOS["static-xlarge"]["n_peers"] >= 10_000
    assert not bench.SCENARIOS["static-xlarge"].get("reference", True)
    assert "static-large" in bench.DEFAULT_SCENARIOS


def test_xxl_tier_listed():
    """The 50k scaling-curve tier resolves (make bench-xxl)."""
    for name in bench.XXL_SCENARIOS:
        assert name in bench.SCENARIOS
    assert bench.SCENARIOS["static-xxl"]["n_peers"] >= 50_000
    assert not bench.SCENARIOS["static-xxl"].get("reference", True)
    # The curve spans the 5k → 10k → 50k anchors.
    sizes = [bench.SCENARIOS[n]["n_peers"] for n in bench.XXL_SCENARIOS]
    assert sizes == sorted(sizes) and len(sizes) >= 3


def test_legacy_dense_matches_library_dense():
    """The archived seed expansion must stay equivalent to dense()."""
    import numpy as np

    from repro.core.problem import random_problem

    p = random_problem(np.random.default_rng(3), n_requests=20, n_uploaders=5)
    a = bench.legacy_dense(p)
    b = p.dense()
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.uploader_index, b.uploader_index)
    assert np.array_equal(a.uploaders, b.uploaders)
    assert np.array_equal(a.capacity, b.capacity)
