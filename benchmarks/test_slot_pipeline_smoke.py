"""Tier-1-safe smoke test for the slot-pipeline benchmark harness.

Runs every scenario of the matrix at tiny scale (few peers, one slot,
one repeat) so the harness itself cannot rot: scenario configs must
build, both construction paths must agree, the solvers must agree within
``n·ε``, and the report must carry every field the JSON consumers read.
No file is written.
"""

from __future__ import annotations

import pytest

import bench_slot_pipeline as bench

TINY_SUMMARY_FIELDS = [
    "n_peers", "slots", "n_requests_mean", "n_edges_mean",
    "build_old_s", "build_new_s", "build_speedup",
    "solve_old_s", "solve_new_s", "solve_speedup",
    "slot_old_s", "slot_new_s", "slot_speedup",
    "apply_old_s", "apply_s", "apply_speedup",
    "playback_old_s", "playback_s", "playback_speedup",
    "welfare_gap_max", "n_eps_bound", "welfare_within_n_eps",
]


@pytest.fixture(scope="module")
def tiny_specs():
    """Every scenario shrunk to smoke size (preserving churn/overrides)."""
    specs = {}
    for name, spec in bench.SCENARIOS.items():
        tiny = dict(spec)
        tiny["n_peers"] = 30
        tiny["slots"] = 1
        specs[name] = tiny
    return specs


@pytest.mark.parametrize("name", sorted(bench.SCENARIOS))
def test_scenario_smoke(name, tiny_specs):
    summary = bench.bench_scenario(
        name, tiny_specs[name], seed=1, verbose=False, repeats=1
    )
    for field in TINY_SUMMARY_FIELDS:
        assert field in summary, field
    assert summary["slots"] == 1
    assert summary["n_requests_mean"] > 0
    assert summary["build_new_s"] > 0 and summary["build_old_s"] > 0
    # Old and columnar paths agree within the theorem bound.
    assert summary["welfare_within_n_eps"]
    if tiny_specs[name]["gauss_seidel"]:
        assert summary["gauss_seidel_gap_max"] is not None
        assert summary["gauss_seidel_gap_max"] <= summary["n_eps_bound"] + 1e-6


def test_apply_phase_speedup_static_small():
    """Vectorized apply ≥ 3× and store playback ≥ 2× over the loops.

    Runs the real ``static-small`` scenario (200 peers — big enough for
    a stable ratio, small enough for tier-1) with min-of-3 timings and
    asserts the acceptance bars of the array-native epilogue PR and,
    conservatively, of the peer-state-store PR (the full ≥3× playback
    bar is checked at 2k peers by ``make bench``, where the batch is
    large enough to be noise-free).
    """
    summary = bench.bench_scenario(
        "static-small", bench.SCENARIOS["static-small"], seed=0,
        slots=2, verbose=False, repeats=3,
    )
    assert summary["apply_old_s"] > 0 and summary["apply_s"] > 0
    assert summary["apply_speedup"] >= 3.0, summary["apply_speedup"]
    assert summary["playback_s"] > 0 and summary["playback_old_s"] > 0
    assert summary["playback_speedup"] >= 2.0, summary["playback_speedup"]


def test_run_writes_report(tmp_path, monkeypatch):
    monkeypatch.setitem(
        bench.SCENARIOS,
        "static-small",
        dict(bench.SCENARIOS["static-small"], n_peers=25, slots=1),
    )
    out = tmp_path / "bench.json"
    report = bench.run(
        ["static-small"], seed=2, slots=1, output=out, verbose=False
    )
    assert out.exists()
    assert report["benchmark"] == "slot_pipeline"
    assert "static-small" in report["scenarios"]


def test_legacy_dense_matches_library_dense():
    """The archived seed expansion must stay equivalent to dense()."""
    import numpy as np

    from repro.core.problem import random_problem

    p = random_problem(np.random.default_rng(3), n_requests=20, n_uploaders=5)
    a = bench.legacy_dense(p)
    b = p.dense()
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.uploader_index, b.uploader_index)
    assert np.array_equal(a.uploaders, b.uploaders)
    assert np.array_equal(a.capacity, b.capacity)
