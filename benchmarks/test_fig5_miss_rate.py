"""Fig. 5 — average chunk miss rate per slot, static network.

Paper: under load the auction's miss rate stays small (≈1–2 %) and below
the locality protocol's (≈4–8 %), because upload bandwidth goes to the
chunks that downstream peers value most (the most urgent deadlines).
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.figures import fig5_miss_rate


def test_fig5_miss_rate(benchmark, results_dir):
    result = benchmark.pedantic(
        fig5_miss_rate,
        kwargs={"scale": "bench", "seed": 0},
        rounds=1,
        iterations=1,
    )
    archive(results_dir, "fig5", result.text)
    assert result.shape_holds, result.shape

    auction = result.series["auction"]["miss_rate"].mean()
    locality = result.series["locality"]["miss_rate"].mean()
    # Ordering plus rough magnitudes: auction < locality, both small.
    assert auction < locality
    assert auction < 0.10
    assert locality < 0.25
