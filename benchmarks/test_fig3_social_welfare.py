"""Fig. 3 — social welfare per slot under dynamic arrivals.

Paper: with Poisson arrivals (peers stay to the end of their video) the
auction's per-slot welfare grows as the population grows; the simple
locality protocol achieves far less and can go negative, because it
ignores chunk valuations when scheduling (v − w can be negative).
"""

from __future__ import annotations

from conftest import archive

from repro.experiments.figures import fig3_social_welfare


def test_fig3_social_welfare(benchmark, results_dir):
    result = benchmark.pedantic(
        fig3_social_welfare,
        kwargs={"scale": "bench", "seed": 0},
        rounds=1,
        iterations=1,
    )
    archive(results_dir, "fig3", result.text)
    assert result.shape_holds, result.shape

    auction = result.series["auction"]["welfare"]
    locality = result.series["locality"]["welfare"]
    # Who wins and by what factor: the paper shows a many-fold gap.
    assert auction.tail_mean() > 3 * max(1.0, locality.tail_mean())
    # The locality strawman dips negative at least once (Fig. 3's hallmark).
    assert locality.values.min() < 0.0
