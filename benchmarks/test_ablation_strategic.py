"""Ablation A6 — strategic manipulation and the VCG fix (paper's future work).

The paper's conclusion: "We are improving the auction mechanism design to
enforce truthfulness of the bids in cases of selfish peers that may
manipulate the mechanism, in our ongoing work."  This bench quantifies
the manipulation gap under the paper's (payment-free) auction and shows
VCG payments close it.
"""

from __future__ import annotations

import numpy as np
from conftest import archive

from repro.core.problem import random_problem
from repro.core.strategic import manipulation_study
from repro.metrics.report import render_table

FACTORS = [0.5, 1.0, 2.0, 4.0, 8.0]


def run_study():
    rng = np.random.default_rng(3)
    problem = random_problem(
        rng, n_requests=30, n_uploaders=3, max_candidates=3, capacity_range=(1, 2)
    )
    cheater = problem.request(0).peer
    return problem, cheater, manipulation_study(problem, cheater, FACTORS)


def test_ablation_strategic(benchmark, results_dir):
    problem, cheater, rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = render_table(
        ["factor", "chunks", "auction true utility", "true welfare", "VCG net utility"],
        [
            [r.factor, r.chunks_won, r.auction_true_utility,
             r.auction_welfare, r.vcg_net_utility]
            for r in rows
        ],
    )
    archive(results_dir, "ablation_strategic", table)

    truthful = next(r for r in rows if r.factor == 1.0)
    overbids = [r for r in rows if r.factor > 1.0]
    # The paper's mechanism is manipulable: some overbid weakly helps the
    # cheater and (strictly, on this instance) hurts society.
    assert max(r.auction_true_utility for r in overbids) >= truthful.auction_true_utility
    assert min(r.auction_welfare for r in overbids) < truthful.auction_welfare
    # VCG restores truthfulness: no misreport beats truth-telling.
    for row in rows:
        assert row.vcg_net_utility <= truthful.vcg_net_utility + 1e-9
