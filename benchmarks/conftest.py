"""Shared helpers for the benchmark harness.

Each figure bench runs its experiment once (``benchmark.pedantic`` with a
single round — these are minutes-scale simulations, not microbenchmarks),
prints the same series the paper plots, asserts the paper's qualitative
shape, and archives the text under ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def archive(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a result block and save it under results/<name>.txt."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
