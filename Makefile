PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench bench-quick bench-all

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_slot_pipeline.py

bench-quick:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --scenarios static-small --no-output

bench-all:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --all
