PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-props bench bench-quick bench-all bench-xl bench-xxl bench-par scenarios scenarios-smoke scenarios-lossy trace-smoke

test:
	$(PYTHON) -m pytest -x -q

# Property-based store-equivalence suite (tests/properties).  Runs under
# the fixed deterministic Hypothesis profile; REPRO_PROPS_EXAMPLES=n
# deepens the soak locally (tier-1 runs the bounded default via `test`).
test-props:
	$(PYTHON) -m pytest tests/properties -q

bench:
	$(PYTHON) benchmarks/bench_slot_pipeline.py

bench-quick:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --scenarios static-small --no-output

bench-all:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --all

# The 5k/10k-peer tier: static-large re-measures with the reference
# paths, static-xlarge (10k) records columnar+warm columns only.
# Written to its own JSON so `make bench`'s committed matrix is kept.
bench-xl:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --scenarios static-large static-xlarge --output BENCH_slot_pipeline_xl.json

# The scaling-curve tier for the region-sharded solver: 5k → 10k → 50k
# anchors, reference-free above 5k, sharded columns on every row (the
# n·ε welfare certificate is asserted live on each measured slot).
bench-xxl:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --scenarios static-large static-xlarge static-xxl --output BENCH_slot_pipeline_xxl.json

# The multiprocess scaling curve: the same 5k → 10k → 50k anchors with
# a 4-worker shard pool (override via WORKERS=n).  Per-slot byte
# identity of the pooled result against the in-process sharded solve is
# asserted live; par_speedup only reflects wall-clock on multi-core
# hosts — see benchmarks/README.md for the single-core caveat.
WORKERS ?= 4
bench-par:
	$(PYTHON) benchmarks/bench_slot_pipeline.py --scenarios static-large static-xlarge static-xxl --workers $(WORKERS) --output BENCH_slot_pipeline_par.json

# Telemetry gate: a tiny scenario with tracing on — every span must
# validate against the JSONL schema, traces must replay byte-identically,
# and the instrumentation-off slot time is pinned within 3% of untraced
# (tier-1 runs the same tests via `make test`).
trace-smoke:
	$(PYTHON) -m pytest tests/obs/test_trace_smoke.py -q

# Fast scenario-engine gate: every registered scenario runs a few tiny
# slots end to end (tier-1 runs the same tests via `make test`).
scenarios-smoke:
	$(PYTHON) -m pytest tests/scenarios/test_smoke.py -q

# The two lossy-network catalog scenarios at tiny scale: a quick
# end-to-end drive of the link model + retry pipeline (report only,
# nothing written — the committed reports are bench scale).
scenarios-lossy:
	$(PYTHON) -m repro scenario run lossy-backbone --scale tiny --no-save
	$(PYTHON) -m repro scenario run flaky-isp --scale tiny --no-save

# Regenerate every catalog scenario's bench-scale report under results/.
scenarios:
	for name in $$($(PYTHON) -c "from repro.scenarios import scenario_names; print(' '.join(scenario_names()))"); do \
		$(PYTHON) -m repro scenario run $$name || exit 1; \
	done
