"""ISP traffic study: how the inter-ISP cost level steers the auction.

The auction crosses an ISP boundary only when a chunk's valuation
justifies the cost (the paper's central mechanism).  This study sweeps
the mean inter-ISP cost and shows the auction's inter-ISP share falling
as crossing gets dearer, while the ISP-oblivious baseline barely reacts
— quantifying exactly how "ISP-aware" the mechanism is.

Run:  python examples/isp_traffic_study.py
"""

from __future__ import annotations

from repro.metrics.report import render_table
from repro.p2p import P2PSystem, SystemConfig

INTER_COST_MEANS = [2.0, 4.0, 6.0, 8.0]
SCHEDULERS = ("auction", "agnostic")


def run(scheduler: str, inter_mean: float) -> dict:
    config = SystemConfig.bench(
        seed=5,
        scheduler=scheduler,
        inter_cost_mean=inter_mean,
        inter_cost_low=max(0.5, inter_mean - 4.0),
        inter_cost_high=inter_mean + 5.0,
    )
    system = P2PSystem(config)
    system.populate_static(150, stagger=False)
    collector = system.run(60.0)
    return collector.totals()


def main() -> None:
    print("Sweep: mean inter-ISP link cost (intra fixed at the paper's TN(1,1,[0,2]))\n")
    rows = []
    for inter_mean in INTER_COST_MEANS:
        row = [inter_mean]
        for scheduler in SCHEDULERS:
            totals = run(scheduler, inter_mean)
            row.extend(
                [totals["inter_isp_fraction"], totals["welfare_mean_per_slot"]]
            )
        rows.append(row)

    print(render_table(
        ["inter cost μ",
         "auction inter%", "auction welfare",
         "agnostic inter%", "agnostic welfare"],
        rows,
    ))

    auction_shares = [row[1] for row in rows]
    print("\nThe auction's inter-ISP share falls as crossing gets dearer: "
          f"{' -> '.join(f'{s:.3f}' for s in auction_shares)}")
    print("The oblivious baseline keeps shipping across ISPs regardless, "
          "paying ever larger welfare penalties.")


if __name__ == "__main__":
    main()
