"""Message-level trace of one slot's distributed auction (paper Fig. 2).

Runs a single slot of a contended static system through the full
bid/accept/reject/evict/price-update protocol over a simulated latency
network, then prints the price trajectory of the busiest auctioneer and
the message-count breakdown — the microscope view of what the
centralized solver computes in one call.

Run:  python examples/distributed_auction_trace.py
"""

from __future__ import annotations

from repro.core.distributed import DistributedAuction
from repro.metrics.report import sparkline
from repro.p2p import P2PSystem, SystemConfig
from repro.sim import CostLatency, SimNetwork, Simulator


def main() -> None:
    # A contended market (few videos, tight upload) so prices move.
    config = SystemConfig.bench(
        seed=1,
        n_videos=4,
        peer_upload_min_multiple=0.5,
        peer_upload_max_multiple=1.5,
        seed_upload_multiple=2.0,
        bid_rounds_per_slot=1,
    )
    system = P2PSystem(config)
    system.populate_static(200)
    system.run(20.0)  # warm up two slots centrally

    problem, _ = system.build_problem(system.now)
    print(f"slot at t={system.now:.0f}s: {problem.describe()}\n")

    sim = Simulator(start_time=system.now)
    network = SimNetwork(
        sim,
        latency=CostLatency(system.costs.as_cost_fn(), seconds_per_cost_unit=0.02),
    )
    auction = DistributedAuction(sim, network, problem, epsilon=0.01)
    result = auction.run_to_convergence()

    print("message traffic:")
    for kind, count in sorted(network.sent.items()):
        print(f"  {kind:12s} sent={count:6d} delivered={network.delivered[kind]:6d}")

    busiest = max(
        auction.auctioneers,
        key=lambda u: len([e for e in auction.price_events if e.uploader == u]),
    )
    times, prices = auction.price_series(busiest)
    rel = [t - system.now for t in times]
    print(f"\nprice trajectory of busiest auctioneer (peer {busiest}):")
    print(f"  updates: {len(prices)}, final λ = {prices[-1]:.3f}" if prices else "  flat")
    if prices:
        print(f"  λ over time: {sparkline(prices)}")
        print(f"  first update at +{rel[0]:.2f}s, last at +{rel[-1]:.2f}s "
              f"(slot is {config.slot_seconds:.0f}s — converged well within it)")

    print(f"\nschedule: served {result.n_served()}/{problem.n_requests} requests, "
          f"welfare {result.welfare(problem):.1f}")
    print(f"auction stats: {result.stats}")


if __name__ == "__main__":
    main()
