"""A P2P VoD streaming session under churn: auction vs simple locality.

Reproduces the paper's dynamic scenario at example scale: peers arrive
as a Poisson process, pick videos by Zipf-Mandelbrot popularity, prefetch
a 10-second window, and the per-slot auction (or the locality strawman)
decides who downloads which chunk from whom.  Prints the three series the
paper's evaluation plots: social welfare, inter-ISP share, miss rate.

Run:  python examples/vod_streaming.py
"""

from __future__ import annotations

from repro.metrics.report import comparison_table, series_block
from repro.p2p import P2PSystem, SystemConfig

DURATION = 120.0  # seconds (12 slots)


def run(scheduler: str) -> "P2PSystem":
    config = SystemConfig.bench(
        seed=7,
        scheduler=scheduler,
        arrival_rate_per_s=1.5,
        early_departure_prob=0.3,
    )
    system = P2PSystem(config)
    system.run(DURATION, churn=True)
    return system


def main() -> None:
    systems = {name: run(name) for name in ("auction", "locality")}

    print("P2P VoD streaming under churn "
          f"(Poisson arrivals, 30% early departures, {DURATION:.0f}s)\n")
    for name, system in systems.items():
        totals = system.collector.totals()
        print(f"{name:10s} peers_end={len(system.peers) - system.n_seeds():3d} "
              f"arrivals={system.arrivals:3d} departures={system.departures:3d} "
              f"chunks={totals['chunks_transferred']:.0f}")

    welfare = {n: s.collector.welfare_series() for n, s in systems.items()}
    inter = {n: s.collector.inter_isp_series() for n, s in systems.items()}
    miss = {n: s.collector.miss_rate_series() for n, s in systems.items()}

    print("\nSocial welfare per slot (paper Fig. 3):")
    print(comparison_table(welfare, "welfare"))
    print("\nInter-ISP traffic share (paper Fig. 4):")
    print(comparison_table(inter, "inter-ISP"))
    print("\nChunk miss rate (paper Fig. 5):")
    print(comparison_table(miss, "miss"))

    print("\nPopulation over time (auction run):")
    print(series_block(systems["auction"].collector.peers_series(), "peers online"))


if __name__ == "__main__":
    main()
