"""Quickstart: schedule one slot with the primal-dual auction.

Builds a small chunk-scheduling problem by hand, solves it with the
paper's auction, verifies Theorem 1's optimality certificates, and
cross-checks the welfare against the exact Hungarian oracle.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AuctionSolver,
    SchedulingProblem,
    solve_hungarian,
    verify_theorem1,
)


def main() -> None:
    # One slot: two uploaders selling bandwidth, four chunk requests.
    # Edge weight = valuation − network cost (cheap intra-ISP links ~1,
    # expensive inter-ISP links ~5, as in the paper's cost model).
    problem = SchedulingProblem()
    problem.set_capacity(100, 2)  # peer 100 can upload 2 chunks this slot
    problem.set_capacity(200, 1)

    problem.add_request(peer=1, chunk="v0:17", valuation=8.0,
                        candidates={100: 1.2, 200: 5.1})
    problem.add_request(peer=2, chunk="v0:18", valuation=6.5,
                        candidates={100: 0.8})
    problem.add_request(peer=3, chunk="v3:02", valuation=5.0,
                        candidates={100: 4.9, 200: 0.6})
    problem.add_request(peer=4, chunk="v9:40", valuation=1.0,
                        candidates={200: 4.8})  # v − w < 0: not worth serving

    print(problem.describe())

    solver = AuctionSolver(epsilon=1e-9)
    result = solver.solve(problem)

    print("\nAuction outcome:")
    for index, downstream, chunk, uploader, utility in result.served_edges(problem):
        print(f"  request {index} (peer {downstream}, chunk {chunk}) "
              f"<- uploader {uploader}   net utility {utility:+.2f}")
    for index, uploader in result.assignment.items():
        if uploader is None:
            print(f"  request {index} unserved "
                  f"(best net utility {problem.edge_values_of(index).max():+.2f})")

    print(f"\nbandwidth prices λ_u: "
          f"{ {u: round(p, 3) for u, p in result.prices.items()} }")
    print(f"social welfare: {result.welfare(problem):.3f}")

    # Theorem 1, numerically: complementary slackness + duality gap.
    report = verify_theorem1(problem, result, epsilon=1e-9)
    print(f"optimality certificates hold: {report.optimal} "
          f"(duality gap {report.gap:.2e})")

    # Cross-check against the exact centralized oracle.
    optimum = solve_hungarian(problem).welfare(problem)
    print(f"Hungarian oracle welfare: {optimum:.3f} "
          f"(auction matches: {abs(optimum - result.welfare(problem)) < 1e-6})")


if __name__ == "__main__":
    main()
