"""Strategic manipulation: the paper's open problem, and the VCG fix.

The paper's conclusion flags that selfish peers may manipulate the
auction (it charges no real payments, so inflating one's reported chunk
valuations grabs bandwidth for free).  This example quantifies the
manipulation on a contended slot and shows that layering VCG payments
(``repro.core.vcg``) on the welfare-maximizing allocation makes
truth-telling a dominant strategy.

Run:  python examples/strategic_manipulation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import random_problem
from repro.core.strategic import manipulation_study
from repro.metrics.report import render_table

FACTORS = [0.5, 1.0, 2.0, 4.0, 8.0]


def main() -> None:
    rng = np.random.default_rng(3)
    # A contended slot: 3 uploaders, tight capacity, 30 competing requests.
    problem = random_problem(
        rng, n_requests=30, n_uploaders=3, max_candidates=3, capacity_range=(1, 2)
    )
    cheater = problem.request(0).peer
    print(f"{problem.describe()}\ncheating peer: {cheater} "
          f"(scales its reported valuations by each factor below)\n")

    rows = manipulation_study(problem, cheater, FACTORS)
    print(render_table(
        ["report factor", "chunks won",
         "true utility (auction)", "social welfare (true)",
         "net utility (VCG)"],
        [
            [r.factor, r.chunks_won, r.auction_true_utility,
             r.auction_welfare, r.vcg_net_utility]
            for r in rows
        ],
    ))

    truthful = next(r for r in rows if r.factor == 1.0)
    best_auction = max(rows, key=lambda r: r.auction_true_utility)
    best_vcg = max(rows, key=lambda r: r.vcg_net_utility)

    print(f"\nUnder the paper's auction (no payments): the best misreport "
          f"(×{best_auction.factor}) yields utility "
          f"{best_auction.auction_true_utility:.2f} vs truthful "
          f"{truthful.auction_true_utility:.2f} — manipulation pays, and "
          f"social welfare drops from {truthful.auction_welfare:.2f} to "
          f"{best_auction.auction_welfare:.2f}.")
    print(f"Under VCG payments: the best report factor is ×{best_vcg.factor} "
          f"(truth-telling is optimal up to ties) — the dominant-strategy "
          f"property the paper's future work asks for.")


if __name__ == "__main__":
    main()
