"""Tests for the overlay graph and tracker candidate ranking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import OverlayGraph, rank_candidates


class TestRankCandidates:
    def positions(self, table):
        return lambda peer: table.get(peer)

    def test_orders_by_distance(self):
        table = {1: 100.0, 2: 50.0, 3: 75.0}
        ranked = rank_candidates(self.positions(table), 60.0, [1, 2, 3])
        assert ranked == [2, 3, 1]

    def test_seeds_first_by_default(self):
        table = {1: 61.0, 2: None}  # peer 2 is a seed
        ranked = rank_candidates(self.positions(table), 60.0, [1, 2])
        assert ranked[0] == 2

    def test_seed_rank_random_can_demote_seeds(self):
        table = {i: 60.0 + i for i in range(1, 8)}
        table[99] = None  # one seed among watchers
        positions = [
            rank_candidates(
                self.positions(table),
                60.0,
                list(table),
                rng=np.random.default_rng(s),
                seed_rank="random",
            ).index(99)
            for s in range(20)
        ]
        assert len(set(positions)) > 1  # rank varies
        assert max(positions) > 0  # sometimes not first

    def test_unknown_seed_rank_rejected(self):
        with pytest.raises(ValueError):
            rank_candidates(lambda p: None, 0.0, [1], seed_rank="bogus")

    def test_deterministic_without_rng(self):
        table = {1: 10.0, 2: 10.0, 3: 30.0}
        a = rank_candidates(self.positions(table), 10.0, [3, 2, 1])
        b = rank_candidates(self.positions(table), 10.0, [1, 2, 3])
        assert a == b


class TestOverlayGraph:
    def test_connect_and_neighbors(self):
        g = OverlayGraph(degree_target=5)
        g.connect(1, 2)
        assert g.neighbors(1) == {2}
        assert g.neighbors(2) == {1}
        assert g.edge_count() == 1

    def test_self_link_rejected(self):
        g = OverlayGraph()
        with pytest.raises(ValueError):
            g.connect(1, 1)

    def test_connect_idempotent(self):
        g = OverlayGraph()
        g.connect(1, 2)
        g.connect(1, 2)
        assert g.degree(1) == 1

    def test_disconnect(self):
        g = OverlayGraph()
        g.connect(1, 2)
        g.disconnect(1, 2)
        assert g.neighbors(1) == set()

    def test_remove_node_severs_links(self):
        g = OverlayGraph()
        g.connect(1, 2)
        g.connect(1, 3)
        lost = g.remove_node(1)
        assert lost == {2, 3}
        assert 1 not in g
        assert g.neighbors(2) == set()

    def test_bootstrap_respects_target(self):
        g = OverlayGraph(degree_target=3)
        connected = g.bootstrap(1, [10, 11, 12, 13, 14])
        assert connected == [10, 11, 12]
        assert g.degree(1) == 3

    def test_bootstrap_skips_self_and_existing(self):
        g = OverlayGraph(degree_target=4)
        g.connect(1, 10)
        connected = g.bootstrap(1, [1, 10, 11])
        assert connected == [11]

    def test_wants_more_and_deficit(self):
        g = OverlayGraph(degree_target=2)
        g.add_node(1)
        assert g.wants_more(1)
        assert g.deficit(1) == 2
        g.connect(1, 2)
        g.connect(1, 3)
        assert not g.wants_more(1)
        assert g.deficit(1) == 0

    def test_degree_can_exceed_target_via_peers(self):
        """Accepting inbound links may push a node over target (soft cap)."""
        g = OverlayGraph(degree_target=1)
        g.bootstrap(1, [99])
        g.bootstrap(2, [99])
        assert g.degree(99) == 2

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            OverlayGraph(degree_target=0)

    def test_nodes_and_len(self):
        g = OverlayGraph()
        g.add_node(1)
        g.add_node(2)
        assert g.nodes() == {1, 2}
        assert len(g) == 2
