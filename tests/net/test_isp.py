"""Tests for ISP membership tracking."""

from __future__ import annotations

import pytest

from repro.net.isp import ISPTopology


class TestMembership:
    def test_explicit_assignment(self):
        topo = ISPTopology(3)
        assert topo.add_peer(1, isp=2) == 2
        assert topo.isp_of(1) == 2
        assert 1 in topo

    def test_auto_assignment_balances(self):
        topo = ISPTopology(3)
        for peer in range(9):
            topo.add_peer(peer)
        assert topo.sizes() == [3, 3, 3]

    def test_auto_assignment_fills_least_populated(self):
        topo = ISPTopology(2)
        topo.add_peer(1, isp=0)
        topo.add_peer(2, isp=0)
        assert topo.add_peer(3) == 1  # ISP 1 is emptier

    def test_duplicate_peer_rejected(self):
        topo = ISPTopology(2)
        topo.add_peer(1)
        with pytest.raises(ValueError):
            topo.add_peer(1)

    def test_bad_isp_index_rejected(self):
        topo = ISPTopology(2)
        with pytest.raises(ValueError):
            topo.add_peer(1, isp=5)

    def test_needs_at_least_one_isp(self):
        with pytest.raises(ValueError):
            ISPTopology(0)

    def test_remove_peer(self):
        topo = ISPTopology(2)
        topo.add_peer(1, isp=0)
        topo.remove_peer(1)
        assert 1 not in topo
        assert topo.sizes() == [0, 0]

    def test_remove_unknown_peer_raises(self):
        with pytest.raises(KeyError):
            ISPTopology(2).remove_peer(42)

    def test_len_and_iter(self):
        topo = ISPTopology(2)
        topo.add_peer(1)
        topo.add_peer(2)
        assert len(topo) == 2
        assert sorted(topo) == [1, 2]


class TestQueries:
    def test_same_isp(self):
        topo = ISPTopology(2)
        topo.add_peer(1, isp=0)
        topo.add_peer(2, isp=0)
        topo.add_peer(3, isp=1)
        assert topo.same_isp(1, 2)
        assert not topo.same_isp(1, 3)

    def test_peers_in_returns_copy(self):
        topo = ISPTopology(2)
        topo.add_peer(1, isp=0)
        roster = topo.peers_in(0)
        roster.add(99)
        assert 99 not in topo.peers_in(0)

    def test_all_peers(self):
        topo = ISPTopology(3)
        topo.add_peer(5, isp=1)
        topo.add_peer(6, isp=2)
        assert topo.all_peers() == {5, 6}

    def test_isp_of_unknown_raises(self):
        with pytest.raises(KeyError):
            ISPTopology(2).isp_of(1)
