"""Tests for the per-ISP-pair link-condition table (fault injection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.linkmodel import (
    REGIME_PRESETS,
    LinkConditions,
    LinkParams,
    link_preset,
    preset_names,
)


class TestLinkParams:
    def test_default_is_ideal(self):
        params = LinkParams()
        params.validate()
        assert params.ideal
        assert params.describe() == "ideal"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(delay_ms=-1.0),
            dict(jitter_ms=-0.5),
            dict(loss_rate=-0.1),
            dict(loss_rate=1.5),
            dict(bandwidth_cap=-3),
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            LinkParams(**kwargs).validate()

    def test_describe_mentions_every_knob(self):
        text = LinkParams(
            delay_ms=50.0, jitter_ms=10.0, loss_rate=0.3, bandwidth_cap=7
        ).describe()
        assert "loss=30%" in text
        assert "50" in text and "10" in text
        assert "cap=7" in text


class TestPresets:
    def test_catalog(self):
        assert preset_names() == sorted(REGIME_PRESETS)
        assert {"ideal", "delay10", "loss10", "loss30-delay50"} <= set(
            preset_names()
        )
        for name in preset_names():
            link_preset(name).validate()

    def test_ideal_preset_is_ideal(self):
        assert link_preset("ideal").ideal

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown link regime"):
            link_preset("loss99")


class TestTable:
    def test_starts_ideal(self):
        links = LinkConditions(3)
        assert not links.active
        assert links.regime == "ideal"
        assert links.describe() == "ideal"
        assert links.pair(0, 2).ideal

    def test_set_pair_is_symmetric(self):
        links = LinkConditions(3)
        links.set_pair(2, 0, LinkParams(loss_rate=0.5))
        assert links.pair(0, 2).loss_rate == 0.5
        assert links.pair(2, 0).loss_rate == 0.5
        assert links.active

    def test_degrade_all_inter_leaves_intra_ideal(self):
        links = LinkConditions(3)
        touched = links.degrade(LinkParams(loss_rate=0.2))
        assert touched == 3  # (0,1) (0,2) (1,2)
        assert links.pair(0, 1).loss_rate == 0.2
        assert links.pair(1, 1).ideal

    def test_degrade_one_isp_includes_intra(self):
        links = LinkConditions(3)
        touched = links.degrade(LinkParams(loss_rate=0.2), isp_a=1)
        assert touched == 3  # (0,1) (1,1) (1,2)
        assert not links.pair(1, 1).ideal
        assert links.pair(0, 2).ideal

    def test_restore_roundtrip(self):
        links = LinkConditions(2)
        links.apply_preset("loss30-delay50")
        assert links.active and links.regime == "loss30-delay50"
        links.restore()
        assert not links.active
        assert links.regime == "ideal"
        assert links.pair(0, 1).ideal

    def test_ideal_preset_restores(self):
        links = LinkConditions(2)
        links.apply_preset("loss10")
        links.apply_preset("ideal")
        assert not links.active

    def test_bad_pair_rejected(self):
        links = LinkConditions(2)
        with pytest.raises(ValueError):
            links.pair(0, 2)
        with pytest.raises(ValueError):
            links.degrade(LinkParams(loss_rate=0.1), isp_a=None, isp_b=1)


class TestEvaluate:
    def _edges(self, n, up=0, down=1):
        return (
            np.full(n, up, dtype=np.int64),
            np.full(n, down, dtype=np.int64),
        )

    def test_empty_batch(self):
        links = LinkConditions(2)
        links.apply_preset("loss10")
        out = links.evaluate(*self._edges(0), np.random.default_rng(0))
        assert len(out.delivered) == 0 and out.n_failed == 0

    def test_loss_is_deterministic_per_stream(self):
        links = LinkConditions(2)
        links.apply_preset("loss10")
        up, down = self._edges(5000)
        a = links.evaluate(up, down, np.random.default_rng(7))
        b = links.evaluate(up, down, np.random.default_rng(7))
        assert np.array_equal(a.lost, b.lost)
        frac = a.lost.mean()
        assert 0.07 < frac < 0.13  # Bernoulli(0.10) over 5000 edges

    def test_loss_only_on_degraded_pairs(self):
        links = LinkConditions(3)
        links.degrade(LinkParams(loss_rate=1.0), isp_a=0, isp_b=1)
        up = np.array([0, 0, 2], dtype=np.int64)
        down = np.array([1, 2, 2], dtype=np.int64)
        out = links.evaluate(up, down, np.random.default_rng(1))
        assert out.lost.tolist() == [True, False, False]
        assert out.delivered.tolist() == [False, True, True]

    def test_bandwidth_cap_truncates_tail(self):
        links = LinkConditions(2)
        links.degrade(LinkParams(bandwidth_cap=3))
        up, down = self._edges(10)
        out = links.evaluate(up, down, np.random.default_rng(0))
        # First 3 edges in batch order cross; the rest are truncated.
        assert out.delivered.tolist() == [True] * 3 + [False] * 7
        assert out.truncated.tolist() == [False] * 3 + [True] * 7
        assert not out.lost.any()
        assert out.n_failed == 7

    def test_cap_counts_both_directions_of_a_pair(self):
        links = LinkConditions(2)
        links.degrade(LinkParams(bandwidth_cap=2))
        up = np.array([0, 1, 0, 1], dtype=np.int64)
        down = np.array([1, 0, 1, 0], dtype=np.int64)
        out = links.evaluate(up, down, np.random.default_rng(0))
        assert int(out.delivered.sum()) == 2

    def test_delay_and_jitter(self):
        links = LinkConditions(2)
        links.degrade(LinkParams(delay_ms=50.0, jitter_ms=10.0))
        up, down = self._edges(4000)
        out = links.evaluate(up, down, np.random.default_rng(3))
        assert (out.delay_ms >= 0).all()
        assert 48.0 < out.delay_ms.mean() < 52.0

    def test_delay_zeroed_on_lost_edges(self):
        links = LinkConditions(2)
        links.degrade(LinkParams(delay_ms=50.0, loss_rate=0.5))
        up, down = self._edges(200)
        out = links.evaluate(up, down, np.random.default_rng(4))
        assert (out.delay_ms[~out.delivered] == 0.0).all()
        assert (out.delay_ms[out.delivered] == 50.0).all()

    def test_draw_schedule_fixed_across_regimes(self):
        """Loss draws are consumed whenever the table is active, even if
        the batch's own pairs are lossless — so restoring one pair does
        not shift the stream consumed by another."""
        lossless = LinkConditions(2)
        lossless.degrade(LinkParams(delay_ms=10.0))  # active, no loss
        rng = np.random.default_rng(9)
        lossless.evaluate(*self._edges(10), rng)
        lossy = np.random.default_rng(9)
        lossy.random(10)  # the loss draw the schedule burned
        assert rng.bit_generator.state == lossy.bit_generator.state
