"""Property-based tests for the overlay graph invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import OverlayGraph

# Random op streams: (op, a, b) where op 0=connect, 1=disconnect, 2=remove node.
ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 15), st.integers(0, 15)),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(operations=ops)
def test_symmetry_invariant(operations):
    """After any op sequence: b ∈ N(a) ⇔ a ∈ N(b), and no self loops."""
    g = OverlayGraph(degree_target=4)
    for op, a, b in operations:
        if op == 0 and a != b:
            g.connect(a, b)
        elif op == 1:
            g.disconnect(a, b)
        elif op == 2:
            g.remove_node(a)
    for node in g.nodes():
        assert node not in g.neighbors(node)
        for other in g.neighbors(node):
            assert node in g.neighbors(other)


@settings(max_examples=40, deadline=None)
@given(operations=ops)
def test_edge_count_matches_adjacency(operations):
    g = OverlayGraph(degree_target=4)
    for op, a, b in operations:
        if op == 0 and a != b:
            g.connect(a, b)
        elif op == 1:
            g.disconnect(a, b)
        elif op == 2:
            g.remove_node(a)
    assert g.edge_count() == sum(g.degree(n) for n in g.nodes()) // 2


@settings(max_examples=40, deadline=None)
@given(
    candidates=st.lists(st.integers(1, 30), max_size=20),
    target=st.integers(1, 6),
)
def test_bootstrap_never_exceeds_target_for_joiner(candidates, target):
    g = OverlayGraph(degree_target=target)
    connected = g.bootstrap(0, candidates)
    assert g.degree(0) <= target
    assert len(connected) == g.degree(0)
    assert len(set(connected)) == len(connected)  # no duplicates
