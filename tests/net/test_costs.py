"""Tests for the pairwise cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.costs import PAPER_INTER_ISP_COST, PAPER_INTRA_ISP_COST, CostModel
from repro.net.isp import ISPTopology


def make_model(symmetric=True, seed=0):
    topo = ISPTopology(2)
    for peer in (1, 2, 3):
        topo.add_peer(peer, isp=0)
    for peer in (4, 5):
        topo.add_peer(peer, isp=1)
    return topo, CostModel(topo, np.random.default_rng(seed), symmetric=symmetric)


class TestSampling:
    def test_self_cost_zero(self):
        _, model = make_model()
        assert model.cost(1, 1) == 0.0

    def test_cached_pair_is_stable(self):
        _, model = make_model()
        first = model.cost(1, 2)
        assert model.cost(1, 2) == first
        assert model.cost(1, 2) == first

    def test_symmetric_mode(self):
        _, model = make_model(symmetric=True)
        assert model.cost(1, 2) == model.cost(2, 1)

    def test_asymmetric_mode_draws_independently(self):
        _, model = make_model(symmetric=False, seed=3)
        # With independent draws, exact equality has probability 0.
        assert model.cost(1, 2) != model.cost(2, 1)

    def test_intra_isp_range(self):
        _, model = make_model()
        costs = [model.cost(1, 2), model.cost(1, 3), model.cost(2, 3)]
        for c in costs:
            assert PAPER_INTRA_ISP_COST.low <= c <= PAPER_INTRA_ISP_COST.high

    def test_inter_isp_range(self):
        _, model = make_model()
        for c in (model.cost(1, 4), model.cost(2, 5), model.cost(3, 4)):
            assert PAPER_INTER_ISP_COST.low <= c <= PAPER_INTER_ISP_COST.high

    def test_inter_typically_exceeds_intra(self):
        """With the paper's distributions, the mean inter cost is far above intra."""
        topo = ISPTopology(2)
        for peer in range(100):
            topo.add_peer(peer, isp=peer % 2)
        model = CostModel(topo, np.random.default_rng(1))
        intra = [model.cost(0, i) for i in range(2, 100, 2)]
        inter = [model.cost(0, i) for i in range(1, 100, 2)]
        assert np.mean(inter) > np.mean(intra) + 2.0

    def test_is_inter_isp(self):
        _, model = make_model()
        assert model.is_inter_isp(1, 4)
        assert not model.is_inter_isp(1, 2)

    def test_costs_from_vector(self):
        _, model = make_model()
        vec = model.costs_from([2, 3, 4], 1)
        assert vec.shape == (3,)
        assert vec[0] == model.cost(2, 1)


class TestMaintenance:
    def test_forget_peer_evicts_cache(self):
        _, model = make_model()
        model.cost(1, 2)
        model.cost(1, 4)
        model.cost(2, 3)
        evicted = model.forget_peer(1)
        assert evicted == 2
        assert model.cache_size() == 1

    def test_forgotten_pair_resamples(self):
        _, model = make_model(seed=5)
        first = model.cost(1, 2)
        model.forget_peer(1)
        # New draw — almost surely different.
        assert model.cost(1, 2) != first

    def test_matrix_shape_and_diagonal(self):
        _, model = make_model()
        matrix = model.matrix([1, 2, 4])
        assert matrix.shape == (3, 3)
        assert np.all(np.diag(matrix) == 0.0)
        assert matrix[0, 1] == model.cost(1, 2)

    def test_as_cost_fn(self):
        _, model = make_model()
        fn = model.as_cost_fn()
        assert fn(1, 2) == model.cost(1, 2)
