"""Tests for truncated normal sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.trunc_normal import TruncatedNormal


class TestValidation:
    def test_rejects_zero_std(self):
        with pytest.raises(ValueError):
            TruncatedNormal(mean=1.0, std=0.0, low=0.0, high=2.0)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            TruncatedNormal(mean=1.0, std=1.0, low=2.0, high=2.0)


class TestSampling:
    def test_samples_respect_bounds(self, rng):
        dist = TruncatedNormal(mean=5.0, std=1.0, low=1.0, high=10.0)
        samples = dist.sample(rng, size=5000)
        assert samples.min() >= 1.0
        assert samples.max() <= 10.0

    def test_sample_mean_close_to_parent_mean_when_symmetric(self, rng):
        # Symmetric truncation around the mean keeps the mean.
        dist = TruncatedNormal(mean=5.0, std=1.0, low=1.0, high=9.0)
        samples = dist.sample(rng, size=20000)
        assert abs(samples.mean() - 5.0) < 0.05

    def test_deterministic_given_rng(self):
        dist = TruncatedNormal(mean=1.0, std=1.0, low=0.0, high=2.0)
        a = dist.sample(np.random.default_rng(3), size=10)
        b = dist.sample(np.random.default_rng(3), size=10)
        assert np.allclose(a, b)

    def test_sample_one_scalar(self, rng):
        dist = TruncatedNormal(mean=1.0, std=1.0, low=0.0, high=2.0)
        value = dist.sample_one(rng)
        assert isinstance(value, float)
        assert 0.0 <= value <= 2.0

    def test_paper_intra_distribution_bounds(self, rng):
        # Paper: intra-ISP ~ TN(1, 1, [0, 2]) — heavy truncation both sides.
        dist = TruncatedNormal(mean=1.0, std=1.0, low=0.0, high=2.0)
        samples = dist.sample(rng, size=5000)
        assert (samples >= 0.0).all() and (samples <= 2.0).all()
        assert abs(samples.mean() - 1.0) < 0.05  # symmetric truncation

    def test_pdf_zero_outside_range(self):
        dist = TruncatedNormal(mean=5.0, std=1.0, low=1.0, high=10.0)
        assert dist.pdf(np.array([0.0]))[0] == 0.0
        assert dist.pdf(np.array([11.0]))[0] == 0.0
        assert dist.pdf(np.array([5.0]))[0] > 0.0

    def test_expected_value_within_bounds(self):
        dist = TruncatedNormal(mean=5.0, std=2.0, low=1.0, high=6.0)
        assert 1.0 < dist.expected_value() < 6.0
        # Truncating the right tail pulls the mean below the parent's.
        assert dist.expected_value() < 5.0


@settings(max_examples=30, deadline=None)
@given(
    mean=st.floats(-5, 5),
    std=st.floats(0.1, 3.0),
    width=st.floats(0.5, 10.0),
)
def test_property_samples_always_in_bounds(mean, std, width):
    dist = TruncatedNormal(mean=mean, std=std, low=mean - width, high=mean + width)
    samples = dist.sample(np.random.default_rng(0), size=50)
    assert (samples >= mean - width - 1e-9).all()
    assert (samples <= mean + width + 1e-9).all()
