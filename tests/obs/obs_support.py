"""Shared fixtures for the observability suite: records and traced runs."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.obs import MemoryTraceSink, TRACE_SCHEMA_VERSION
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


def minimal_record() -> dict:
    """The smallest record ``validate_trace_record`` accepts."""
    return {
        "v": TRACE_SCHEMA_VERSION,
        "slot": 0,
        "time": 0.0,
        "n_peers": 5,
        "arrivals": 0,
        "departures": 0,
        "n_requests": 3,
        "n_served": 2,
        "welfare": 1.5,
        "build": "cold",
        "delta_reasons": {},
        "solver": {
            "rounds": 1, "bids_submitted": 3, "bids_rejected": 0,
            "evictions": 0, "price_updates": 2, "rows_evaluated": 3,
        },
        "retry": {
            "attempts": 0, "succeeded": 0, "surrendered": 0,
            "evicted": 0, "pending": 0,
        },
        "traffic": {"inter": 1, "intra": 1},
        "playback": {"due": 4, "missed": 2},
        "link": {"regime": "ideal", "transfers_failed": 0, "delay_ms": 0.0},
        "sharded": None,
        "timing": {
            "build_s": 0.01, "solve_s": 0.02, "apply_s": 0.003,
            "playback_s": 0.001, "retry_s": 0.0, "slot_s": 0.04,
        },
    }


def traced_run(
    seed: int = 0,
    n_peers: int = 12,
    n_slots: int = 3,
    **overrides,
) -> Tuple[List[dict], P2PSystem]:
    """Run a tiny static system with a memory sink; return its records.

    The system is closed before returning; the records list is safe to
    inspect afterwards.
    """
    config = SystemConfig.tiny(seed=seed, **overrides)
    system = P2PSystem(config)
    system.populate_static(n_peers)
    tracer = system.attach_tracer(MemoryTraceSink())
    try:
        for _ in range(n_slots):
            system.run_slot()
    finally:
        system.close()
        tracer.close()
    return tracer.records(), system
