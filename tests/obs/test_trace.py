"""Span schema validation, canonical serialization, and the tracer."""

from __future__ import annotations

import copy
import json

import pytest

from obs_support import minimal_record

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    MemoryTraceSink,
    SlotTracer,
    canonical_line,
    strip_timing,
    validate_trace_record,
)


class TestValidation:
    def test_accepts_minimal_record(self):
        validate_trace_record(minimal_record())

    def test_accepts_extra_fields(self):
        # Adding fields is schema-compatible by design.
        record = minimal_record()
        record["new_counter"] = 7
        record["solver"]["new_nested"] = 1
        validate_trace_record(record)

    @pytest.mark.parametrize("key", [
        "v", "slot", "welfare", "build", "solver", "timing",
    ])
    def test_rejects_missing_top_level(self, key):
        record = minimal_record()
        del record[key]
        with pytest.raises(ValueError, match=key):
            validate_trace_record(record)

    def test_rejects_wrong_version(self):
        record = minimal_record()
        record["v"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            validate_trace_record(record)

    def test_rejects_unknown_build_kind(self):
        record = minimal_record()
        record["build"] = "warm"
        with pytest.raises(ValueError, match="build"):
            validate_trace_record(record)

    def test_rejects_missing_nested_field(self):
        record = minimal_record()
        del record["solver"]["rows_evaluated"]
        with pytest.raises(ValueError, match="solver.rows_evaluated"):
            validate_trace_record(record)

    def test_rejects_non_dict_sharded(self):
        record = minimal_record()
        record["sharded"] = "yes"
        with pytest.raises(ValueError, match="sharded"):
            validate_trace_record(record)

    def test_rejects_bool_for_numeric(self):
        record = minimal_record()
        record["welfare"] = True
        with pytest.raises(ValueError, match="welfare"):
            validate_trace_record(record)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="dict"):
            validate_trace_record([])


class TestCanonicalForm:
    def test_strip_timing_removes_only_timing(self):
        record = minimal_record()
        stripped = strip_timing(record)
        assert "timing" not in stripped
        assert set(record) - set(stripped) == {"timing"}
        assert "timing" in record  # original untouched

    def test_canonical_line_ignores_timing_differences(self):
        a = minimal_record()
        b = copy.deepcopy(a)
        b["timing"]["slot_s"] = 99.0
        assert canonical_line(a) == canonical_line(b)

    def test_canonical_line_sorts_keys(self):
        record = minimal_record()
        line = canonical_line(record)
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_canonical_line_sees_counter_differences(self):
        a = minimal_record()
        b = copy.deepcopy(a)
        b["n_served"] += 1
        assert canonical_line(a) != canonical_line(b)


class TestSlotTracer:
    def test_defaults_to_disabled_null_sink(self):
        tracer = SlotTracer()
        assert tracer.enabled is False
        assert tracer.records() == []

    def test_counts_and_collects_with_memory_sink(self):
        tracer = SlotTracer(MemoryTraceSink())
        assert tracer.enabled is True
        tracer.emit({"slot": 0})
        tracer.emit({"slot": 1})
        assert tracer.emitted == 2
        assert [r["slot"] for r in tracer.records()] == [0, 1]
        tracer.close()
