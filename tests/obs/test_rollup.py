"""IspRollup deposit arithmetic and the rendered report block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import IspRollup, isp_rollup_block


class TestBracket:
    def test_rejects_bad_n_isps(self):
        with pytest.raises(ValueError, match="n_isps"):
            IspRollup(0)

    def test_totals_empty_before_any_slot(self):
        rollup = IspRollup(3)
        totals = rollup.totals()
        assert rollup.n_slots == 0
        for field, vec in totals.items():
            assert vec.shape == (3,)
            assert not vec.any(), field

    def test_begin_closes_left_open_slot(self):
        rollup = IspRollup(2)
        rollup.begin_slot()
        rollup.record_transfers(np.array([0]), np.array([1]))
        rollup.begin_slot()  # implicit end_slot of the first
        rollup.end_slot()
        assert rollup.n_slots == 2
        assert rollup.matrix("chunks_out").shape == (2, 2)
        assert rollup.matrix("chunks_out")[0, 0] == 1
        assert rollup.matrix("chunks_out")[1].sum() == 0

    def test_deposit_without_bracket_opens_one(self):
        rollup = IspRollup(2)
        rollup.record_transfers(np.array([0]), np.array([0]))
        rollup.end_slot()
        assert rollup.n_slots == 1


class TestTransfers:
    def test_chunks_and_transit_attribution(self):
        rollup = IspRollup(3)
        rollup.begin_slot()
        # Edges: 0→0 (intra), 0→1, 2→1 (inter), with costs.
        up = np.array([0, 0, 2])
        down = np.array([0, 1, 1])
        costs = np.array([0.0, 2.5, 1.5])
        rollup.record_transfers(up, down, costs)
        rollup.end_slot()
        totals = rollup.totals()
        assert totals["chunks_out"].tolist() == [2, 0, 1]
        assert totals["chunks_in"].tolist() == [1, 2, 0]
        assert totals["transit_out"].tolist() == [1, 0, 1]
        assert totals["transit_in"].tolist() == [0, 2, 0]
        # Transit cost bills the downstream (receiving) home ISP.
        assert totals["transit_cost"].tolist() == [0.0, 4.0, 0.0]

    def test_costs_optional(self):
        rollup = IspRollup(2)
        rollup.begin_slot()
        rollup.record_transfers(np.array([0]), np.array([1]))
        rollup.end_slot()
        totals = rollup.totals()
        assert totals["transit_in"].tolist() == [0, 1]
        assert totals["transit_cost"].tolist() == [0.0, 0.0]

    def test_all_intra_leaves_transit_zero(self):
        rollup = IspRollup(2)
        rollup.begin_slot()
        rollup.record_transfers(
            np.array([1, 1]), np.array([1, 1]), np.array([1.0, 1.0])
        )
        rollup.end_slot()
        totals = rollup.totals()
        assert totals["chunks_in"].tolist() == [0, 2]
        assert not totals["transit_in"].any()
        assert not totals["transit_cost"].any()


class TestQoeDeposits:
    def test_playback_by_home_isp(self):
        rollup = IspRollup(2)
        rollup.begin_slot()
        rollup.record_playback(
            isps=np.array([0, 1, 1]),
            due=np.array([10, 4, 6]),
            missed=np.array([1, 0, 3]),
        )
        rollup.end_slot()
        totals = rollup.totals()
        assert totals["due"].tolist() == [10, 10]
        assert totals["missed"].tolist() == [1, 3]

    def test_retries_keyed_to_requester(self):
        rollup = IspRollup(3)
        rollup.begin_slot()
        rollup.record_retries(
            attempt_isps=np.array([0, 0, 2]), success_isps=np.array([0])
        )
        rollup.end_slot()
        totals = rollup.totals()
        assert totals["retry_attempts"].tolist() == [2, 0, 1]
        assert totals["retry_succeeded"].tolist() == [1, 0, 0]

    def test_matrix_accumulates_per_slot_history(self):
        rollup = IspRollup(2)
        for missed in (1, 2):
            rollup.begin_slot()
            rollup.record_playback(
                np.array([0]), np.array([5]), np.array([missed])
            )
            rollup.end_slot()
        mat = rollup.matrix("missed")
        assert mat.shape == (2, 2)
        assert mat[:, 0].tolist() == [1, 2]
        assert rollup.totals()["missed"].tolist() == [3, 0]


class TestReportBlock:
    def _rollup(self) -> IspRollup:
        rollup = IspRollup(2)
        rollup.begin_slot()
        rollup.record_transfers(
            np.array([0, 1]), np.array([1, 1]), np.array([3.0, 0.0])
        )
        rollup.record_playback(np.array([0, 1]), np.array([4, 4]), np.array([1, 0]))
        rollup.record_retries(np.array([0]), np.array([0]))
        rollup.end_slot()
        return rollup

    def test_one_row_per_scheduler_isp(self):
        block = isp_rollup_block({"auction": self._rollup()})
        lines = block.splitlines()
        assert lines[0] == "Per-ISP rollup"
        # title + header + rule + 2 ISP rows
        assert len(lines) == 5
        assert "transit_cost" in lines[1]
        assert "auction" in lines[3] and "auction" in lines[4]

    def test_startup_column_renders_or_dashes(self):
        block = isp_rollup_block(
            {"auction": self._rollup()},
            {"auction": {0: (12.34, 5)}},
        )
        assert "12.3s/5p" in block
        assert "-" in block.splitlines()[-1]  # isp 1 has no startup stats

    def test_deterministic_rendering(self):
        kwargs = ({"auction": self._rollup()}, {"auction": {1: (2.0, 3)}})
        assert isp_rollup_block(*kwargs) == isp_rollup_block(*kwargs)
