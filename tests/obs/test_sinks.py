"""Sink contract: enabled flags, deterministic bytes, lazy file opens."""

from __future__ import annotations

import json

from repro.obs import JsonlTraceSink, MemoryTraceSink, NullTraceSink, TraceSink


class TestProtocol:
    def test_all_sinks_satisfy_protocol(self):
        for sink in (NullTraceSink(), MemoryTraceSink(), JsonlTraceSink("/tmp/x")):
            assert isinstance(sink, TraceSink)

    def test_null_sink_disabled(self):
        sink = NullTraceSink()
        assert sink.enabled is False
        sink.close()  # idempotent no-op

    def test_memory_sink_collects(self):
        sink = MemoryTraceSink()
        assert sink.enabled is True
        sink.emit({"a": 1})
        sink.emit({"b": 2})
        assert len(sink) == 2
        assert sink.records == [{"a": 1}, {"b": 2}]


class TestJsonlSink:
    def test_lazy_open_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlTraceSink(path)
        sink.close()
        assert not path.exists()

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit({"slot": 0})
        assert path.exists()
        assert sink.n_records == 1

    def test_sorted_keys_make_equal_records_byte_equal(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        with JsonlTraceSink(a) as sa:
            sa.emit({"z": 1, "a": 2})
        with JsonlTraceSink(b) as sb:
            sb.emit({"a": 2, "z": 1})  # same record, different insert order
        assert a.read_bytes() == b.read_bytes()

    def test_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            for slot in range(3):
                sink.emit({"slot": slot})
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["slot"] for line in lines] == [0, 1, 2]

    def test_close_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.emit({"slot": 0})
        sink.close()
        sink.close()
