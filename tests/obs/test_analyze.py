"""Trace loading, aggregation, and the summarize/diff/rollup renderers."""

from __future__ import annotations

import copy
import json

import pytest

from obs_support import minimal_record

from repro.obs import (
    JsonlTraceSink,
    diff_traces,
    load_trace,
    rollup_traces,
    summarize_trace,
    trace_totals,
)


def make_trace(n_slots: int = 3, sharded: bool = False) -> list:
    records = []
    for slot in range(n_slots):
        record = minimal_record()
        record["slot"] = slot
        record["time"] = slot * 10.0
        record["welfare"] = 10.0 + slot
        if sharded:
            record["sharded"] = {
                "coordination_rounds": 1,
                "boundary_uploaders": 4,
                "contested_rows": 2,
                "fallbacks": 0,
                "fallback_reason": "",
                "procs": 2,
                "par_shards": 3,
                "worker_fallbacks": 0,
                "blocks_republished": 5 if slot else -1,
            }
        records.append(record)
    return records


class TestLoad:
    def test_round_trips_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = make_trace()
        with JsonlTraceSink(path) as sink:
            for record in records:
                sink.emit(record)
        assert load_trace(path) == records

    def test_rejects_bad_json_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":1: not JSON"):
            load_trace(path)

    def test_rejects_schema_violation_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bad = minimal_record()
        del bad["welfare"]
        path.write_text(json.dumps(bad) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match=":1: .*welfare"):
            load_trace(path)

    def test_rejects_empty_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(ValueError, match="empty"):
            load_trace(path)


class TestTotals:
    def test_flat_trace_aggregates(self):
        totals = trace_totals(make_trace(3))
        assert totals["slots"] == 3
        assert totals["welfare"] == pytest.approx(33.0)
        assert totals["served"] == 6
        assert totals["builds_cold"] == 3
        assert totals["inter_frac"] == pytest.approx(0.5)
        assert totals["miss_rate"] == pytest.approx(0.5)
        assert "procs" not in totals  # no sharded block, no sharded totals

    def test_sharded_trace_aggregates(self):
        totals = trace_totals(make_trace(3, sharded=True))
        assert totals["coordination_rounds"] == 3
        assert totals["procs"] == 2
        assert totals["par_shards"] == 9
        # The -1 "not reported" sentinel never enters the sum.
        assert totals["blocks_republished"] == 10


class TestRendering:
    def test_summarize_shows_each_slot_and_totals(self):
        text = summarize_trace(make_trace(3), label="demo")
        lines = text.splitlines()
        assert lines[0].startswith("Trace demo — 3 slots")
        assert text.count("cold") == 3
        assert lines[-1].startswith("totals:")

    def test_summarize_truncates_long_traces(self):
        text = summarize_trace(make_trace(25), max_rows=20)
        assert "… 5 more slots" in text

    def test_diff_identical_traces_is_all_zero(self):
        trace = make_trace(3, sharded=True)
        text = diff_traces(trace, copy.deepcopy(trace), "a", "b")
        for line in text.splitlines()[3:]:
            assert line.split()[-1] == "0", line

    def test_diff_reports_delta(self):
        a = make_trace(3)
        b = copy.deepcopy(a)
        for record in b:
            record["n_served"] += 2
        text = diff_traces(a, b, "base", "more")
        served = next(
            line for line in text.splitlines() if "served" in line
        )
        assert served.split() == ["served", "6", "12", "6"]

    def test_diff_never_mentions_timing(self):
        text = diff_traces(make_trace(2), make_trace(2))
        assert "slot_s" not in text
        assert "timing" not in text

    def test_rollup_one_row_per_trace(self):
        text = rollup_traces({"flat": make_trace(2), "sharded": make_trace(2, True)})
        lines = text.splitlines()
        assert lines[0] == "Trace rollup"
        assert len(lines) == 5  # title + header + rule + 2 rows
        assert "slot_s" in lines[1]
