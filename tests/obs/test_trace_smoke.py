"""End-to-end tracing smoke: schema-valid spans, determinism, overhead.

This is the ``make trace-smoke`` tier-1 gate: a tiny scenario runs with
tracing on and every emitted span must validate against the schema; a
JSONL round trip must reproduce the records exactly; and — the promise
that lets instrumentation stay compiled-in — running *without* a tracer
must cost the same as running with a disabled one, pinned with a
min-of-k interleaved timing comparison so scheduler noise cancels.
"""

from __future__ import annotations

from time import perf_counter

from obs_support import traced_run

from repro.obs import (
    JsonlTraceSink,
    NullTraceSink,
    canonical_line,
    load_trace,
    validate_trace_record,
)
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


class TestSpanContent:
    def test_every_span_validates(self):
        records, _ = traced_run(seed=3, n_slots=4)
        assert len(records) == 4
        for record in records:
            validate_trace_record(record)

    def test_slots_and_time_advance(self):
        records, system = traced_run(seed=3, n_slots=4)
        assert [r["slot"] for r in records] == [0, 1, 2, 3]
        times = [r["time"] for r in records]
        assert times == sorted(times)
        assert records[-1]["n_peers"] == len(system.peers)

    def test_cold_then_patched_builds_with_incremental(self):
        records, _ = traced_run(seed=3, n_slots=4, incremental_build=True)
        assert records[0]["build"] == "cold"
        assert all(r["build"] == "patch" for r in records[1:])
        # Patched slots carry reason-coded delta histograms.
        assert any(sum(r["delta_reasons"].values()) for r in records[1:])

    def test_sharded_spans_carry_coordination_block(self):
        records, _ = traced_run(seed=3, n_slots=3, sharded_solve=True)
        for record in records:
            assert record["sharded"] is not None
            assert record["sharded"]["coordination_rounds"] >= 1

    def test_flat_spans_have_no_sharded_block(self):
        records, _ = traced_run(seed=3, n_slots=2)
        assert all(r["sharded"] is None for r in records)


class TestDeterminism:
    def test_repeated_runs_emit_identical_canonical_lines(self):
        a, _ = traced_run(seed=11, n_slots=4)
        b, _ = traced_run(seed=11, n_slots=4)
        assert [canonical_line(r) for r in a] == [canonical_line(r) for r in b]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "smoke.jsonl"
        config = SystemConfig.tiny(seed=5)
        system = P2PSystem(config)
        system.populate_static(12)
        with JsonlTraceSink(path) as sink:
            system.attach_tracer(sink)
            for _ in range(3):
                system.run_slot()
            system.close()
        loaded = load_trace(path)
        assert len(loaded) == 3
        assert [r["slot"] for r in loaded] == [0, 1, 2]


class TestOverhead:
    def test_null_sink_emits_nothing(self):
        system = P2PSystem(SystemConfig.tiny(seed=1))
        system.populate_static(10)
        tracer = system.attach_tracer(NullTraceSink())
        for _ in range(2):
            system.run_slot()
        system.close()
        assert tracer.emitted == 0

    def test_disabled_instrumentation_is_branch_cheap(self):
        """Untraced vs NullTraceSink slot time: within 3% (+2 ms slack).

        Interleaved min-of-k: each arm runs k times alternating, and
        the minima are compared — the standard way to discard scheduler
        noise when pinning an overhead bound.
        """

        def build(with_null_sink: bool) -> P2PSystem:
            system = P2PSystem(SystemConfig.tiny(seed=9))
            system.populate_static(30)
            if with_null_sink:
                system.attach_tracer(NullTraceSink())
            return system

        def run_once(with_null_sink: bool) -> float:
            system = build(with_null_sink)
            system.run_slot()  # warm caches / JIT-free but allocates
            t0 = perf_counter()
            for _ in range(3):
                system.run_slot()
            elapsed = perf_counter() - t0
            system.close()
            return elapsed

        k = 5
        untraced = []
        nullsink = []
        for _ in range(k):
            untraced.append(run_once(False))
            nullsink.append(run_once(True))
        base, gated = min(untraced), min(nullsink)
        assert gated <= base * 1.03 + 0.002, (
            f"disabled tracing overhead: {gated:.4f}s vs {base:.4f}s untraced"
        )
