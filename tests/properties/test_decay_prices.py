"""Property coverage for :func:`repro.core.result.decay_prices`.

The cross-slot warm-start carry (``warm_start_across_slots`` +
``warm_price_decay``) leans on a handful of contracts that were only
implicitly exercised through system trajectories:

* ``factor = 0`` always clears to a cold start (``None``);
* ``factor = 1`` with no floor is the identity — the *same* arrays come
  back, no copy;
* decayed prices are never negative, the floor flushes to exactly 0,
  and dtype/shape/inputs are preserved untouched;
* ``None`` is returned exactly when every carried price died.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.result import decay_prices

price_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, width=64),
    min_size=0,
    max_size=50,
)
factors = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
floors = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def _arrays(values):
    vals = np.asarray(values, dtype=float)
    ids = np.arange(10_000, 10_000 + len(vals), dtype=np.int64)
    return ids, vals


@given(values=price_vectors)
def test_factor_zero_is_cold_start(values):
    ids, vals = _arrays(values)
    assert decay_prices(ids, vals, 0.0) is None


@given(values=price_vectors, floor=floors)
def test_factor_zero_is_cold_start_any_floor(values, floor):
    ids, vals = _arrays(values)
    assert decay_prices(ids, vals, 0.0, floor=floor) is None


@given(values=price_vectors)
def test_factor_one_is_identity(values):
    ids, vals = _arrays(values)
    out = decay_prices(ids, vals, 1.0)
    assert out is not None
    out_ids, out_vals = out
    assert out_ids is ids and out_vals is vals  # no copy, raw carry


@given(values=price_vectors, factor=factors, floor=floors)
def test_decay_contract(values, factor, floor):
    ids, vals = _arrays(values)
    ids_before = ids.copy()
    vals_before = vals.copy()
    out = decay_prices(ids, vals, factor, floor=floor)

    # Inputs are never mutated.
    assert np.array_equal(ids, ids_before)
    assert np.array_equal(vals, vals_before)

    expected = vals_before * factor
    if floor > 0.0:
        expected[expected < floor] = 0.0

    raw_carry = factor == 1.0 and floor <= 0.0  # identity short-circuit
    if out is None:
        # None exactly when every carried price died (and the identity
        # path, which skips the all-zero check, was not taken).
        assert not expected.any() and not raw_carry
        return
    out_ids, out_vals = out
    assert expected.any() or raw_carry
    assert np.array_equal(out_ids, ids_before)
    assert out_vals.shape == vals_before.shape
    assert out_vals.dtype == vals_before.dtype
    assert np.array_equal(out_vals, expected)
    # Never negative, and flushed entries are exactly 0.
    assert np.all(out_vals >= 0.0)
    if floor > 0.0:
        below = out_vals < floor
        assert np.all(out_vals[below] == 0.0)


@given(values=price_vectors, factor=st.floats(allow_nan=False))
def test_out_of_range_factor_raises(values, factor):
    ids, vals = _arrays(values)
    if 0.0 <= factor <= 1.0:
        decay_prices(ids, vals, factor)  # must not raise
    else:
        with pytest.raises(ValueError):
            decay_prices(ids, vals, factor)
