"""Property: store-based ``build_problem`` ≡ ``build_problem_reference``.

Random scenarios (population, catalog, churn, stagger, sub-slot rounds,
elapsed slots) are realized through the official system APIs, then the
slot problem is constructed by both paths and compared byte for byte on
the CSR columns — request order, valuations, candidate uploader sets,
edge net-utilities, capacities, chunk-key pairs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given

from strategies import scenarios
from support import assert_same_problem


@given(sc=scenarios)
def test_build_matches_reference_full_capacity(sc):
    system = sc.build_system()
    now = system.now
    new_p, new_owner = system.build_problem(now)
    ref_p, ref_owner = system.build_problem_reference(now)
    assert ref_owner == new_owner
    assert_same_problem(ref_p, new_p)


@given(sc=scenarios)
def test_build_matches_reference_subround_budgets(sc):
    """The sub-round budget split: dict and array capacity variants."""
    system = sc.build_system()
    now = system.now
    rounds = max(2, sc.bid_rounds)
    ids, caps = system._capacity_arrays()
    shares = caps * 1 // rounds  # a deliberately uneven, zero-heavy split
    budgets = {
        pid: int(share)
        for pid, share in zip(ids.tolist(), shares.tolist())
        if share > 0
    }
    new_p, _ = system.build_problem(now, capacities=budgets)
    ref_p, _ = system.build_problem_reference(now, capacities=budgets)
    assert_same_problem(ref_p, new_p)
    # The loop-free array variant must build the identical problem.
    arr_p, _ = system.build_problem(now, capacity_array=shares)
    assert_same_problem(new_p, arr_p)
    assert np.array_equal(
        np.asarray([arr_p.capacity_of(int(u)) for u in ids.tolist()]),
        shares,
    )
