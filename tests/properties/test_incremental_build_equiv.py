"""Property: incremental ``patch_problem`` ≡ cold ``build_problem``.

Random multi-slot trajectories — mixing churn, lossy links (retry
suppression), sub-slot re-bid rounds and mid-run regime events (inter-ISP
cost shocks, capacity ramps, overlay degree changes) — are realized
through the official system APIs.  Two invariants are pinned:

* **per-slot byte-identity**: at every slot boundary the delta-patched
  problem equals a cold rebuild on the same state, byte for byte across
  the CSR columns (request order, valuations, candidate uploader sets,
  edge net-utilities, capacities);
* **twin-trajectory equality**: a system running with
  ``incremental_build=True`` produces exactly the same per-slot metrics
  and final peer state as its cold twin, slot after slot.

A wide-window variant (``prefetch_chunks`` beyond the packed-word bound)
drives the boolean fallback of the fused assembler through the same
assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from hypothesis import given
from hypothesis import strategies as st

from repro.p2p.config import SystemConfig
from repro.p2p.state import _PACKED_WINDOW_MAX
from repro.p2p.system import P2PSystem
from support import assert_same_peer_state, assert_same_problem


@dataclass(frozen=True)
class DeltaScenario:
    seed: int
    n_peers: int
    n_videos: int
    churn: bool
    bid_rounds: int
    slots: int
    lossy: bool
    shock: Optional[str]  # regime event fired before the middle slot
    shock_slot: int
    wide_window: bool  # W > _PACKED_WINDOW_MAX: boolean fallback path

    def config(self, incremental: bool) -> SystemConfig:
        kwargs = dict(
            seed=self.seed,
            n_videos=self.n_videos,
            bid_rounds_per_slot=self.bid_rounds,
            arrival_rate_per_s=1.0,
            early_departure_prob=0.4 if self.churn else 0.0,
            incremental_build=incremental,
        )
        if self.wide_window:
            kwargs["prefetch_chunks"] = _PACKED_WINDOW_MAX + 3
        return SystemConfig.tiny(**kwargs)

    def build(self, incremental: bool) -> P2PSystem:
        system = P2PSystem(self.config(incremental))
        system.populate_static(self.n_peers)
        if self.lossy:
            system.apply_link_preset("loss30-delay50")
        return system

    def fire_events(self, system: P2PSystem, slot_index: int) -> None:
        """Mid-trajectory regime event, identically on either twin."""
        if self.shock is None or slot_index != self.shock_slot:
            return
        if self.shock == "cost":
            system.scale_inter_isp_costs(1.7)
        elif self.shock == "capacity":
            system.scale_upload_capacities(0.5)
        elif self.shock == "degree":
            system.set_neighbor_target(3)
        else:  # pragma: no cover - strategy is closed over these names
            raise AssertionError(self.shock)


delta_scenarios = st.builds(
    DeltaScenario,
    seed=st.integers(0, 10_000),
    n_peers=st.integers(4, 16),
    n_videos=st.integers(1, 3),
    churn=st.booleans(),
    bid_rounds=st.integers(1, 2),
    slots=st.integers(2, 5),
    lossy=st.booleans(),
    shock=st.sampled_from([None, "cost", "capacity", "degree"]),
    shock_slot=st.integers(1, 2),
    wide_window=st.just(False),
)

wide_scenarios = st.builds(
    DeltaScenario,
    seed=st.integers(0, 10_000),
    n_peers=st.integers(4, 12),
    n_videos=st.integers(1, 2),
    churn=st.booleans(),
    bid_rounds=st.just(1),
    slots=st.integers(2, 4),
    lossy=st.booleans(),
    shock=st.sampled_from([None, "cost"]),
    shock_slot=st.just(1),
    wide_window=st.just(True),
)


def _run_twins(sc: DeltaScenario) -> None:
    cold = sc.build(incremental=False)
    inc = sc.build(incremental=True)
    for s in range(sc.slots):
        sc.fire_events(cold, s)
        sc.fire_events(inc, s)
        m_cold = cold.run_slot(churn=sc.churn, remove_finished=sc.churn)
        m_inc = inc.run_slot(churn=sc.churn, remove_finished=sc.churn)
        assert m_cold == m_inc, f"slot {s} metrics diverged"
    assert_same_peer_state(cold, inc)


@given(sc=delta_scenarios)
def test_incremental_trajectory_matches_cold_twin(sc):
    _run_twins(sc)


@given(sc=wide_scenarios)
def test_incremental_trajectory_matches_cold_twin_wide_window(sc):
    """Windows beyond the packed-word bound: boolean fallback path."""
    _run_twins(sc)


def _check_patch_byte_identity(sc: DeltaScenario) -> None:
    system = sc.build(incremental=True)
    for s in range(sc.slots):
        sc.fire_events(system, s)
        system.run_slot(churn=sc.churn, remove_finished=sc.churn)
        if system._prev_problem is None:
            continue
        # Double-build at the slot boundary: a cold rebuild and a patch
        # of the retained problem with the mutations run_slot just
        # recorded (deliveries, playback, churn batches, retry pushes,
        # any regime invalidation) must agree byte for byte.
        now = system.now
        cold_p, _ = system.build_problem(now)
        delta = system.store.consume_delta()
        patched = system.patch_problem(system._prev_problem, delta, now)
        assert_same_problem(cold_p, patched)


@given(sc=delta_scenarios)
def test_patch_byte_identical_along_trajectory(sc):
    _check_patch_byte_identity(sc)


@given(sc=wide_scenarios)
def test_patch_byte_identical_wide_window(sc):
    _check_patch_byte_identity(sc)
