"""Property: ``_apply_transfers`` ≡ ``_apply_transfers_reference``.

Twin systems follow the same deterministic trajectory; one applies a
slot's scheduled transfers through the vectorized store epilogue, the
other through the per-edge reference loop.  The resulting peer state —
buffer bitmaps (store matrix rows), upload/download counters, traffic
matrix, inter/intra split — must be identical, and the store must stay
consistent with the object graph.
"""

from __future__ import annotations

from hypothesis import given

from strategies import scenarios
from support import assert_same_peer_state


@given(sc=scenarios)
def test_apply_matches_reference(sc):
    fast = sc.build_system()
    slow = sc.build_system()
    now = fast.now
    assert slow.now == now
    problem_fast, _ = fast.build_problem(now)
    problem_slow, _ = slow.build_problem(now)
    result_fast = fast.scheduler.schedule(problem_fast)
    result_slow = slow.scheduler.schedule(problem_slow)
    assert result_fast.assignment == result_slow.assignment
    pair_fast = fast._apply_transfers(problem_fast, result_fast)
    pair_slow = slow._apply_transfers_reference(problem_slow, result_slow)
    assert pair_fast == pair_slow
    assert_same_peer_state(fast, slow)
    fast.store.check_consistency(fast.peers)
