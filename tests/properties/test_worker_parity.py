"""Property: multiprocess shard workers ≡ in-process sequential sharding.

Random multi-slot trajectories (churn, lossy links, regime shocks —
the same scenario space as ``test_sharded_solve_equiv``) driven twice
through the official system APIs: once with ``shard_workers=0`` (the
in-process sequential sharded solve) and once with ``shard_workers=2``
(the shared-memory worker pool).  The two runs must agree **byte for
byte** along the whole trajectory — per-slot metrics, final peer
state, and on the final slot problem the full result columns
(assignment, λ, η, stats) — with zero reason-coded worker fallbacks,
which pins that the pool really ran and really changed nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScheduleResult, workers_available
from repro.p2p.system import P2PSystem
from strategies import Scenario, scenarios
from support import assert_same_peer_state

pytestmark = pytest.mark.skipif(
    not workers_available(), reason="shared memory unavailable on this platform"
)


@dataclass(frozen=True)
class WorkerScenario:
    base: Scenario
    lossy: bool
    shock: Optional[str]
    n_shards: int

    @property
    def slots(self) -> int:
        return max(2, self.base.slots)

    def system(self, workers: int) -> P2PSystem:
        config = replace(
            self.base.config(),
            sharded_solve=True,
            shard_count=self.n_shards,
            shard_workers=workers,
        )
        system = P2PSystem(config)
        system.populate_static(self.base.n_peers, stagger=self.base.stagger)
        if self.lossy:
            system.apply_link_preset("loss30-delay50")
        return system

    def drive(self, system: P2PSystem, slot: int):
        if slot == 1:
            if self.shock == "cost":
                system.scale_inter_isp_costs(1.5)
            elif self.shock == "capacity":
                system.scale_upload_capacities(0.6)
        return system.run_slot(
            churn=self.base.churn, remove_finished=self.base.churn
        )


worker_scenarios = st.builds(
    WorkerScenario,
    base=scenarios,
    lossy=st.booleans(),
    shock=st.sampled_from([None, "cost", "capacity"]),
    n_shards=st.integers(2, 4),
)


def _assert_results_byte_identical(a: ScheduleResult, b: ScheduleResult) -> None:
    assert np.array_equal(a.assignment_array(), b.assignment_array())
    assert np.array_equal(a.price_arrays()[0], b.price_arrays()[0])
    assert np.array_equal(a.price_arrays()[1], b.price_arrays()[1])
    assert np.array_equal(a.eta_arrays()[1], b.eta_arrays()[1])
    assert a.stats == b.stats


# Each example forks a 2-process pool, so the budget is deliberately
# smaller than the profile's — the pool itself is exercised harder (and
# cheaper) by tests/core/test_workers.py; this pins the end-to-end
# trajectory contract.
@settings(max_examples=8)
@given(sc=worker_scenarios)
def test_worker_trajectory_byte_identical(sc):
    sequential = sc.system(workers=0)
    parallel = sc.system(workers=2)
    try:
        for s in range(sc.slots):
            m_seq = sc.drive(sequential, s)
            m_par = sc.drive(parallel, s)
            assert m_seq == m_par, f"slot {s} metrics diverged"
        assert_same_peer_state(sequential, parallel)
        # No silent degradation: if the pool never ran, this test pins
        # nothing.  Fallback counters must be empty and the last solve
        # must have used the workers (unless the trajectory degenerated
        # to a short-circuit partition, where no pool is consulted).
        assert parallel.scheduler.solver.worker_fallbacks == {}
        report = parallel.scheduler.last_report
        if report.fallback != "short-circuit":
            assert report.procs == 2
        # Solver-level pin on the final slot problem: full columns.
        problem, _ = parallel.build_problem(parallel.now)
        _assert_results_byte_identical(
            sequential.scheduler.schedule(problem),
            parallel.scheduler.schedule(problem),
        )
        assert parallel.scheduler.solver.worker_fallbacks == {}
    finally:
        sequential.close()
        parallel.close()
