"""Property: slot traces are a pure function of (config, seed).

The canonical (timing-stripped) serialization of every emitted span must
be byte-identical across repeated runs of the same seed, across solver
configurations that are pinned schedule-equivalent (flat vs sharded on
capacity-ample workloads is *not* required here — only that each
configuration replays itself), and across the order systems are built
in.  This is what makes committed example traces diffable: ``repro
trace diff`` on two runs shows real counter differences, never noise.
Runs under the deterministic ``repro-props`` profile via
``make test-props``.
"""

from __future__ import annotations

from typing import List

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.obs import MemoryTraceSink, canonical_line, validate_trace_record
from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem

configs = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 2**16),
        "n_peers": st.integers(5, 20),
        "churn": st.booleans(),
        "incremental_build": st.booleans(),
        "sharded_solve": st.booleans(),
    }
)


def _trace(params: dict, n_slots: int = 3) -> List[str]:
    config = SystemConfig.tiny(
        seed=params["seed"],
        incremental_build=params["incremental_build"],
        sharded_solve=params["sharded_solve"],
    )
    system = P2PSystem(config)
    system.populate_static(params["n_peers"])
    tracer = system.attach_tracer(MemoryTraceSink())
    try:
        for _ in range(n_slots):
            system.run_slot(churn=params["churn"])
    finally:
        system.close()
    records = tracer.records()
    for record in records:
        validate_trace_record(record)
    return [canonical_line(r) for r in records]


@given(params=configs)
@settings(max_examples=25)
def test_same_seed_emits_byte_identical_canonical_lines(params):
    assert _trace(params) == _trace(params)


@given(params=configs)
@settings(max_examples=10)
def test_trace_unaffected_by_sibling_system_construction(params):
    """Interleaving an unrelated system's run does not perturb the trace.

    Traces must depend only on the traced system's own (config, seed) —
    not on what else the process happened to schedule, allocate, or
    solve in between.  A second system with a different seed runs its
    slots interleaved with the traced one.
    """
    baseline = _trace(params)

    config = SystemConfig.tiny(
        seed=params["seed"],
        incremental_build=params["incremental_build"],
        sharded_solve=params["sharded_solve"],
    )
    sibling = P2PSystem(SystemConfig.tiny(seed=params["seed"] + 1))
    sibling.populate_static(8)
    system = P2PSystem(config)
    system.populate_static(params["n_peers"])
    tracer = system.attach_tracer(MemoryTraceSink())
    try:
        for _ in range(3):
            sibling.run_slot()
            system.run_slot(churn=params["churn"])
    finally:
        sibling.close()
        system.close()
    interleaved = [canonical_line(r) for r in tracer.records()]
    assert interleaved == baseline


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10)
def test_memory_and_jsonl_sinks_agree(seed, tmp_path_factory):
    """The file a JsonlTraceSink writes holds exactly the emitted records."""
    import json

    from repro.obs import JsonlTraceSink, load_trace, strip_timing

    path = tmp_path_factory.mktemp("traces") / f"t{seed}.jsonl"
    config = SystemConfig.tiny(seed=seed)

    mem_system = P2PSystem(config)
    mem_system.populate_static(10)
    mem_tracer = mem_system.attach_tracer(MemoryTraceSink())
    file_system = P2PSystem(config)
    file_system.populate_static(10)
    with JsonlTraceSink(path) as sink:
        file_system.attach_tracer(sink)
        for _ in range(2):
            mem_system.run_slot()
            file_system.run_slot()
        mem_system.close()
        file_system.close()
    loaded = load_trace(path)
    emitted = mem_tracer.records()
    assert [strip_timing(r) for r in loaded] == [
        json.loads(canonical_line(r)) for r in emitted
    ]
