"""Scenario strategies for the store-equivalence property suite.

A *scenario* is everything that shapes a slot problem: the RNG seed,
population size and stagger, catalog size, churn intensity, sub-slot
bidding rounds and how many slots have already elapsed.  Scenarios are
realized exclusively through the official system APIs (``P2PSystem``,
``populate_static``, ``run``), so every store code path — admission,
removal, transfers, neighbor refill, batched playback — runs before the
equivalence assertions fire.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import strategies as st

from repro.p2p.config import SystemConfig
from repro.p2p.system import P2PSystem


@dataclass(frozen=True)
class Scenario:
    seed: int
    n_peers: int
    n_videos: int
    stagger: bool
    churn: bool
    arrival_rate: float
    early_departure_prob: float
    bid_rounds: int
    slots: int
    neighbor_target: int

    def config(self) -> SystemConfig:
        return SystemConfig.tiny(
            seed=self.seed,
            n_videos=self.n_videos,
            bid_rounds_per_slot=self.bid_rounds,
            neighbor_target=self.neighbor_target,
            arrival_rate_per_s=self.arrival_rate,
            early_departure_prob=self.early_departure_prob,
        )

    def build_system(self) -> P2PSystem:
        """Realize the scenario through the official system APIs only."""
        system = P2PSystem(self.config())
        system.populate_static(self.n_peers, stagger=self.stagger)
        if self.slots:
            system.run(
                self.slots * system.config.slot_seconds,
                churn=self.churn,
                remove_finished=self.churn,
            )
        return system


scenarios = st.builds(
    Scenario,
    seed=st.integers(0, 10_000),
    n_peers=st.integers(3, 16),
    n_videos=st.integers(1, 3),
    stagger=st.booleans(),
    churn=st.booleans(),
    arrival_rate=st.floats(0.2, 2.0),
    early_departure_prob=st.floats(0.0, 0.6),
    bid_rounds=st.integers(1, 3),
    slots=st.integers(0, 3),
    neighbor_target=st.integers(3, 10),
)
