"""Property: a scenario is a pure function of (spec, seed).

Two compiles of the same spec + seed must produce ``==`` timelines, and
two full runs must produce identical per-slot metric traces and
byte-identical reports — the guarantee that makes scenario results
citable and scheduler comparisons on a scenario fair (every scheduler
sees the same workload).  Runs under the deterministic ``repro-props``
profile via ``make test-props``.
"""

from __future__ import annotations

from dataclasses import replace

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.scenarios import (
    ArrivalRateChange,
    CapacityRamp,
    CostShock,
    FlashCrowd,
    LocalityCap,
    NewRelease,
    ScenarioRunner,
    ScenarioSpec,
    SeederOutage,
    build_scenario,
    compile_timeline,
    scenario_names,
)

#: Abridged horizon: 3 tiny slots — enough for events to land mid-run.
HORIZON = 30.0

event_specs = st.one_of(
    st.builds(
        FlashCrowd,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        n_peers=st.integers(1, 12),
        over_seconds=st.floats(0.0, 10.0, allow_nan=False),
        video_id=st.one_of(st.none(), st.integers(0, 2)),
        early_departure_prob=st.floats(0.0, 1.0, allow_nan=False),
    ),
    st.builds(
        ArrivalRateChange,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        rate_per_s=st.floats(0.1, 5.0, allow_nan=False),
    ),
    st.builds(
        CostShock,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        factor=st.floats(0.25, 4.0, allow_nan=False),
    ),
    st.builds(
        NewRelease,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        video_id=st.integers(0, 2),
    ),
    st.builds(
        LocalityCap,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        neighbor_target=st.integers(2, 10),
    ),
    st.builds(
        SeederOutage,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        duration=st.floats(5.0, 20.0, allow_nan=False),
        fraction=st.floats(0.25, 1.0, exclude_min=True, allow_nan=False),
    ),
    st.builds(
        CapacityRamp,
        time=st.floats(0.0, HORIZON, allow_nan=False),
        factor=st.floats(0.25, 3.0, allow_nan=False),
        target=st.sampled_from(["watchers", "seeds", "all"]),
    ),
)

random_specs = st.builds(
    ScenarioSpec,
    name=st.just("fuzzed"),
    scale=st.just("tiny"),
    schedulers=st.just(("auction",)),
    n_static_peers=st.integers(0, 15),
    stagger=st.booleans(),
    duration_seconds=st.just(HORIZON),
    churn=st.booleans(),
    events=st.lists(event_specs, max_size=4).map(tuple),
)


def _traces(spec: ScenarioSpec, seed: int):
    result = ScenarioRunner(spec, seed=seed).run()
    run = result.runs[spec.schedulers[0]]
    return result.timeline, run.collector.slots, result.render_report()


@given(
    name=st.sampled_from(scenario_names()),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25)
def test_catalog_scenarios_replay_identically(name, seed):
    spec = build_scenario(name, scale="tiny").abridged(
        HORIZON, schedulers=("auction",)
    )
    assert compile_timeline(spec, seed) == compile_timeline(spec, seed)
    timeline_a, slots_a, report_a = _traces(spec, seed)
    timeline_b, slots_b, report_b = _traces(spec, seed)
    assert timeline_a == timeline_b
    assert slots_a == slots_b  # frozen dataclasses: exact equality
    assert report_a == report_b


@given(spec=random_specs, seed=st.integers(0, 2**16))
@settings(max_examples=25)
def test_fuzzed_specs_replay_identically(spec, seed):
    timeline_a, slots_a, report_a = _traces(spec, seed)
    timeline_b, slots_b, report_b = _traces(spec, seed)
    assert timeline_a == timeline_b
    assert slots_a == slots_b
    assert report_a == report_b


def test_shard_count_invariant_report():
    """Shard counts {1, 2, 4} replay the flat scenario report verbatim.

    On a capacity-ample workload prices never bind, so the region-
    sharded solve must land on the very same schedule as the flat
    reference whatever the partition — pinned via the rendered report
    (which excludes timing) and the slot traces with ``auction_rounds``
    and the sharded-coordination diagnostics normalized away
    (coordination legitimately re-counts rounds, and the diagnostic
    fields describe *how* the solve executed, not what it scheduled).
    """
    spec = ScenarioSpec(
        name="shard-pin",
        description="sharded-solve determinism pin",
        scale="tiny",
        schedulers=("auction",),
        n_static_peers=10,
        stagger=True,
        duration_seconds=HORIZON,
        churn=False,
        events=(CostShock(time=12.0, factor=1.5),),
    )
    baseline = ScenarioRunner(spec, seed=7).run()
    base_report = baseline.render_report()

    def normalized(result):
        return [
            replace(
                slot,
                auction_rounds=0,
                coordination_rounds=0,
                boundary_uploaders=0,
                contested_rows=0,
                sharded_fallbacks=0,
                sharded_fallback_reason="",
            )
            for slot in result.runs["auction"].collector.slots
        ]

    base_slots = normalized(baseline)
    assert base_slots, "scenario produced no slots — pin is vacuous"
    for count in (1, 2, 4):
        sharded = replace(
            spec,
            config_overrides={"sharded_solve": True, "shard_count": count},
        )
        result = ScenarioRunner(sharded, seed=7).run()
        assert normalized(result) == base_slots, f"shard_count={count}"
        assert result.render_report() == base_report, f"shard_count={count}"


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10)
def test_timeline_independent_of_scheduler_order(seed):
    """Both schedulers of a comparison see the identical workload."""
    spec = build_scenario("flash-crowd", scale="tiny").abridged(HORIZON)
    runner = ScenarioRunner(spec, seed=seed)
    result = runner.run(schedulers=("auction", "locality"))
    flipped = ScenarioRunner(spec, seed=seed).run(
        schedulers=("locality", "auction")
    )
    for name in ("auction", "locality"):
        assert (
            result.runs[name].collector.slots
            == flipped.runs[name].collector.slots
        )
