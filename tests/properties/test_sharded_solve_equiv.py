"""Property: region-sharded solve ≡ flat solve within the certificate.

Random multi-slot trajectories — churn, lossy links, sub-slot re-bid
rounds and mid-run regime shocks (inter-ISP price shocks, capacity
ramps), realized through the official system APIs by reusing the
scenario strategy of :mod:`strategies` — pin the two halves of the
sharded-solve contract:

* ``n_shards = 1`` is **byte-identical** to the flat solver: a system
  configured with ``sharded_solve=True, shard_count=1`` replays the
  flat twin's trajectory slot for slot (metrics and final peer state),
  and on the same problem the sharded solver returns the very same
  assignment, λ, η and stats arrays;
* for ``n_shards > 1`` the boundary-price coordination must land inside
  the auction's own certificate on every slot problem of the
  trajectory: the merged assignment is feasible (globally and
  restricted to every shard), and the welfare gap vs the flat solve is
  within the ``n·ε`` theorem bound.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    AuctionSolver,
    ScheduleResult,
    ShardedAuctionSolver,
    plan_shards,
)
from repro.p2p.system import P2PSystem
from strategies import Scenario, scenarios
from support import assert_same_peer_state


@dataclass(frozen=True)
class ShardScenario:
    base: Scenario
    lossy: bool
    shock: Optional[str]  # regime event fired before the middle slot
    n_shards: int

    @property
    def slots(self) -> int:
        return max(2, self.base.slots)

    def system(self, sharded: bool, shard_count: Optional[int] = None) -> P2PSystem:
        config = self.base.config()
        if sharded:
            config = replace(
                config,
                sharded_solve=True,
                shard_count=shard_count or self.n_shards,
            )
        system = P2PSystem(config)
        system.populate_static(self.base.n_peers, stagger=self.base.stagger)
        if self.lossy:
            system.apply_link_preset("loss30-delay50")
        return system

    def drive(self, system: P2PSystem, slot: int):
        """One slot, with the regime shock fired before the middle one."""
        if slot == 1:
            if self.shock == "cost":
                system.scale_inter_isp_costs(1.5)
            elif self.shock == "capacity":
                system.scale_upload_capacities(0.6)
        return system.run_slot(
            churn=self.base.churn, remove_finished=self.base.churn
        )


shard_scenarios = st.builds(
    ShardScenario,
    base=scenarios,
    lossy=st.booleans(),
    shock=st.sampled_from([None, "cost", "capacity"]),
    n_shards=st.integers(2, 4),
)


def _assert_results_byte_identical(a: ScheduleResult, b: ScheduleResult) -> None:
    assert np.array_equal(a.assignment_array(), b.assignment_array())
    assert np.array_equal(a.price_arrays()[0], b.price_arrays()[0])
    assert np.array_equal(a.price_arrays()[1], b.price_arrays()[1])
    assert np.array_equal(a.eta_arrays()[1], b.eta_arrays()[1])
    assert a.stats == b.stats


@given(sc=shard_scenarios)
def test_single_shard_byte_identical(sc):
    """shard_count=1 replays the flat trajectory bit for bit."""
    flat = sc.system(sharded=False)
    one = sc.system(sharded=True, shard_count=1)
    assert one.scheduler.name == "auction-sharded"
    for s in range(sc.slots):
        m_flat = sc.drive(flat, s)
        m_one = sc.drive(one, s)
        # The sharded run honestly records its degenerate-partition
        # short-circuits; the flat twin has no sharded diagnostics at
        # all.  Everything the slot *scheduled* must still match.
        m_one = replace(m_one, sharded_fallbacks=0, sharded_fallback_reason="")
        assert m_flat == m_one, f"slot {s} metrics diverged"
    assert_same_peer_state(flat, one)
    # Solver-level pin on the final slot problem: assignment, λ, η and
    # stats all byte-identical, not just the aggregate metrics.
    problem, _ = one.build_problem(one.now)
    epsilon = one.config.epsilon
    flat_res = AuctionSolver(epsilon=epsilon).solve(problem)
    _assert_results_byte_identical(one.scheduler.schedule(problem), flat_res)
    # A degenerate partition (every row in one region bucket) must
    # short-circuit identically too, whatever the configured count.
    many = ShardedAuctionSolver(epsilon=epsilon, n_shards=sc.n_shards)
    _assert_results_byte_identical(
        many.solve(problem, np.zeros(problem.n_requests, dtype=np.int64)),
        flat_res,
    )
    assert many.last_report.fallback == "short-circuit"


@given(sc=shard_scenarios)
def test_multi_shard_certificate_along_trajectory(sc):
    """Every slot problem: feasible per shard, welfare gap ≤ n·ε."""
    system = sc.system(sharded=False)
    epsilon = system.config.epsilon
    solver = ShardedAuctionSolver(epsilon=epsilon, n_shards=sc.n_shards)
    for s in range(sc.slots):
        sc.drive(system, s)
        problem, _ = system.build_problem(system.now)
        if problem.n_requests == 0:
            continue
        regions = system.store.regions_of(problem.request_peer_array())
        flat_res = AuctionSolver(epsilon=epsilon).solve(problem)
        res = solver.solve(problem, regions)
        res.check_feasible(problem)
        gap = abs(flat_res.welfare(problem) - res.welfare(problem))
        bound = problem.n_requests * epsilon + 1e-6
        assert gap <= bound, (
            f"slot {s}: welfare gap {gap} exceeds n·ε bound {bound} "
            f"({solver.last_report})"
        )
        # Restricted to each shard the merged schedule must itself be a
        # feasible sub-schedule (capacities, candidate membership).
        plan = plan_shards(regions, sc.n_shards)
        merged = res.assignment_array()
        for shard in range(plan.n_shards):
            rows = plan.rows(shard)
            if not len(rows):
                continue
            keep = set(rows.tolist())
            sub, index_map = problem.restricted(lambda r: r in keep)
            original = np.fromiter(
                (index_map[i] for i in range(sub.n_requests)),
                dtype=np.int64,
                count=sub.n_requests,
            )
            ScheduleResult.from_assignment_ids(
                merged[original].copy()
            ).check_feasible(sub)
