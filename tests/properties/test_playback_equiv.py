"""Property: batched playback ≡ per-chunk ``advance_to_reference``.

Twin systems follow the same deterministic trajectory; one advances
playback through the store's batched pass, the other through the
per-session/per-chunk reference loop.  Due/missed totals and every
session's position, played count, missed set and last-advance stamp
must agree — including partial-slot advances and a follow-up full-slot
advance, which exercises the missed-window exclusion the store tracks
in its bitmap matrix.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from strategies import scenarios
from support import assert_same_peer_state


@given(sc=scenarios, fraction=st.sampled_from([0.3, 0.5, 1.0]))
def test_playback_matches_reference(sc, fraction):
    fast = sc.build_system()
    slow = sc.build_system()
    now = fast.now
    slot = fast.config.slot_seconds
    for to_time in (now + fraction * slot, now + slot, now + 2 * slot):
        pair_fast = fast._advance_playback(to_time)
        pair_slow = slow._advance_playback_reference(to_time)
        assert pair_fast == pair_slow
    assert_same_peer_state(fast, slow)
    fast.store.check_consistency(fast.peers)
    # The next slot problem is built on post-advance state (positions,
    # missed exclusions): both paths must still agree byte for byte.
    from support import assert_same_problem

    new_p, _ = fast.build_problem(fast.now + 2 * slot)
    ref_p, _ = fast.build_problem_reference(fast.now + 2 * slot)
    assert_same_problem(ref_p, new_p)
