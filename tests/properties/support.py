"""Byte-level comparison helpers for the equivalence suite."""

from __future__ import annotations

import numpy as np

from repro.core.problem import SchedulingProblem
from repro.p2p.system import P2PSystem


def canonical_edges(problem: SchedulingProblem):
    """CSR edge columns with candidates canonicalized by uploader id.

    The columnar path sorts candidates by uploader id; the per-request
    reference emits them in neighbor-set iteration order.  Sorting both
    within each request row makes the flat columns directly comparable
    byte for byte.
    """
    csr = problem.csr()
    rows = csr.edge_rows()
    uploader_ids = csr.uploaders[csr.uploader_index]
    perm = np.lexsort((uploader_ids, rows))
    return rows[perm], uploader_ids[perm], csr.values[perm], csr.indptr


def assert_same_problem(
    ref: SchedulingProblem, new: SchedulingProblem
) -> None:
    """Byte-for-byte equality of two slot problems' CSR columns."""
    assert ref.n_requests == new.n_requests
    assert ref.n_edges() == new.n_edges()
    # Uploader declarations: same peers, same order, same capacities.
    assert ref.uploaders() == new.uploaders()
    ref_csr, new_csr = ref.csr(), new.csr()
    assert np.array_equal(ref_csr.uploaders, new_csr.uploaders)
    assert np.array_equal(ref_csr.capacity, new_csr.capacity)
    # Request identity columns.
    assert np.array_equal(ref.request_peer_array(), new.request_peer_array())
    if ref.n_requests:
        assert np.array_equal(ref.chunk_pair_array(), new.chunk_pair_array())
    ref_vals = np.fromiter(
        (ref.request(r).valuation for r in range(ref.n_requests)),
        dtype=float,
        count=ref.n_requests,
    )
    new_vals = np.fromiter(
        (new.request(r).valuation for r in range(new.n_requests)),
        dtype=float,
        count=new.n_requests,
    )
    assert np.array_equal(ref_vals, new_vals)  # exact, no tolerance
    # Candidate edges: rows, uploader ids, net utilities — exact.
    r_rows, r_ups, r_values, r_indptr = canonical_edges(ref)
    n_rows, n_ups, n_values, n_indptr = canonical_edges(new)
    assert np.array_equal(r_indptr, n_indptr)
    assert np.array_equal(r_rows, n_rows)
    assert np.array_equal(r_ups, n_ups)
    assert np.array_equal(r_values, n_values)  # exact float equality


def assert_same_peer_state(a: P2PSystem, b: P2PSystem) -> None:
    """Full peer/session/traffic state equality between twin systems."""
    assert a.peers.keys() == b.peers.keys()
    for pid, pa in a.peers.items():
        pb = b.peers[pid]
        assert len(pa.buffer) == len(pb.buffer), pid
        assert np.array_equal(pa.buffer.mask, pb.buffer.mask), pid
        assert pa.chunks_uploaded == pb.chunks_uploaded, pid
        assert pa.chunks_downloaded == pb.chunks_downloaded, pid
        assert (pa.session is None) == (pb.session is None), pid
        if pa.session is not None:
            assert pa.session.position == pb.session.position, pid
            assert pa.session.played == pb.session.played, pid
            assert pa.session.missed == pb.session.missed, pid
            assert pa.session._last_advance == pb.session._last_advance, pid
    assert np.array_equal(a.traffic_matrix.matrix(), b.traffic_matrix.matrix())
