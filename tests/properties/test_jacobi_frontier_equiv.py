"""Property: event-driven (frontier) jacobi ≡ ``jacobi-dense`` exactly.

The frontier solver re-evaluates only requests incident to repriced
uploaders (plus evicted requests); the dense reference re-scans every
pending request every round.  Both must produce byte-identical results —
assignment, final λ, η duals and every ``SolverStats`` counter — over
randomly generated problems covering the frontier's hard cases:

* zero-capacity uploaders (masked edges, rows retired up front);
* integer weights (exact bid ties → ε = 0 dormancy, contested
  evictions with min-bid ties where the price does *not* move);
* tight capacities (evictions / contested-segment heap replays);
* warm-started prices (stale-dormancy from the very first round).

Runs under the deterministic ``repro-props`` Hypothesis profile.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.auction import AuctionNonConvergence, AuctionSolver
from repro.core.problem import SchedulingProblem


def build_problem(
    seed: int,
    n_requests: int,
    n_uploaders: int,
    max_candidates: int,
    zero_cap_prob: float,
    integer_weights: bool,
) -> SchedulingProblem:
    rng = np.random.default_rng(seed)
    problem = SchedulingProblem()
    uploader_ids = [10_000 + i for i in range(n_uploaders)]
    for u in uploader_ids:
        capacity = 0 if rng.random() < zero_cap_prob else int(rng.integers(1, 4))
        problem.set_capacity(u, capacity)
    for r in range(n_requests):
        k = int(rng.integers(1, max_candidates + 1))
        chosen = rng.choice(n_uploaders, size=min(k, n_uploaders), replace=False)
        if integer_weights:
            valuation = float(rng.integers(1, 9))
            costs = rng.integers(0, 9, size=len(chosen)).astype(float)
        else:
            valuation = float(rng.uniform(0.5, 9.0))
            costs = rng.uniform(0.0, 9.0, size=len(chosen))
        problem.add_request(
            peer=r,
            chunk=f"c{r}",
            valuation=valuation,
            candidates={uploader_ids[int(j)]: float(c) for j, c in zip(chosen, costs)},
        )
    return problem


def warm_prices(seed: int, problem: SchedulingProblem, fraction: float):
    if fraction <= 0.0:
        return None
    rng = np.random.default_rng(seed + 1)
    return {
        int(u): float(rng.uniform(-1.0, 4.0))
        for u in problem.uploaders()
        if rng.random() < fraction
    }


def assert_identical(problem, epsilon, initial_prices=None) -> None:
    results = []
    for mode in ("jacobi", "jacobi-dense"):
        solver = AuctionSolver(epsilon=epsilon, mode=mode, max_rounds=400)
        try:
            results.append(solver.solve(problem, initial_prices=initial_prices))
        except AuctionNonConvergence:
            results.append(None)
    frontier, dense = results
    assert (frontier is None) == (dense is None)
    if frontier is None:
        return
    assert frontier.assignment == dense.assignment
    assert frontier.prices == dense.prices
    assert frontier.etas == dense.etas  # exact float equality
    assert frontier.stats == dense.stats  # every counter, incl. evictions


problems = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 50_000),
        "n_requests": st.integers(1, 60),
        "n_uploaders": st.integers(1, 12),
        "max_candidates": st.integers(1, 6),
        "zero_cap_prob": st.sampled_from([0.0, 0.2, 0.6]),
        "integer_weights": st.booleans(),
    }
)


@given(
    spec=problems,
    epsilon=st.sampled_from([0.0, 1e-9, 0.01]),
)
def test_frontier_matches_dense(spec, epsilon):
    problem = build_problem(**spec)
    assert_identical(problem, epsilon)


@given(
    spec=problems,
    epsilon=st.sampled_from([0.0, 0.01]),
    warm_fraction=st.sampled_from([0.3, 1.0]),
)
def test_frontier_matches_dense_warm_started(spec, epsilon, warm_fraction):
    problem = build_problem(**spec)
    prices = warm_prices(spec["seed"], problem, warm_fraction)
    assert_identical(problem, epsilon, initial_prices=prices)


@given(seed=st.integers(0, 10_000))
def test_eviction_pressure(seed):
    """Capacity-1 uploaders + integer ties: maximal contested replays."""
    rng = np.random.default_rng(seed)
    problem = SchedulingProblem()
    n_uploaders = int(rng.integers(1, 5))
    uploader_ids = [10_000 + i for i in range(n_uploaders)]
    for u in uploader_ids:
        problem.set_capacity(u, 1)
    for r in range(int(rng.integers(2, 30))):
        k = int(rng.integers(1, n_uploaders + 1))
        chosen = rng.choice(n_uploaders, size=k, replace=False)
        problem.add_request(
            peer=r,
            chunk=f"c{r}",
            valuation=float(rng.integers(2, 8)),
            candidates={
                uploader_ids[int(j)]: float(rng.integers(0, 4)) for j in chosen
            },
        )
    assert_identical(problem, 0.01)
    assert_identical(problem, 0.0)


def test_zero_capacity_everywhere():
    """All-masked problem: every request retires up front, η = 0."""
    problem = SchedulingProblem()
    problem.set_capacity(1, 0)
    problem.set_capacity(2, 0)
    for r in range(4):
        problem.add_request(
            peer=100 + r, chunk=f"c{r}", valuation=5.0, candidates={1: 0.5, 2: 1.0}
        )
    assert_identical(problem, 0.01)
    result = AuctionSolver(epsilon=0.01, mode="jacobi").solve(problem)
    assert all(u is None for u in result.assignment.values())
    assert all(eta == 0.0 for eta in result.etas.values())
