"""Property: the scipy-free reverse-index fallback matches the C path.

``CSRView.uploader_rows()`` builds the uploader → incident-rows
transpose either through scipy's ``csr → csc`` conversion or — when
scipy is absent — through a stable numpy counting sort.  Only the scipy
path was exercised until now; here both are pinned equal on random
problems (and the shared structural invariants are checked directly),
with scipy masked out of ``sys.modules`` for the fallback build so the
``from scipy import sparse`` really raises.
"""

from __future__ import annotations

import sys

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CSRView, random_problem


def _fresh_view(csr: CSRView) -> CSRView:
    """Uncached copy — ``uploader_rows`` memoizes on the instance."""
    return CSRView(
        values=csr.values,
        uploader_index=csr.uploader_index,
        indptr=csr.indptr,
        uploaders=csr.uploaders,
        capacity=csr.capacity,
    )


def _without_scipy(view: CSRView):
    """Compute ``uploader_rows`` with scipy unimportable."""
    saved = {
        name: sys.modules.pop(name)
        for name in list(sys.modules)
        if name == "scipy" or name.startswith("scipy.")
    }
    sys.modules["scipy"] = None  # import raises ImportError
    try:
        return view.uploader_rows()
    finally:
        del sys.modules["scipy"]
        sys.modules.update(saved)


@given(
    seed=st.integers(0, 10_000),
    n_requests=st.integers(0, 60),
    n_uploaders=st.integers(1, 12),
    max_candidates=st.integers(1, 6),
)
def test_fallback_transpose_matches_scipy(
    seed, n_requests, n_uploaders, max_candidates
):
    problem = random_problem(
        np.random.default_rng(seed),
        n_requests=n_requests,
        n_uploaders=n_uploaders,
        max_candidates=max_candidates,
    )
    csr = problem.csr()

    rev_indptr, rev_rows = _fresh_view(csr).uploader_rows()
    fb_indptr, fb_rows = _without_scipy(_fresh_view(csr))

    assert fb_indptr.dtype == rev_indptr.dtype == np.int64
    assert np.array_equal(fb_indptr, rev_indptr)
    assert np.array_equal(fb_rows, rev_rows)

    # Structural invariants both paths must satisfy.
    n = len(csr.uploaders)
    assert len(rev_indptr) == n + 1 and rev_indptr[0] == 0
    assert rev_indptr[-1] == csr.n_edges
    assert np.array_equal(
        np.diff(rev_indptr), np.bincount(csr.uploader_index, minlength=n)
    )
    edge_rows = csr.edge_rows()
    for u in range(n):
        rows = rev_rows[rev_indptr[u] : rev_indptr[u + 1]]
        # Ascending row order within each uploader (stable transpose).
        assert np.all(np.diff(rows) > 0)
        assert set(rows.tolist()) == set(
            edge_rows[csr.uploader_index == u].tolist()
        )


class _Probe:
    @staticmethod
    def uploader_rows():
        from scipy import sparse  # noqa: F401

        return None


def test_without_scipy_helper_really_blocks_scipy():
    try:
        _without_scipy(_Probe())
    except ImportError:
        pass
    else:  # pragma: no cover - guards the test harness itself
        raise AssertionError("scipy import unexpectedly succeeded")
    # And the mask is fully undone afterwards.
    from scipy import sparse  # noqa: F401
