"""Property: retry scheduling is a pure function of (params, history).

The backoff schedule must be exponential-with-cap and identical however
it is reached — a fresh queue and a snapshot-restored queue make the
same decisions, and an edge pushed at slot ``s`` becomes due at exactly
``s + backoff(attempt)`` (never earlier, never later).  This is what
keeps lossy trajectories reproducible: the retry pipeline adds no
hidden state beyond the queue's columns.  Runs under the deterministic
``repro-props`` profile via ``make test-props``.
"""

from __future__ import annotations

import numpy as np
import hypothesis.strategies as st
from hypothesis import given

from repro.p2p.retry import RetryQueue

queue_params = st.tuples(
    st.integers(1, 8),    # backoff_base_slots
    st.integers(1, 32),   # backoff_cap_slots
    st.integers(1, 40),   # ttl_slots
)


@given(queue_params, st.integers(1, 100))
def test_backoff_is_capped_exponential(params, attempt):
    base, cap, ttl = params
    queue = RetryQueue(base, cap, ttl)
    expected = min(base * 2 ** min(attempt - 1, 62), cap)
    assert queue.backoff_slots(attempt) == expected


@given(queue_params, st.integers(1, 30))
def test_backoff_monotone_in_attempts(params, attempt):
    base, cap, ttl = params
    queue = RetryQueue(base, cap, ttl)
    assert queue.backoff_slots(attempt + 1) >= queue.backoff_slots(attempt)


@given(queue_params, st.integers(0, 50))
def test_due_exactly_at_push_plus_backoff(params, slot):
    base, cap, ttl = params
    queue = RetryQueue(base, cap, ttl)
    one = np.array([7], dtype=np.int64)
    queue.push_failed(one, one + 1, one * 0, one * 3, slot)
    due_at = slot + queue.backoff_slots(1)
    batch, _ = queue.pop_due(due_at - 1)
    assert len(batch) == 0
    batch, _ = queue.pop_due(due_at)
    # Due — unless the TTL elapses first, in which case the surrender
    # sweep (which run_slot performs before pop_due) owns the edge.
    if queue.backoff_slots(1) < ttl:
        assert len(batch) == 1 and batch.attempts.tolist() == [1]
    surrendered = RetryQueue(base, cap, ttl)
    surrendered.push_failed(one, one + 1, one * 0, one * 3, slot)
    down, _, _ = surrendered.pop_surrendered(slot + ttl)
    assert down.tolist() == [7]


@given(queue_params, st.integers(1, 12), st.integers(0, 20))
def test_requeue_chain_matches_closed_form(params, misses, slot):
    """After k consecutive misses the edge's next due gap is backoff(k+1),
    and its attempt counter is k+1 — however the chain was driven."""
    base, cap, ttl = params
    queue = RetryQueue(base, cap, ttl)
    one = np.array([1], dtype=np.int64)
    queue.push_failed(one, one, one * 0, one, slot)
    when = slot
    for k in range(1, misses + 1):
        when += queue.backoff_slots(k)
        batch, expire = queue.pop_due(when)
        assert batch.attempts.tolist() == [k]
        assert expire.tolist() == [slot + ttl]  # TTL anchored at first failure
        queue.requeue(batch, np.array([True]), when, expire)
    restored = RetryQueue(base, cap, ttl)
    restored.restore(queue.snapshot())
    for q in (queue, restored):
        batch, _ = q.pop_due(when + q.backoff_slots(misses + 1) - 1)
        assert len(batch) == 0
    for q in (queue, restored):
        batch, _ = q.pop_due(when + q.backoff_slots(misses + 1))
        assert batch.attempts.tolist() == [misses + 1]
