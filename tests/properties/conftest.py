"""Hypothesis profile and shared machinery for the equivalence suite.

The ``repro-props`` profile keeps the fuzzing deterministic and bounded
so tier-1 stays fast and reproducible: ``derandomize=True`` makes
Hypothesis derive examples from the test function itself (no ambient
random seed, no example database growth), and the example budget is
fixed (override with ``REPRO_PROPS_EXAMPLES=n`` for a deeper local
soak).  Run the suite with ``make test-props`` or
``pytest tests/properties -q``.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro-props",
    settings(
        max_examples=int(os.environ.get("REPRO_PROPS_EXAMPLES", "70")),
        deadline=None,
        derandomize=True,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
        ],
    ),
)
settings.load_profile("repro-props")
