"""Lossy-network scenario layer: link events, QoE reporting, trace import.

Also carries the archived-results gate: with ideal link conditions the
engine must keep regenerating the committed ``results/scenario_*.txt``
byte-identically — enabling the fault-injection subsystem cannot
perturb existing trajectories.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.cli import main
from repro.scenarios import (
    LinkDegrade,
    LinkRestore,
    ScenarioRunner,
    ScenarioSpec,
    TraceArrivals,
    build_scenario,
    compile_timeline,
    event_from_dict,
    import_trace,
    load_scenario,
    scenario_names,
    spec_from_dict,
    spec_to_dict,
)

RESULTS = pathlib.Path(__file__).resolve().parents[2] / "results"


class TestLinkEventSpecs:
    def test_degrade_roundtrips_through_dict(self):
        for event in (
            LinkDegrade(time=20.0, preset="loss30-delay50"),
            LinkDegrade(time=5.0, loss_rate=0.2, delay_ms=30.0, isp_a=1),
            LinkRestore(time=40.0, isp_a=0, isp_b=1),
        ):
            event.validate()
            clone = event_from_dict(event.to_dict())
            assert clone == event

    def test_preset_and_explicit_knobs_are_exclusive(self):
        with pytest.raises(ValueError):
            LinkDegrade(time=0.0, preset="loss10", loss_rate=0.5).validate()
        with pytest.raises(ValueError):
            LinkDegrade(time=0.0).validate()  # neither given

    def test_isp_b_requires_isp_a(self):
        with pytest.raises(ValueError):
            LinkDegrade(time=0.0, preset="loss10", isp_b=1).validate()

    def test_generate_bounds_checks_isps(self):
        spec = ScenarioSpec(
            name="x", description="", scale="tiny",
            events=(LinkDegrade(time=0.0, preset="loss10", isp_a=99),),
        )
        with pytest.raises(ValueError):
            compile_timeline(spec, seed=0)

    def test_timeline_rows_apply_to_the_system(self):
        spec = ScenarioSpec(
            name="x", description="", scale="tiny",
            duration_seconds=30.0,
            events=(
                LinkDegrade(time=0.0, preset="loss30-delay50"),
                LinkRestore(time=20.0),
            ),
        )
        result = ScenarioRunner(spec, seed=1).run()
        run = next(iter(result.runs.values()))
        regimes = [m.link_regime for m in run.collector.slots]
        assert regimes[0] == "loss30-delay50"
        assert regimes[-1] == "ideal"


class TestCatalogLossyScenarios:
    def test_registered(self):
        assert {"lossy-backbone", "flaky-isp"} <= set(scenario_names())

    def test_catalog_specs_serialize(self):
        for name in ("lossy-backbone", "flaky-isp"):
            spec = build_scenario(name, scale="tiny")
            assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_reports_carry_qoe_block_for_every_scheduler(self):
        spec = build_scenario("lossy-backbone", scale="tiny").abridged(
            60.0, schedulers=("auction", "random")
        )
        report = ScenarioRunner(spec, seed=3).run().render_report()
        assert "QoE per link regime" in report
        assert "loss30-delay50" in report
        assert "startup delay (join→first chunk):" in report
        for scheduler in spec.schedulers:
            assert scheduler in report

    def test_flaky_isp_recovers_losses(self):
        spec = build_scenario("flaky-isp", scale="tiny").abridged(
            60.0, schedulers=("auction",)
        )
        run = ScenarioRunner(spec, seed=3).run().runs["auction"]
        totals = run.collector.totals()
        assert totals["transfers_failed_total"] > 0
        assert totals["retry_succeeded_total"] > 0

    def test_ideal_scenarios_render_no_qoe_block(self):
        spec = build_scenario("flash-crowd", scale="tiny").abridged(
            30.0, schedulers=("auction",)
        )
        report = ScenarioRunner(spec, seed=3).run().render_report()
        assert "QoE" not in report


class TestArchivedResultsGate:
    def test_ideal_conditions_regenerate_archived_report(self):
        """One cheap bench-scale archived scenario, regenerated end to
        end: must match the committed report byte for byte."""
        archived = RESULTS / "scenario_isp-price-shock.txt"
        spec = build_scenario("isp-price-shock", scale="bench")
        report = ScenarioRunner(spec, seed=0).run().render_report()
        assert report + "\n" == archived.read_text(encoding="utf-8")


class TestTraceImport:
    CSV = textwrap.dedent(
        """\
        time,peer,video
        12.0,beta,1
        0.0,alpha,0
        12.0,alpha,2
        3.5,gamma,0
        """
    )

    def _write(self, tmp_path, name, text):
        path = tmp_path / name
        path.write_text(text, encoding="utf-8")
        return path

    def test_csv_rows_sorted_by_time_then_peer(self, tmp_path):
        spec = import_trace(self._write(tmp_path, "t.csv", self.CSV))
        (trace,) = spec.events
        assert isinstance(trace, TraceArrivals)
        assert trace.arrivals == ((0.0, 0), (3.5, 0), (12.0, 2), (12.0, 1))

    def test_json_matches_csv(self, tmp_path):
        rows = [
            {"time": 12.0, "peer": "beta", "video": 1},
            {"time": 0.0, "peer": "alpha", "video": 0},
            {"time": 12.0, "peer": "alpha", "video": 2},
            {"time": 3.5, "peer": "gamma", "video": 0},
        ]
        csv_spec = import_trace(self._write(tmp_path, "t.csv", self.CSV))
        json_spec = import_trace(
            self._write(tmp_path, "t.json", json.dumps(rows)), name="trace-t"
        )
        assert json_spec.events == csv_spec.events
        assert json_spec.duration_seconds == csv_spec.duration_seconds == 30.0

    def test_duration_covers_last_arrival_plus_drain(self, tmp_path):
        spec = import_trace(self._write(tmp_path, "t.csv", self.CSV))
        assert spec.duration_seconds == 30.0  # last at 12 s → slots 10–20–30

    def test_missing_column_rejected(self, tmp_path):
        bad = self._write(tmp_path, "t.csv", "time,peer\n0.0,a\n")
        with pytest.raises(ValueError, match="needs columns"):
            import_trace(bad)

    def test_bad_row_reported_with_index(self, tmp_path):
        bad = self._write(
            tmp_path, "t.csv", "time,peer,video\n0.0,a,0\nnope,b,1\n"
        )
        with pytest.raises(ValueError, match="bad trace row 1"):
            import_trace(bad)

    def test_empty_trace_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no rows"):
            import_trace(self._write(tmp_path, "t.json", "[]"))

    def test_example_trace_imports_and_validates(self):
        example = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "traces" / "vod_arrivals.csv"
        )
        spec = import_trace(example, scale="tiny")
        (trace,) = spec.events
        assert len(trace.arrivals) == 20
        assert spec.n_static_peers == 0 and not spec.churn

    def test_replay_is_deterministic(self, tmp_path):
        path = self._write(tmp_path, "t.csv", self.CSV)

        def totals():
            spec = import_trace(path, scale="tiny", schedulers=("auction",))
            run = ScenarioRunner(spec, seed=2).run().runs["auction"]
            return run.collector.totals()

        assert totals() == totals()


class TestCliImportTrace:
    def test_import_writes_loadable_spec(self, tmp_path, capsys):
        trace = tmp_path / "log.csv"
        trace.write_text(TestTraceImport.CSV, encoding="utf-8")
        out = tmp_path / "spec.json"
        code = main(
            ["scenario", "import-trace", str(trace), "--scale", "tiny",
             "--output", str(out)]
        )
        assert code == 0
        assert "imported 4 arrivals" in capsys.readouterr().out
        spec = load_scenario(out)
        assert spec.name == "trace-log"
        assert len(spec.events[0].arrivals) == 4
