"""Tier-1 smoke gate: every registered scenario runs end to end.

Each catalog entry is abridged to a few tiny-scale slots under the
auction scheduler — enough to execute every event kind it declares,
record metrics, and render a report.  This is what ``make
scenarios-smoke`` runs, so a scenario that rots breaks tier-1, not the
next person's experiment.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ScenarioRunner,
    build_scenario,
    compile_timeline,
    scenario_names,
)

#: Horizon of the abridged smoke runs (tiny slots are 10 s).
SMOKE_SECONDS = 40.0


def test_catalog_has_at_least_six_scenarios():
    assert len(scenario_names()) >= 6


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_runs_at_tiny_scale(name):
    spec = build_scenario(name, scale="tiny").abridged(
        SMOKE_SECONDS, schedulers=("auction",)
    )
    runner = ScenarioRunner(spec, seed=3)
    result = runner.run()
    run = result.runs["auction"]
    assert len(run.collector.slots) == 4  # 40 s of 10 s slots
    assert run.n_peers_final > 0
    # Events inside the smoke horizon were scheduled (the full timeline
    # compiles even when later events never fire).
    assert len(runner.timeline) >= 1
    report = result.render_report()
    assert spec.name in report
    assert "welfare" in report


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_compiles_at_bench_scale(name):
    """Bench specs must validate and compile without running."""
    spec = build_scenario(name, scale="bench")
    timeline = compile_timeline(spec, seed=0)
    assert all(row.time >= 0 for row in timeline)
    assert all(
        timeline[i].time <= timeline[i + 1].time
        for i in range(len(timeline) - 1)
    )


def test_scenario_reports_are_deterministic():
    """Two runs of the same spec + seed render byte-identical reports."""
    spec = build_scenario("seeder-failure", scale="tiny").abridged(
        SMOKE_SECONDS, schedulers=("auction",)
    )
    a = ScenarioRunner(spec, seed=5).run().render_report()
    b = ScenarioRunner(spec, seed=5).run().render_report()
    assert a == b
